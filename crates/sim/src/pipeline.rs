//! A multi-threaded edge-router pipeline.
//!
//! The replay engine is single-threaded by design (deterministic
//! measurement); this module is the deployment-shaped variant: a
//! three-stage pipeline over bounded crossbeam channels, the way a
//! software edge router would actually run the filter —
//!
//! ```text
//! ingest (parse/classify) ──► filter (bitmap decide) ──► account (stats)
//! ```
//!
//! The filter stage owns the [`BitmapFilter`] exclusively (no locking on
//! the hot path); bounded channels provide backpressure; dropping the
//! upstream sender shuts the pipeline down cleanly. Because exactly one
//! thread touches the filter in packet order, the pipeline's verdicts
//! are **identical** to a sequential run — asserted by tests.
//!
//! [`run_sharded_pipeline`] is the scaled-out variant: the filter stage
//! fans out to one worker per shard of a [`ShardedFilter`], packets are
//! partitioned by the same direction-symmetric flow hash the shards use
//! (so workers never contend on a shard lock), and verdicts are
//! re-merged in timestamp order by sequence number before accounting.
//! With the paper-default `P_d ≡ 1` policy, verdicts are again identical
//! to a sequential run — asserted by tests.
//!
//! [`BitmapFilter`]: upbound_core::BitmapFilter
//! [`ShardedFilter`]: upbound_core::ShardedFilter

use crossbeam::channel::{bounded, Receiver, SendError, Sender, TrySendError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::Mutex;
use upbound_core::observe::FilterObserver;
use upbound_core::{
    BitmapFilter, BitmapFilterConfig, FailMode, FilterStats, PacketFilter, ShardedFilter,
    Snapshottable, SubscriberTable, Verdict,
};
use upbound_net::{Cidr, Direction, Packet, TimeDelta, Timestamp};
use upbound_telemetry::{
    Counter, DumpTrigger, FlightRecorder, Gauge, HealthState, Registry, ShardStatus, Stage,
    StageTracer,
};

/// Unwraps a worker-thread join, re-raising the worker's panic on the
/// caller thread instead of replacing it with a generic message.
fn join_or_propagate<T>(joined: std::thread::Result<T>) -> T {
    joined.unwrap_or_else(|payload| resume_unwind(payload))
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Capacity of each inter-stage channel (backpressure bound).
    pub channel_capacity: usize,
    /// Maximum packets a filter worker pulls per batch before deciding
    /// them in one [`PacketFilter::decide_batch`] call (sharded workers
    /// additionally take their shard lock once per batch). Workers never
    /// wait to fill a batch — they drain whatever is queued, up to this
    /// bound — so latency under light load is unchanged. `1` restores
    /// the per-packet path; `0` is treated as `1`.
    pub batch_size: usize,
}

/// The default filter-stage batch size, chosen from the
/// `batch_throughput` bench's sweet spot (see BENCH_batch_throughput.json).
fn default_batch_size() -> usize {
    64
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            channel_capacity: 1024,
            batch_size: default_batch_size(),
        }
    }
}

/// Aggregate output of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Packets that entered the pipeline.
    pub ingested: u64,
    /// Packets forwarded.
    pub passed: u64,
    /// Packets dropped by the filter.
    pub dropped: u64,
    /// Wire bytes forwarded upstream (outbound).
    pub uplink_bytes: u64,
    /// Wire bytes forwarded downstream (inbound).
    pub downlink_bytes: u64,
    /// The filter's own counters at shutdown.
    pub filter_stats: FilterStats,
}

/// Per-stage pipeline instrumentation published into an
/// [`upbound_telemetry::Registry`] under `upbound_sim_*`.
///
/// For each stage it tracks throughput (packets and wire bytes), and for
/// each inter-stage channel the live queue depth plus the number of
/// backpressure stalls (sends that found the channel full and had to
/// block).
#[derive(Debug, Clone)]
pub struct PipelineTelemetry {
    ingest_packets: Arc<Counter>,
    ingest_bytes: Arc<Counter>,
    ingest_stalls: Arc<Counter>,
    ingest_queue_depth: Arc<Gauge>,
    filter_packets: Arc<Counter>,
    filter_bytes: Arc<Counter>,
    filter_stalls: Arc<Counter>,
    filter_queue_depth: Arc<Gauge>,
    account_packets: Arc<Counter>,
    account_forwarded_bytes: Arc<Counter>,
}

impl PipelineTelemetry {
    /// Registers the pipeline's stage metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            ingest_packets: registry.counter(
                "upbound_sim_ingest_packets_total",
                "Packets classified by the ingest stage",
            ),
            ingest_bytes: registry.counter(
                "upbound_sim_ingest_bytes_total",
                "Wire bytes entering the pipeline",
            ),
            ingest_stalls: registry.counter(
                "upbound_sim_ingest_backpressure_stalls_total",
                "Ingest sends that blocked on a full ingest->filter channel",
            ),
            ingest_queue_depth: registry.gauge(
                "upbound_sim_ingest_queue_depth",
                "Occupancy of the ingest->filter channel after the last send",
            ),
            filter_packets: registry.counter(
                "upbound_sim_filter_packets_total",
                "Packets decided by the filter stage",
            ),
            filter_bytes: registry.counter(
                "upbound_sim_filter_bytes_total",
                "Wire bytes decided by the filter stage",
            ),
            filter_stalls: registry.counter(
                "upbound_sim_filter_backpressure_stalls_total",
                "Filter sends that blocked on a full filter->account channel",
            ),
            filter_queue_depth: registry.gauge(
                "upbound_sim_filter_queue_depth",
                "Occupancy of the filter->account channel after the last send",
            ),
            account_packets: registry.counter(
                "upbound_sim_account_packets_total",
                "Packets tallied by the accounting stage",
            ),
            account_forwarded_bytes: registry.counter(
                "upbound_sim_account_forwarded_bytes_total",
                "Wire bytes of packets that passed the filter",
            ),
        }
    }
}

/// Sends on `tx`, counting a backpressure stall (and falling back to a
/// blocking send) when the channel is full.
fn send_counting_stalls<T>(tx: &Sender<T>, value: T, stalls: &Counter) -> Result<(), SendError<T>> {
    match tx.try_send(value) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(value)) => {
            stalls.inc();
            tx.send(value)
        }
        Err(TrySendError::Disconnected(value)) => Err(SendError(value)),
    }
}

/// Runs `packets` through a freshly-built filter on a three-stage
/// threaded pipeline and returns the aggregate result.
///
/// `packets` is consumed on the caller's thread (stage 1); stages 2 and
/// 3 run on scoped worker threads. The function returns once every
/// packet has drained through all stages.
#[deprecated(
    since = "0.1.0",
    note = "use `PipelineRunner::new(inside, filter_config).run(packets)`"
)]
pub fn run_pipeline<I>(
    packets: I,
    inside: Cidr,
    filter_config: BitmapFilterConfig,
    pipeline_config: PipelineConfig,
) -> PipelineResult
where
    I: IntoIterator<Item = Packet>,
{
    run_pipeline_with(
        packets,
        inside,
        BitmapFilter::new(filter_config),
        pipeline_config,
        None,
    )
    .0
}

/// [`run_pipeline`] with a caller-supplied filter (typically carrying a
/// [`TelemetryObserver`](upbound_core::TelemetryObserver)) and per-stage
/// pipeline metrics. Returns the aggregate result together with the
/// filter, so observer state (e.g. the event journal) survives the run.
pub fn run_pipeline_instrumented<I, O>(
    packets: I,
    inside: Cidr,
    filter: BitmapFilter<O>,
    pipeline_config: PipelineConfig,
    telemetry: &PipelineTelemetry,
) -> (PipelineResult, BitmapFilter<O>)
where
    I: IntoIterator<Item = Packet>,
    O: FilterObserver + Send,
{
    run_pipeline_with(packets, inside, filter, pipeline_config, Some(telemetry))
}

pub(crate) fn run_pipeline_with<I, O>(
    packets: I,
    inside: Cidr,
    mut filter: BitmapFilter<O>,
    pipeline_config: PipelineConfig,
    telemetry: Option<&PipelineTelemetry>,
) -> (PipelineResult, BitmapFilter<O>)
where
    I: IntoIterator<Item = Packet>,
    O: FilterObserver + Send,
{
    let (to_filter_tx, to_filter_rx): (Sender<(Packet, Direction)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);
    let (to_stats_tx, to_stats_rx): (Sender<(Packet, Direction, Verdict)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);

    let batch_size = pipeline_config.batch_size.max(1);
    let scope_result = crossbeam::thread::scope(|scope| {
        // Stage 2: the filter thread — exclusive owner of the bitmap.
        // Packets are pulled in batches of up to `batch_size` (blocking
        // only for the first of each batch) and decided via
        // `decide_batch`, which amortizes the rotation check; verdict
        // order is the channel's FIFO order, so the stream downstream is
        // identical to the per-packet path.
        let filter_handle = scope.spawn(move |_| {
            let mut batch: Vec<(Packet, Direction)> = Vec::with_capacity(batch_size);
            let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch_size);
            'stream: while let Ok(first) = to_filter_rx.recv() {
                batch.clear();
                verdicts.clear();
                batch.push(first);
                while batch.len() < batch_size {
                    match to_filter_rx.try_recv() {
                        Ok(message) => batch.push(message),
                        Err(_) => break,
                    }
                }
                filter.decide_batch(&batch, &mut verdicts);
                for ((packet, direction), verdict) in batch.drain(..).zip(verdicts.drain(..)) {
                    if let Some(t) = telemetry {
                        t.filter_packets.inc();
                        t.filter_bytes.add(packet.wire_len() as u64);
                    }
                    // A closed stats stage means shutdown was requested.
                    let sent = match telemetry {
                        Some(t) => {
                            let sent = send_counting_stalls(
                                &to_stats_tx,
                                (packet, direction, verdict),
                                &t.filter_stalls,
                            );
                            t.filter_queue_depth.set_u64(to_stats_tx.len() as u64);
                            sent
                        }
                        None => to_stats_tx.send((packet, direction, verdict)),
                    };
                    if sent.is_err() {
                        break 'stream;
                    }
                }
            }
            filter
        });

        // Stage 3: accounting.
        let stats_handle = scope.spawn(move |_| {
            let mut result = PipelineResult {
                ingested: 0,
                passed: 0,
                dropped: 0,
                uplink_bytes: 0,
                downlink_bytes: 0,
                filter_stats: FilterStats::default(),
            };
            for (packet, direction, verdict) in to_stats_rx {
                result.ingested += 1;
                if let Some(t) = telemetry {
                    t.account_packets.inc();
                }
                match verdict {
                    Verdict::Pass => {
                        result.passed += 1;
                        if let Some(t) = telemetry {
                            t.account_forwarded_bytes.add(packet.wire_len() as u64);
                        }
                        match direction {
                            Direction::Outbound => {
                                result.uplink_bytes += packet.wire_len() as u64;
                            }
                            Direction::Inbound => {
                                result.downlink_bytes += packet.wire_len() as u64;
                            }
                        }
                    }
                    Verdict::Drop => result.dropped += 1,
                }
            }
            result
        });

        // Stage 1: ingest — parse/classify on the calling thread.
        for packet in packets {
            let direction = inside.direction_of(&packet.tuple());
            let sent = match telemetry {
                Some(t) => {
                    t.ingest_packets.inc();
                    t.ingest_bytes.add(packet.wire_len() as u64);
                    let sent =
                        send_counting_stalls(&to_filter_tx, (packet, direction), &t.ingest_stalls);
                    t.ingest_queue_depth.set_u64(to_filter_tx.len() as u64);
                    sent
                }
                None => to_filter_tx.send((packet, direction)),
            };
            if sent.is_err() {
                break;
            }
        }
        drop(to_filter_tx); // signal end-of-stream downstream

        let filter = join_or_propagate(filter_handle.join());
        let mut result = join_or_propagate(stats_handle.join());
        result.filter_stats = filter.stats();
        (result, filter)
    });
    join_or_propagate(scope_result)
}

/// Runs `packets` through a multi-tenant [`SubscriberTable`] on the
/// three-stage pipeline and returns the aggregate result together with
/// the table (so per-subscriber statistics, arena counters and
/// checkpoint state survive the run).
///
/// The ingest stage classifies each packet's accounting direction with
/// a [`SubscriberClassifier`] cloned from the table (source inside any
/// subscriber → outbound), while the filter stage owns the table
/// exclusively and decides each pulled batch through the table's
/// subscriber-grouped dispatch — packets are partitioned by
/// longest-prefix match and each tenant's sub-batch goes through one
/// [`PacketFilter::decide_batch`] call. Verdicts are identical to a
/// sequential [`SubscriberTable::process_packet`] loop — asserted by
/// tests.
///
/// [`SubscriberTable`]: upbound_core::SubscriberTable
/// [`SubscriberClassifier`]: upbound_core::SubscriberClassifier
#[deprecated(
    since = "0.1.0",
    note = "use `PipelineRunner::new(inside, filter_config).run_subscribers(packets, table)`"
)]
pub fn run_subscriber_pipeline<I, F>(
    packets: I,
    table: SubscriberTable<F>,
    pipeline_config: PipelineConfig,
) -> (PipelineResult, SubscriberTable<F>)
where
    I: IntoIterator<Item = Packet>,
    F: PacketFilter<Stats = FilterStats> + Send + Sync,
{
    subscriber_pipeline_impl(packets, table, pipeline_config)
}

pub(crate) fn subscriber_pipeline_impl<I, F>(
    packets: I,
    mut table: SubscriberTable<F>,
    pipeline_config: PipelineConfig,
) -> (PipelineResult, SubscriberTable<F>)
where
    I: IntoIterator<Item = Packet>,
    F: PacketFilter<Stats = FilterStats> + Send + Sync,
{
    let classifier = table.classifier();
    let (to_filter_tx, to_filter_rx): (Sender<(Packet, Direction)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);
    let (to_stats_tx, to_stats_rx): (Sender<(Packet, Direction, Verdict)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);

    let batch_size = pipeline_config.batch_size.max(1);
    let scope_result = crossbeam::thread::scope(|scope| {
        // Stage 2: the filter thread — exclusive owner of the table.
        let filter_handle = scope.spawn(move |_| {
            let mut batch: Vec<(Packet, Direction)> = Vec::with_capacity(batch_size);
            let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch_size);
            'stream: while let Ok(first) = to_filter_rx.recv() {
                batch.clear();
                verdicts.clear();
                batch.push(first);
                while batch.len() < batch_size {
                    match to_filter_rx.try_recv() {
                        Ok(message) => batch.push(message),
                        Err(_) => break,
                    }
                }
                table.process_batch(&batch, &mut verdicts);
                for ((packet, direction), verdict) in batch.drain(..).zip(verdicts.drain(..)) {
                    if to_stats_tx.send((packet, direction, verdict)).is_err() {
                        break 'stream;
                    }
                }
            }
            table
        });

        // Stage 3: accounting.
        let stats_handle = scope.spawn(move |_| {
            let mut result = PipelineResult {
                ingested: 0,
                passed: 0,
                dropped: 0,
                uplink_bytes: 0,
                downlink_bytes: 0,
                filter_stats: FilterStats::default(),
            };
            for (packet, direction, verdict) in to_stats_rx {
                account(&mut result, &packet, direction, verdict);
            }
            result
        });

        // Stage 1: ingest — LPM classification on the calling thread.
        for packet in packets {
            let direction = classifier.direction_of(&packet);
            if to_filter_tx.send((packet, direction)).is_err() {
                break;
            }
        }
        drop(to_filter_tx); // signal end-of-stream downstream

        let table = join_or_propagate(filter_handle.join());
        let mut result = join_or_propagate(stats_handle.join());
        result.filter_stats = table.merged_stats();
        (result, table)
    });
    join_or_propagate(scope_result)
}

/// Tallies one merged verdict into the aggregate result.
fn account(result: &mut PipelineResult, packet: &Packet, direction: Direction, verdict: Verdict) {
    result.ingested += 1;
    match verdict {
        Verdict::Pass => {
            result.passed += 1;
            match direction {
                Direction::Outbound => result.uplink_bytes += packet.wire_len() as u64,
                Direction::Inbound => result.downlink_bytes += packet.wire_len() as u64,
            }
        }
        Verdict::Drop => result.dropped += 1,
    }
}

/// Runs `packets` through a [`ShardedFilter`] with one filter worker per
/// shard:
///
/// ```text
/// ingest ──► worker 0 (shard 0) ──┐
///        ──► worker 1 (shard 1) ──┼──► merge (reorder) ──► account
///        ──► …                  ──┘
/// ```
///
/// The ingest stage tags each packet with a sequence number and the
/// running *maximum* timestamp seen so far (the watermark), and routes
/// it by [`ShardedFilter::shard_of`], so each worker only ever touches
/// its own shard's state. Workers decide via
/// [`ShardedFilter::process_packet_at`] — for the concurrent bitmap
/// filter that is a shard *read* lock around lock-free atomic marks and
/// lookups, so workers never serialize against each other — which first
/// advances the shard to the watermark: on a trace with non-monotonic
/// timestamps this pins every shard to the tick phase a sequential
/// filter would hold, instead of each shard drifting on its own packets'
/// clocks. The merge stage restores sequence order before accounting, so
/// downstream consumers see the same stream a sequential run would
/// produce.
///
/// With the paper-default `P_d ≡ 1` policy the verdicts (and the merged
/// [`FilterStats`]) are identical to a sequential [`run_pipeline`] run.
/// Under a rate-dependent RED policy, concurrent uplink recording can
/// skew individual `P_d` reads by a packet or two, so only statistical —
/// not bit-exact — equivalence is guaranteed.
#[deprecated(
    since = "0.1.0",
    note = "use `PipelineRunner::new(inside, filter_config).shards(n).run(packets)`"
)]
pub fn run_sharded_pipeline<I>(
    packets: I,
    inside: Cidr,
    filter_config: BitmapFilterConfig,
    shards: usize,
    pipeline_config: PipelineConfig,
) -> PipelineResult
where
    I: IntoIterator<Item = Packet>,
{
    let sharded = match ShardedFilter::builder(filter_config).shards(shards).build() {
        Ok(sharded) => sharded,
        Err(err) => panic!("{err}"),
    };
    sharded_pipeline_impl(packets, inside, &sharded, pipeline_config)
}

pub(crate) fn sharded_pipeline_impl<I, F>(
    packets: I,
    inside: Cidr,
    sharded: &ShardedFilter<F>,
    pipeline_config: PipelineConfig,
) -> PipelineResult
where
    I: IntoIterator<Item = Packet>,
    F: PacketFilter<Stats = FilterStats> + Send + Sync,
{
    let shards = sharded.shards();
    let batch_size = pipeline_config.batch_size.max(1);
    let (worker_txs, worker_rxs): (Vec<_>, Vec<_>) = (0..shards)
        .map(|_| bounded::<(u64, Packet, Direction, Timestamp)>(pipeline_config.channel_capacity))
        .unzip();
    let (merge_tx, merge_rx): (Sender<(u64, Packet, Direction, Verdict)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);

    let scope_result = crossbeam::thread::scope(|scope| {
        // Filter workers: one per shard. Each pulls up to `batch_size`
        // queued packets (blocking only for the first, to amortize the
        // channel wakeup), then decides them one by one through
        // `process_packet_at` — the bitmap filter's shared path, which
        // marks and looks up the atomic bitmap under a shard read lock
        // instead of serializing the batch behind a write lock.
        for rx in worker_rxs {
            let handle = sharded.clone();
            let merge_tx = merge_tx.clone();
            scope.spawn(move |_| {
                let mut batch: Vec<(u64, Packet, Direction, Timestamp)> =
                    Vec::with_capacity(batch_size);
                'stream: while let Ok(first) = rx.recv() {
                    batch.clear();
                    batch.push(first);
                    while batch.len() < batch_size {
                        match rx.try_recv() {
                            Ok(message) => batch.push(message),
                            Err(_) => break,
                        }
                    }
                    for (seq, packet, direction, watermark) in batch.drain(..) {
                        let verdict = handle.process_packet_at(&packet, direction, watermark);
                        if merge_tx.send((seq, packet, direction, verdict)).is_err() {
                            break 'stream;
                        }
                    }
                }
            });
        }
        drop(merge_tx); // workers hold the only remaining senders

        // Merge + account: restore sequence (= timestamp) order.
        let merge_handle = scope.spawn(move |_| {
            let mut result = PipelineResult {
                ingested: 0,
                passed: 0,
                dropped: 0,
                uplink_bytes: 0,
                downlink_bytes: 0,
                filter_stats: FilterStats::default(),
            };
            let mut next_seq = 0u64;
            let mut pending: BTreeMap<u64, (Packet, Direction, Verdict)> = BTreeMap::new();
            for (seq, packet, direction, verdict) in merge_rx {
                pending.insert(seq, (packet, direction, verdict));
                while let Some((packet, direction, verdict)) = pending.remove(&next_seq) {
                    account(&mut result, &packet, direction, verdict);
                    next_seq += 1;
                }
            }
            // If the ingest stage stopped early, tail sequence numbers
            // may be sparse; drain whatever arrived.
            for (_, (packet, direction, verdict)) in pending {
                account(&mut result, &packet, direction, verdict);
            }
            result
        });

        // Ingest on the calling thread: classify, tag with the running
        // max-timestamp watermark, route by flow.
        let mut watermark = Timestamp::ZERO;
        for (seq, packet) in packets.into_iter().enumerate() {
            let direction = inside.direction_of(&packet.tuple());
            let shard = sharded.shard_of(&packet.tuple(), direction);
            watermark = watermark.max(packet.ts());
            if worker_txs[shard]
                .send((seq as u64, packet, direction, watermark))
                .is_err()
            {
                break;
            }
        }
        drop(worker_txs); // signal end-of-stream to every worker

        let mut result = join_or_propagate(merge_handle.join());
        result.filter_stats = sharded.stats();
        result
    });
    join_or_propagate(scope_result)
}

/// One quarantine event recorded by the shard supervisor: worker
/// `shard` panicked while deciding a packet at watermark `at`, its
/// filter was rebuilt empty, and the rebuilt memory is not trustworthy
/// (still warming up) until `quarantined_until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardIncident {
    /// Index of the shard that panicked.
    pub shard: usize,
    /// Ingest watermark when the panic was caught.
    pub at: Timestamp,
    /// End of the rebuilt shard's warm-up window (`at` + quarantine).
    pub quarantined_until: Timestamp,
}

/// Aggregate record of everything the shard supervisor had to do during
/// a [`run_supervised_pipeline`] run. All zeros/empty on a clean run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorReport {
    /// Worker panics caught.
    pub panics: u64,
    /// Shards rebuilt empty (one per caught panic).
    pub restarts: u64,
    /// Per-event detail, in watermark order.
    pub incidents: Vec<ShardIncident>,
}

/// Output of [`run_supervised_pipeline`]: the pipeline aggregate plus
/// the supervisor's incident record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisedResult {
    /// The usual pipeline aggregate.
    pub pipeline: PipelineResult,
    /// What the supervisor caught and rebuilt.
    pub supervisor: SupervisorReport,
}

/// Registry-backed export of the shard supervisor's state
/// (`upbound_sim_shard_*`), so quarantines are visible to every
/// exporter and the `/metrics` endpoint — not just in the in-memory
/// [`SupervisorReport`].
#[derive(Debug, Clone)]
pub struct SupervisorTelemetry {
    panics_total: Arc<Counter>,
    restarts_total: Arc<Counter>,
    incidents_total: Arc<Counter>,
    quarantined: Arc<Gauge>,
    state: Arc<Mutex<BTreeMap<usize, ShardStatus>>>,
    quarantined_until: Arc<Mutex<BTreeMap<usize, Timestamp>>>,
}

impl SupervisorTelemetry {
    /// Registers the supervisor metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            panics_total: registry.counter(
                "upbound_sim_shard_panics_total",
                "Shard worker panics caught by the supervisor",
            ),
            restarts_total: registry.counter(
                "upbound_sim_shard_restarts_total",
                "Shards rebuilt empty after quarantine",
            ),
            incidents_total: registry.counter(
                "upbound_sim_shard_incidents_total",
                "Quarantine incidents recorded by the supervisor",
            ),
            quarantined: registry.gauge(
                "upbound_sim_shards_quarantined",
                "Shards currently inside their quarantine window",
            ),
            state: Arc::new(Mutex::new(BTreeMap::new())),
            quarantined_until: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    fn lock<'a, T>(m: &'a Arc<Mutex<T>>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one quarantine incident; returns the shard's updated
    /// status (for teeing into a flight recorder / health doc).
    pub fn record_incident(&self, incident: &ShardIncident) -> ShardStatus {
        self.panics_total.inc();
        self.restarts_total.inc();
        self.incidents_total.inc();
        let status = {
            let mut state = Self::lock(&self.state);
            let entry = state.entry(incident.shard).or_insert(ShardStatus {
                shard: incident.shard,
                quarantined: false,
                panics: 0,
                restarts: 0,
            });
            entry.panics += 1;
            entry.restarts += 1;
            entry.quarantined = true;
            *entry
        };
        let live = {
            let mut until = Self::lock(&self.quarantined_until);
            until.insert(incident.shard, incident.quarantined_until);
            until.values().filter(|&&t| t > incident.at).count()
        };
        self.quarantined.set_u64(live as u64);
        status
    }

    /// Re-evaluates quarantine windows against `watermark` (typically
    /// the final ingest watermark) and returns every shard's settled
    /// status.
    pub fn settle(&self, watermark: Timestamp) -> Vec<ShardStatus> {
        let until = Self::lock(&self.quarantined_until);
        let mut state = Self::lock(&self.state);
        let mut live = 0u64;
        for (shard, entry) in state.iter_mut() {
            entry.quarantined = until.get(shard).is_some_and(|&t| t > watermark);
            if entry.quarantined {
                live += 1;
            }
        }
        self.quarantined.set_u64(live);
        state.values().copied().collect()
    }
}

/// Optional observability hooks threaded through
/// [`run_supervised_pipeline_observed`]: per-stage latency tracing,
/// supervisor metric export, flight-recorder mirroring, and `/health`
/// state. Every part is independent; [`Default`] is fully disabled
/// (zero overhead beyond an `Option` check per hook site).
#[derive(Debug, Clone, Default)]
pub struct PipelineObservability {
    /// Shard supervisor metric export.
    pub supervisor: Option<SupervisorTelemetry>,
    /// Per-stage latency recorders (`upbound_sim_stage_*`).
    pub tracer: Option<StageTracer>,
    /// Black box mirroring shard state; dumped on worker panic.
    pub flight: Option<FlightRecorder>,
    /// Live `/health` document state.
    pub health: Option<HealthState>,
}

impl PipelineObservability {
    /// Supervisor export plus stage tracing registered in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            supervisor: Some(SupervisorTelemetry::new(registry)),
            tracer: Some(StageTracer::new(registry, "sim")),
            flight: None,
            health: None,
        }
    }

    /// Mirrors shard incidents into `flight` and dumps on panic.
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Publishes watermark/shard state into `health`.
    pub fn with_health(mut self, health: HealthState) -> Self {
        self.health = Some(health);
        self
    }

    /// Drops the latency tracer (the overhead-gate bench compares this
    /// configuration against the traced one).
    pub fn without_tracing(mut self) -> Self {
        self.tracer = None;
        self
    }

    fn shard_status_for(&self, incident: &ShardIncident) -> ShardStatus {
        match &self.supervisor {
            Some(sup) => sup.record_incident(incident),
            None => ShardStatus {
                shard: incident.shard,
                quarantined: true,
                panics: 1,
                restarts: 1,
            },
        }
    }
}

/// [`run_sharded_pipeline`] with supervised workers: a panic inside a
/// shard's decision path is caught, the poisoned shard is quarantined
/// and rebuilt **empty and fail-open** (so its warm-up never falsely
/// drops), and the packet that triggered the panic passes fail-open.
/// The other `N − 1` shards keep filtering untouched, and because every
/// sequence number still reaches the merge stage, a poisoned shard can
/// never wedge the reorder buffer.
#[deprecated(
    since = "0.1.0",
    note = "use `PipelineRunner::new(inside, filter_config).shards(n).supervised(true).run(packets)`"
)]
pub fn run_supervised_pipeline<I>(
    packets: I,
    inside: Cidr,
    filter_config: BitmapFilterConfig,
    shards: usize,
    pipeline_config: PipelineConfig,
) -> SupervisedResult
where
    I: IntoIterator<Item = Packet>,
{
    let sharded = match ShardedFilter::builder(filter_config.clone())
        .shards(shards)
        .build()
    {
        Ok(sharded) => sharded,
        Err(err) => panic!("{err}"),
    };
    let uplink = Arc::clone(sharded.uplink());
    let quarantine = filter_config.expiry_timer();
    let rebuild_config = filter_config.with_fail_mode(FailMode::Open);
    let rebuild = move |_shard: usize, at: Timestamp| {
        let mut fresh =
            BitmapFilter::new(rebuild_config.clone()).with_shared_uplink(Arc::clone(&uplink));
        fresh.start_cold_at(at);
        fresh
    };
    supervised_pipeline_impl(
        packets,
        inside,
        sharded,
        rebuild,
        quarantine,
        pipeline_config,
        &PipelineObservability::default(),
    )
}

/// [`run_supervised_pipeline`] over a caller-built [`ShardedFilter`]
/// and rebuild policy.
///
/// `rebuild(shard, at)` must produce a replacement filter ready to take
/// over shard `shard` at watermark `at` — typically empty, sharing the
/// sharded filter's uplink monitor, and fail-open until it has observed
/// `quarantine` worth of traffic. The caller keeps (a clone of)
/// `sharded`, so per-shard state remains inspectable after the run.
#[deprecated(
    since = "0.1.0",
    note = "use `PipelineRunner` (the fault plan and supervision options cover the common \
            cases); caller-built shard banks keep working through this shim"
)]
pub fn run_supervised_pipeline_with<I, F, R>(
    packets: I,
    inside: Cidr,
    sharded: ShardedFilter<F>,
    rebuild: R,
    quarantine: TimeDelta,
    pipeline_config: PipelineConfig,
) -> SupervisedResult
where
    I: IntoIterator<Item = Packet>,
    F: PacketFilter<Stats = FilterStats> + Send + Sync,
    R: Fn(usize, Timestamp) -> F + Sync,
{
    supervised_pipeline_impl(
        packets,
        inside,
        sharded,
        rebuild,
        quarantine,
        pipeline_config,
        &PipelineObservability::default(),
    )
}

/// How many packets the ingest loop admits between `/health` watermark
/// refreshes. Coarse on purpose: the watermark is diagnostic, and the
/// hot loop should not take the health lock per packet.
const HEALTH_WATERMARK_STRIDE: u64 = 1024;

/// [`run_supervised_pipeline_with`] plus observability hooks: per-stage
/// latency scopes (ingest → dispatch → decide → merge → emit),
/// supervisor metric export, flight-recorder mirroring (with an
/// automatic dump on each caught worker panic), and live `/health`
/// watermark + shard state. Every hook is optional; a default
/// [`PipelineObservability`] makes this identical to the unobserved
/// variant.
#[deprecated(
    since = "0.1.0",
    note = "use `PipelineRunner::new(inside, filter_config).shards(n).supervised(true)\
            .observability(obs).run(packets)`"
)]
pub fn run_supervised_pipeline_observed<I, F, R>(
    packets: I,
    inside: Cidr,
    sharded: ShardedFilter<F>,
    rebuild: R,
    quarantine: TimeDelta,
    pipeline_config: PipelineConfig,
    obs: &PipelineObservability,
) -> SupervisedResult
where
    I: IntoIterator<Item = Packet>,
    F: PacketFilter<Stats = FilterStats> + Send + Sync,
    R: Fn(usize, Timestamp) -> F + Sync,
{
    supervised_pipeline_impl(
        packets,
        inside,
        sharded,
        rebuild,
        quarantine,
        pipeline_config,
        obs,
    )
}

pub(crate) fn supervised_pipeline_impl<I, F, R>(
    packets: I,
    inside: Cidr,
    sharded: ShardedFilter<F>,
    rebuild: R,
    quarantine: TimeDelta,
    pipeline_config: PipelineConfig,
    obs: &PipelineObservability,
) -> SupervisedResult
where
    I: IntoIterator<Item = Packet>,
    F: PacketFilter<Stats = FilterStats> + Send + Sync,
    R: Fn(usize, Timestamp) -> F + Sync,
{
    let (worker_txs, worker_rxs): (Vec<_>, Vec<_>) = (0..sharded.shards())
        .map(|_| bounded::<(u64, Packet, Direction, Timestamp)>(pipeline_config.channel_capacity))
        .unzip();
    let (merge_tx, merge_rx): (Sender<(u64, Packet, Direction, Verdict)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);
    let rebuild = &rebuild;

    let scope_result = crossbeam::thread::scope(|scope| {
        // Supervised filter workers: one per shard. A panic inside the
        // decision path unwinds out of the shard's lock guard
        // (parking_lot does not poison), so the shard stays lockable
        // but its state is suspect — quarantine it by swapping in a
        // rebuilt filter, and let the offending packet pass fail-open
        // so its sequence number still reaches the merge stage.
        let worker_handles: Vec<_> = worker_rxs
            .into_iter()
            .map(|rx: Receiver<(u64, Packet, Direction, Timestamp)>| {
                let handle = sharded.clone();
                let merge_tx = merge_tx.clone();
                scope.spawn(move |_| {
                    let mut incidents = Vec::new();
                    for (seq, packet, direction, watermark) in rx {
                        let decided = {
                            let _t = obs.tracer.as_ref().map(|t| t.scope(Stage::Decide));
                            catch_unwind(AssertUnwindSafe(|| {
                                handle.process_packet_at(&packet, direction, watermark)
                            }))
                        };
                        let verdict = match decided {
                            Ok(verdict) => verdict,
                            Err(_panic) => {
                                let shard = handle.shard_of(&packet.tuple(), direction);
                                // `shard_of` is in range, so the swap
                                // cannot fail.
                                let _ = handle.replace_shard(shard, rebuild(shard, watermark));
                                let incident = ShardIncident {
                                    shard,
                                    at: watermark,
                                    quarantined_until: watermark + quarantine,
                                };
                                let status = obs.shard_status_for(&incident);
                                if let Some(health) = &obs.health {
                                    health.update_shard(status);
                                }
                                if let Some(flight) = &obs.flight {
                                    flight.update_shard(status);
                                    flight.set_meta("last_panic_shard", &shard.to_string());
                                    flight.set_meta(
                                        "last_panic_watermark_us",
                                        &incident.at.as_micros().to_string(),
                                    );
                                    let _ = flight.dump_now(DumpTrigger::Panic);
                                }
                                incidents.push(incident);
                                Verdict::Pass
                            }
                        };
                        if merge_tx.send((seq, packet, direction, verdict)).is_err() {
                            break;
                        }
                    }
                    incidents
                })
            })
            .collect();
        drop(merge_tx); // workers hold the only remaining senders

        // Merge + account: identical to the unsupervised variant.
        let merge_handle = scope.spawn(move |_| {
            let mut result = PipelineResult {
                ingested: 0,
                passed: 0,
                dropped: 0,
                uplink_bytes: 0,
                downlink_bytes: 0,
                filter_stats: FilterStats::default(),
            };
            let mut next_seq = 0u64;
            let mut pending: BTreeMap<u64, (Packet, Direction, Verdict)> = BTreeMap::new();
            for (seq, packet, direction, verdict) in merge_rx {
                {
                    let _t = obs.tracer.as_ref().map(|t| t.scope(Stage::Merge));
                    pending.insert(seq, (packet, direction, verdict));
                }
                while let Some((packet, direction, verdict)) = pending.remove(&next_seq) {
                    let _t = obs.tracer.as_ref().map(|t| t.scope(Stage::Emit));
                    account(&mut result, &packet, direction, verdict);
                    next_seq += 1;
                }
            }
            for (_, (packet, direction, verdict)) in pending {
                let _t = obs.tracer.as_ref().map(|t| t.scope(Stage::Emit));
                account(&mut result, &packet, direction, verdict);
            }
            result
        });

        let mut watermark = Timestamp::ZERO;
        let mut admitted = 0u64;
        for (seq, packet) in packets.into_iter().enumerate() {
            let (shard, direction) = {
                let _t = obs.tracer.as_ref().map(|t| t.scope(Stage::Ingest));
                let direction = inside.direction_of(&packet.tuple());
                let shard = sharded.shard_of(&packet.tuple(), direction);
                watermark = watermark.max(packet.ts());
                (shard, direction)
            };
            let sent = {
                let _t = obs.tracer.as_ref().map(|t| t.scope(Stage::Dispatch));
                worker_txs[shard]
                    .send((seq as u64, packet, direction, watermark))
                    .is_ok()
            };
            if !sent {
                break;
            }
            admitted += 1;
            if admitted.is_multiple_of(HEALTH_WATERMARK_STRIDE) {
                if let Some(health) = &obs.health {
                    health.set_watermark(watermark.as_micros());
                }
            }
        }
        drop(worker_txs); // signal end-of-stream to every worker

        let mut incidents: Vec<ShardIncident> = Vec::new();
        for handle in worker_handles {
            incidents.extend(join_or_propagate(handle.join()));
        }
        incidents.sort_by_key(|i| (i.at, i.shard));
        let mut pipeline = join_or_propagate(merge_handle.join());
        pipeline.filter_stats = sharded.stats();
        if let Some(health) = &obs.health {
            health.set_watermark(watermark.as_micros());
        }
        if let Some(sup) = &obs.supervisor {
            for status in sup.settle(watermark) {
                if let Some(health) = &obs.health {
                    health.update_shard(status);
                }
                if let Some(flight) = &obs.flight {
                    flight.update_shard(status);
                }
            }
        }
        SupervisedResult {
            pipeline,
            supervisor: SupervisorReport {
                panics: incidents.len() as u64,
                restarts: incidents.len() as u64,
                incidents,
            },
        }
    });
    join_or_propagate(scope_result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PipelineRunner;
    use upbound_traffic::{generate, TraceConfig};

    fn trace() -> upbound_traffic::SyntheticTrace {
        generate(
            &TraceConfig::builder()
                .duration_secs(30.0)
                .flow_rate_per_sec(20.0)
                .seed(55)
                .build()
                .expect("valid"),
        )
    }

    fn inside() -> Cidr {
        "10.0.0.0/16".parse().expect("cidr")
    }

    /// The single-filter pipeline, driven through the internal impl so
    /// these tests keep exercising the engine directly (the public
    /// surface is [`PipelineRunner`], covered in `runner.rs`).
    fn run_plain(
        packets: impl IntoIterator<Item = Packet>,
        config: BitmapFilterConfig,
        pipeline_config: PipelineConfig,
    ) -> PipelineResult {
        run_pipeline_with(
            packets,
            inside(),
            BitmapFilter::new(config),
            pipeline_config,
            None,
        )
        .0
    }

    /// The sharded pipeline over a freshly-built shard bank — keeps the
    /// `shards == 1` sharded path testable (the runner routes 1 shard to
    /// the single-filter pipeline instead).
    fn run_sharded(
        packets: impl IntoIterator<Item = Packet>,
        config: BitmapFilterConfig,
        shards: usize,
        pipeline_config: PipelineConfig,
    ) -> PipelineResult {
        let sharded = ShardedFilter::builder(config)
            .shards(shards)
            .build()
            .expect("shard bank");
        sharded_pipeline_impl(packets, inside(), &sharded, pipeline_config)
    }

    #[test]
    fn pipeline_matches_sequential_run() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();

        // Sequential reference.
        let mut reference = BitmapFilter::new(config.clone());
        let mut seq_passed = 0u64;
        let mut seq_dropped = 0u64;
        for lp in &trace.packets {
            match reference.process_packet(&lp.packet, lp.direction) {
                Verdict::Pass => seq_passed += 1,
                Verdict::Drop => seq_dropped += 1,
            }
        }

        let result = run_plain(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            config,
            PipelineConfig::default(),
        );
        assert_eq!(result.ingested as usize, trace.packets.len());
        assert_eq!(result.passed, seq_passed);
        assert_eq!(result.dropped, seq_dropped);
        assert_eq!(result.filter_stats, reference.stats());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_runner() {
        // The `run_*` free functions are thin shims over the same impls
        // `PipelineRunner` drives; keep them verdict-identical until
        // they are removed.
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let packets = || trace.packets.iter().map(|lp| lp.packet.clone());

        let shim = run_pipeline(
            packets(),
            inside(),
            config.clone(),
            PipelineConfig::default(),
        );
        let runner = PipelineRunner::new(inside(), config.clone())
            .run(packets())
            .expect("runner");
        assert_eq!(shim, runner.pipeline);

        let shim = run_sharded_pipeline(
            packets(),
            inside(),
            config.clone(),
            4,
            PipelineConfig::default(),
        );
        let runner = PipelineRunner::new(inside(), config.clone())
            .shards(4)
            .run(packets())
            .expect("runner");
        assert_eq!(shim, runner.pipeline);

        let shim = run_supervised_pipeline(
            packets(),
            inside(),
            config.clone(),
            4,
            PipelineConfig::default(),
        );
        let runner = PipelineRunner::new(inside(), config)
            .shards(4)
            .supervised(true)
            .run(packets())
            .expect("runner");
        assert_eq!(shim.pipeline, runner.pipeline);
        assert_eq!(shim.supervisor, runner.supervisor);
        assert_eq!(runner.distortion, None);
    }

    #[test]
    fn instrumented_pipeline_matches_sequential_with_observer() {
        use upbound_core::TelemetryObserver;

        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();

        // Sequential reference with a live observer.
        let seq_registry = Registry::new();
        let mut reference = BitmapFilter::with_observer(
            config.clone(),
            TelemetryObserver::new(&seq_registry, "core", 256),
        );
        for lp in &trace.packets {
            reference.process_packet(&lp.packet, lp.direction);
        }

        // Pipeline run with its own observer plus stage metrics.
        let pipe_registry = Registry::new();
        let telemetry = PipelineTelemetry::new(&pipe_registry);
        let observed = BitmapFilter::with_observer(
            config,
            TelemetryObserver::new(&pipe_registry, "core", 256),
        );
        let (result, filter) = run_pipeline_instrumented(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            inside(),
            observed,
            PipelineConfig {
                // A tiny channel forces backpressure, exercising the
                // stall-counting send path without changing verdicts.
                channel_capacity: 2,
                ..PipelineConfig::default()
            },
            &telemetry,
        );

        // Verdict-for-verdict determinism: same filter counters and the
        // exact same journal (events carry P_d and uplink estimates, so
        // this checks the full observed operating-point sequence too).
        assert_eq!(result.filter_stats, reference.stats());
        let seq_events: Vec<_> = reference.observer().journal().iter().copied().collect();
        let pipe_events: Vec<_> = filter.observer().journal().iter().copied().collect();
        assert_eq!(seq_events, pipe_events);
        assert!(!pipe_events.is_empty(), "trace should produce events");

        let seq_snap = seq_registry.snapshot();
        let pipe_snap = pipe_registry.snapshot();
        for name in [
            "upbound_core_outbound_packets_total",
            "upbound_core_inbound_pass_total",
            "upbound_core_drops_unsolicited_total",
            "upbound_core_drops_red_total",
            "upbound_core_rotations_total",
        ] {
            assert_eq!(seq_snap.counter(name), pipe_snap.counter(name), "{name}");
        }

        // Stage metrics are internally consistent.
        assert_eq!(
            pipe_snap.counter("upbound_sim_ingest_packets_total"),
            Some(result.ingested)
        );
        assert_eq!(
            pipe_snap.counter("upbound_sim_filter_packets_total"),
            Some(result.ingested)
        );
        assert_eq!(
            pipe_snap.counter("upbound_sim_account_packets_total"),
            Some(result.ingested)
        );
        assert_eq!(
            pipe_snap.counter("upbound_sim_account_forwarded_bytes_total"),
            Some(result.uplink_bytes + result.downlink_bytes)
        );
    }

    #[test]
    fn tiny_channels_still_drain_everything() {
        let trace = trace();
        let result = run_plain(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            BitmapFilterConfig::paper_evaluation(),
            PipelineConfig {
                channel_capacity: 1,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(result.ingested as usize, trace.packets.len());
        assert_eq!(result.passed + result.dropped, result.ingested);
    }

    #[test]
    fn empty_input_shuts_down_cleanly() {
        let result = run_plain(
            std::iter::empty(),
            BitmapFilterConfig::paper_evaluation(),
            PipelineConfig::default(),
        );
        assert_eq!(result.ingested, 0);
        assert_eq!(result.passed, 0);
        assert_eq!(result.dropped, 0);
    }

    #[test]
    fn sharded_pipeline_matches_sequential_run() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();

        let reference = run_plain(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            config.clone(),
            PipelineConfig::default(),
        );

        for shards in [1usize, 4] {
            let result = run_sharded(
                trace.packets.iter().map(|lp| lp.packet.clone()),
                config.clone(),
                shards,
                PipelineConfig::default(),
            );
            assert_eq!(result, reference, "shards = {shards}");
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let reference = run_plain(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            config.clone(),
            PipelineConfig {
                batch_size: 1,
                ..PipelineConfig::default()
            },
        );
        for batch_size in [0usize, 3, 64, 4096] {
            let pipeline_config = PipelineConfig {
                batch_size,
                ..PipelineConfig::default()
            };
            let single = run_plain(
                trace.packets.iter().map(|lp| lp.packet.clone()),
                config.clone(),
                pipeline_config,
            );
            assert_eq!(single, reference, "batch_size = {batch_size}");
            let sharded = run_sharded(
                trace.packets.iter().map(|lp| lp.packet.clone()),
                config.clone(),
                4,
                pipeline_config,
            );
            assert_eq!(sharded, reference, "sharded batch_size = {batch_size}");
        }
    }

    #[test]
    fn sharded_pipeline_matches_sequential_on_nonmonotonic_trace() {
        // Deterministically scramble the trace's timestamp order (swap
        // timestamps pairwise within a stride) and inject a far-future
        // outlier, then assert the sharded pipeline still produces the
        // sequential verdict stream for shards ∈ {1, 4}.
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let mut packets: Vec<Packet> = trace.packets.iter().map(|lp| lp.packet.clone()).collect();
        for i in (0..packets.len().saturating_sub(7)).step_by(7) {
            let a = packets[i].ts();
            let b = packets[i + 6].ts();
            packets[i] = packets[i].clone().with_ts(b);
            packets[i + 6] = packets[i + 6].clone().with_ts(a);
        }
        let mid = packets.len() / 2;
        let far = packets[mid].ts() + upbound_net::TimeDelta::from_secs(40_000.0);
        packets[mid] = packets[mid].clone().with_ts(far);

        // Sequential reference over the scrambled stream.
        let mut reference = BitmapFilter::new(config.clone());
        let mut seq_passed = 0u64;
        let mut seq_dropped = 0u64;
        for packet in &packets {
            let direction = inside().direction_of(&packet.tuple());
            match reference.process_packet(packet, direction) {
                Verdict::Pass => seq_passed += 1,
                Verdict::Drop => seq_dropped += 1,
            }
        }

        for shards in [1usize, 4] {
            let result = run_sharded(
                packets.iter().cloned(),
                config.clone(),
                shards,
                PipelineConfig::default(),
            );
            assert_eq!(result.ingested as usize, packets.len());
            assert_eq!(result.passed, seq_passed, "shards = {shards}");
            assert_eq!(result.dropped, seq_dropped, "shards = {shards}");
        }
    }

    #[test]
    fn sharded_pipeline_tiny_channels_still_drain_everything() {
        let trace = trace();
        let result = run_sharded(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            BitmapFilterConfig::paper_evaluation(),
            3,
            PipelineConfig {
                channel_capacity: 1,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(result.ingested as usize, trace.packets.len());
        assert_eq!(result.passed + result.dropped, result.ingested);
    }

    #[test]
    fn sharded_pipeline_empty_input_shuts_down_cleanly() {
        let result = run_sharded(
            std::iter::empty(),
            BitmapFilterConfig::paper_evaluation(),
            4,
            PipelineConfig::default(),
        );
        assert_eq!(result.ingested, 0);
        assert_eq!(result.passed, 0);
        assert_eq!(result.dropped, 0);
    }

    #[test]
    fn supervised_pipeline_without_panics_matches_sharded() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let reference = run_sharded(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            config.clone(),
            4,
            PipelineConfig::default(),
        );
        let supervised = PipelineRunner::new(inside(), config)
            .shards(4)
            .supervised(true)
            .run(trace.packets.iter().map(|lp| lp.packet.clone()))
            .expect("runner");
        assert_eq!(supervised.pipeline, reference);
        assert_eq!(supervised.supervisor, SupervisorReport::default());
    }

    /// A filter that delegates to an inner [`BitmapFilter`] but panics
    /// when asked to decide a packet touching `trip_port` — the fault
    /// injection for supervisor tests.
    struct Grenade {
        inner: BitmapFilter,
        trip_port: Option<u16>,
    }

    impl PacketFilter for Grenade {
        type Stats = FilterStats;

        fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict {
            let tuple = packet.tuple();
            if let Some(port) = self.trip_port {
                if tuple.src().port() == port || tuple.dst().port() == port {
                    panic!("injected shard fault");
                }
            }
            self.inner.decide(packet, direction)
        }

        fn advance(&mut self, now: Timestamp) {
            self.inner.advance(now);
        }

        fn stats(&self) -> FilterStats {
            self.inner.stats()
        }

        fn memory_bytes(&self) -> usize {
            self.inner.memory_bytes()
        }

        fn drop_probability(&self, now: Timestamp) -> f64 {
            self.inner.drop_probability(now)
        }

        fn name(&self) -> &str {
            "grenade"
        }
    }

    fn grenade_shards(
        config: &BitmapFilterConfig,
        shards: usize,
        trip_port: Option<u16>,
    ) -> ShardedFilter<Grenade> {
        let uplink = Arc::new(config.uplink_monitor());
        let filters = (0..shards)
            .map(|_| Grenade {
                inner: BitmapFilter::new(config.clone()).with_shared_uplink(Arc::clone(&uplink)),
                trip_port,
            })
            .collect();
        ShardedFilter::from_shards(
            upbound_core::FlowHash::new(config.hole_punching()),
            uplink,
            filters,
        )
    }

    #[test]
    fn shard_panic_degrades_only_that_shard() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let shards = 4usize;
        let packets: Vec<Packet> = trace.packets.iter().map(|lp| lp.packet.clone()).collect();

        // Pick a trip wire: an inbound packet about two-thirds in, so
        // the victim shard has state worth poisoning.
        let trip_at = packets.len() * 2 / 3;
        let trip_packet = packets[trip_at..]
            .iter()
            .find(|p| inside().direction_of(&p.tuple()) == Direction::Inbound)
            .expect("trace has inbound packets");
        let trip_port = trip_packet.tuple().src().port();
        let victim = grenade_shards(&config, shards, Some(trip_port))
            .shard_of(&trip_packet.tuple(), Direction::Inbound);

        let rebuild_config = config.clone().with_fail_mode(FailMode::Open);
        let run = |trip: Option<u16>| {
            let sharded = grenade_shards(&config, shards, trip);
            let uplink = Arc::clone(sharded.uplink());
            let rebuild_config = rebuild_config.clone();
            let rebuild = move |_shard: usize, at: Timestamp| {
                let mut inner = BitmapFilter::new(rebuild_config.clone())
                    .with_shared_uplink(Arc::clone(&uplink));
                inner.start_cold_at(at);
                Grenade {
                    inner,
                    trip_port: None,
                }
            };
            let result = supervised_pipeline_impl(
                packets.iter().cloned(),
                inside(),
                sharded.clone(),
                rebuild,
                config.expiry_timer(),
                PipelineConfig::default(),
                &PipelineObservability::default(),
            );
            let shard_stats: Vec<FilterStats> = (0..shards)
                .map(|i| sharded.with_shard(i, |f| f.stats()).unwrap())
                .collect();
            (result, shard_stats)
        };

        let (clean, clean_stats) = run(None);
        let (faulted, faulted_stats) = run(Some(trip_port));

        // The supervisor caught at least one panic, quarantined only
        // the victim shard, and every packet still drained through the
        // merge stage (nothing wedged, nothing lost).
        assert!(faulted.supervisor.panics >= 1);
        assert_eq!(faulted.supervisor.panics, faulted.supervisor.restarts);
        assert!(faulted
            .supervisor
            .incidents
            .iter()
            .all(|i| i.shard == victim));
        assert!(faulted
            .supervisor
            .incidents
            .iter()
            .all(|i| i.quarantined_until == i.at + config.expiry_timer()));
        assert_eq!(faulted.pipeline.ingested as usize, packets.len());
        assert_eq!(
            faulted.pipeline.passed + faulted.pipeline.dropped,
            faulted.pipeline.ingested
        );
        assert_eq!(clean.supervisor, SupervisorReport::default());

        // Sequential-equivalence for survivors: every shard except the
        // victim ends with byte-identical counters to the clean run.
        for (i, (clean_s, faulted_s)) in clean_stats.iter().zip(&faulted_stats).enumerate() {
            if i != victim {
                assert_eq!(clean_s, faulted_s, "survivor shard {i} diverged");
            }
        }
        // The victim really was degraded (rebuilt mid-run), and its
        // rebuilt filter was armed fail-open: it never falsely dropped
        // while cold unless it had warmed back up.
        assert_ne!(clean_stats[victim], faulted_stats[victim]);
    }

    #[test]
    fn observed_pipeline_exports_supervisor_metrics_and_dumps_on_panic() {
        use upbound_telemetry::MetricValue;

        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let shards = 4usize;
        let packets: Vec<Packet> = trace.packets.iter().map(|lp| lp.packet.clone()).collect();
        let trip_packet = packets[packets.len() / 2..]
            .iter()
            .find(|p| inside().direction_of(&p.tuple()) == Direction::Inbound)
            .expect("trace has inbound packets");
        let trip_port = trip_packet.tuple().src().port();

        let registry = Registry::new();
        let flight = FlightRecorder::default();
        let dump_path =
            std::env::temp_dir().join(format!("upbound-sim-observed-{}.dump", std::process::id()));
        let _ = std::fs::remove_file(&dump_path);
        flight.set_dump_path(&dump_path);
        flight.attach_registry(registry.clone());
        let health = HealthState::new();
        let obs = PipelineObservability::new(&registry)
            .with_flight_recorder(flight.clone())
            .with_health(health.clone());

        let sharded = grenade_shards(&config, shards, Some(trip_port));
        let uplink = Arc::clone(sharded.uplink());
        let rebuild_config = config.clone().with_fail_mode(FailMode::Open);
        let rebuild = move |_shard: usize, at: Timestamp| {
            let mut inner =
                BitmapFilter::new(rebuild_config.clone()).with_shared_uplink(Arc::clone(&uplink));
            inner.start_cold_at(at);
            Grenade {
                inner,
                trip_port: None,
            }
        };
        let result = supervised_pipeline_impl(
            packets.iter().cloned(),
            inside(),
            sharded,
            rebuild,
            config.expiry_timer(),
            PipelineConfig::default(),
            &obs,
        );
        assert!(result.supervisor.panics >= 1);

        // Supervisor counters mirror the in-memory report.
        let snapshot = registry.snapshot();
        let counter = |name: &str| match snapshot.get(name).map(|s| &s.value) {
            Some(MetricValue::Counter(v)) => *v,
            other => panic!("{name} missing or not a counter: {other:?}"),
        };
        assert_eq!(
            counter("upbound_sim_shard_panics_total"),
            result.supervisor.panics
        );
        assert_eq!(
            counter("upbound_sim_shard_restarts_total"),
            result.supervisor.restarts
        );
        assert_eq!(
            counter("upbound_sim_shard_incidents_total"),
            result.supervisor.incidents.len() as u64
        );

        // Stage tracing recorded latency for every stage that saw work.
        for stage in [Stage::Ingest, Stage::Dispatch, Stage::Decide, Stage::Emit] {
            let name = format!("upbound_sim_stage_{}_latency_seconds", stage.label());
            match snapshot.get(&name).map(|s| &s.value) {
                Some(MetricValue::Histogram(h)) => {
                    assert!(h.count > 0, "{name} recorded nothing")
                }
                other => panic!("{name} missing or not a histogram: {other:?}"),
            }
        }

        // The panic path wrote a dump that parses and names the shard.
        assert!(flight.dumps_written() >= 1, "no dump written on panic");
        let text = std::fs::read_to_string(&dump_path).expect("dump file");
        let dump = upbound_telemetry::FlightRecorder::parse(&text).expect("dump parses");
        assert_eq!(dump.trigger, upbound_telemetry::DumpTrigger::Panic);
        assert!(!dump.shards.is_empty());
        assert!(dump.shards.iter().any(|s| s.panics >= 1));
        assert!(dump.meta.iter().any(|(k, _)| k == "last_panic_shard"));
        let _ = std::fs::remove_file(&dump_path);

        // Health carries the final watermark and the quarantine record.
        let doc = health.render();
        assert!(doc.contains("\"watermark_micros\""));
        assert!(
            doc.contains("\"panics\":"),
            "health doc lacks shard state: {doc}"
        );
    }

    #[test]
    fn subscriber_pipeline_matches_sequential_table() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();
        let packets: Vec<Packet> = trace.packets.iter().map(|lp| lp.packet.clone()).collect();

        // Two subscribers carved out of the trace's client network plus
        // one that never sees traffic.
        let provision = |table: &mut SubscriberTable| {
            for cidr in ["10.0.0.0/17", "10.0.128.0/17", "172.16.0.0/16"] {
                table
                    .add_subscriber(cidr.parse().expect("cidr"), config.clone())
                    .expect("provision");
            }
        };

        // Sequential reference.
        let mut reference = SubscriberTable::new();
        provision(&mut reference);
        let classifier = reference.classifier();
        let mut seq = PipelineResult {
            ingested: 0,
            passed: 0,
            dropped: 0,
            uplink_bytes: 0,
            downlink_bytes: 0,
            filter_stats: FilterStats::default(),
        };
        for packet in &packets {
            let direction = classifier.direction_of(packet);
            let verdict = reference.process_packet(packet);
            account(&mut seq, packet, direction, verdict);
        }
        seq.filter_stats = reference.merged_stats();

        for batch_size in [1usize, 64] {
            let mut table = SubscriberTable::new();
            provision(&mut table);
            let (result, table) = subscriber_pipeline_impl(
                packets.iter().cloned(),
                table,
                PipelineConfig {
                    batch_size,
                    ..PipelineConfig::default()
                },
            );
            assert_eq!(result, seq, "batch_size = {batch_size}");
            assert_eq!(
                table.per_subscriber_stats(),
                reference.per_subscriber_stats(),
                "batch_size = {batch_size}"
            );
            // The untouched subscriber never materialized.
            assert_eq!(
                table.subscriber_state(2),
                Some(upbound_core::SubscriberState::Dormant)
            );
        }
    }

    #[test]
    fn byte_accounting_matches_directions() {
        let trace = trace();
        let result = run_plain(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            // Pd = 0 under no load (high thresholds): everything passes.
            BitmapFilterConfig::builder()
                .drop_policy(upbound_core::DropPolicy::new(1e12, 2e12).expect("valid"))
                .build()
                .expect("valid"),
            PipelineConfig::default(),
        );
        assert_eq!(result.dropped, 0);
        assert_eq!(result.uplink_bytes, trace.upload_bytes());
        assert_eq!(result.downlink_bytes, trace.download_bytes());
    }
}
