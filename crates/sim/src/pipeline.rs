//! A multi-threaded edge-router pipeline.
//!
//! The replay engine is single-threaded by design (deterministic
//! measurement); this module is the deployment-shaped variant: a
//! three-stage pipeline over bounded crossbeam channels, the way a
//! software edge router would actually run the filter —
//!
//! ```text
//! ingest (parse/classify) ──► filter (bitmap decide) ──► account (stats)
//! ```
//!
//! The filter stage owns the [`BitmapFilter`] exclusively (no locking on
//! the hot path); bounded channels provide backpressure; dropping the
//! upstream sender shuts the pipeline down cleanly. Because exactly one
//! thread touches the filter in packet order, the pipeline's verdicts
//! are **identical** to a sequential run — asserted by tests.
//!
//! [`BitmapFilter`]: upbound_core::BitmapFilter

use crossbeam::channel::{bounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use upbound_core::{BitmapFilter, BitmapFilterConfig, FilterStats, Verdict};
use upbound_net::{Cidr, Direction, Packet};

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Capacity of each inter-stage channel (backpressure bound).
    pub channel_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            channel_capacity: 1024,
        }
    }
}

/// Aggregate output of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Packets that entered the pipeline.
    pub ingested: u64,
    /// Packets forwarded.
    pub passed: u64,
    /// Packets dropped by the filter.
    pub dropped: u64,
    /// Wire bytes forwarded upstream (outbound).
    pub uplink_bytes: u64,
    /// Wire bytes forwarded downstream (inbound).
    pub downlink_bytes: u64,
    /// The filter's own counters at shutdown.
    pub filter_stats: FilterStats,
}

/// Runs `packets` through a freshly-built filter on a three-stage
/// threaded pipeline and returns the aggregate result.
///
/// `packets` is consumed on the caller's thread (stage 1); stages 2 and
/// 3 run on scoped worker threads. The function returns once every
/// packet has drained through all stages.
pub fn run_pipeline<I>(
    packets: I,
    inside: Cidr,
    filter_config: BitmapFilterConfig,
    pipeline_config: PipelineConfig,
) -> PipelineResult
where
    I: IntoIterator<Item = Packet>,
{
    let (to_filter_tx, to_filter_rx): (Sender<(Packet, Direction)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);
    let (to_stats_tx, to_stats_rx): (Sender<(Packet, Direction, Verdict)>, Receiver<_>) =
        bounded(pipeline_config.channel_capacity);

    crossbeam::thread::scope(|scope| {
        // Stage 2: the filter thread — exclusive owner of the bitmap.
        let filter_handle = scope.spawn(move |_| {
            let mut filter = BitmapFilter::new(filter_config);
            for (packet, direction) in to_filter_rx {
                let verdict = filter.process_packet(&packet, direction);
                // A closed stats stage means shutdown was requested.
                if to_stats_tx.send((packet, direction, verdict)).is_err() {
                    break;
                }
            }
            filter.stats()
        });

        // Stage 3: accounting.
        let stats_handle = scope.spawn(move |_| {
            let mut result = PipelineResult {
                ingested: 0,
                passed: 0,
                dropped: 0,
                uplink_bytes: 0,
                downlink_bytes: 0,
                filter_stats: FilterStats::default(),
            };
            for (packet, direction, verdict) in to_stats_rx {
                result.ingested += 1;
                match verdict {
                    Verdict::Pass => {
                        result.passed += 1;
                        match direction {
                            Direction::Outbound => {
                                result.uplink_bytes += packet.wire_len() as u64;
                            }
                            Direction::Inbound => {
                                result.downlink_bytes += packet.wire_len() as u64;
                            }
                        }
                    }
                    Verdict::Drop => result.dropped += 1,
                }
            }
            result
        });

        // Stage 1: ingest — parse/classify on the calling thread.
        for packet in packets {
            let direction = inside.direction_of(&packet.tuple());
            if to_filter_tx.send((packet, direction)).is_err() {
                break;
            }
        }
        drop(to_filter_tx); // signal end-of-stream downstream

        let filter_stats = filter_handle.join().expect("filter stage panicked");
        let mut result = stats_handle.join().expect("stats stage panicked");
        result.filter_stats = filter_stats;
        result
    })
    .expect("pipeline scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_traffic::{generate, TraceConfig};

    fn trace() -> upbound_traffic::SyntheticTrace {
        generate(
            &TraceConfig::builder()
                .duration_secs(30.0)
                .flow_rate_per_sec(20.0)
                .seed(55)
                .build()
                .expect("valid"),
        )
    }

    fn inside() -> Cidr {
        "10.0.0.0/16".parse().expect("cidr")
    }

    #[test]
    fn pipeline_matches_sequential_run() {
        let trace = trace();
        let config = BitmapFilterConfig::paper_evaluation();

        // Sequential reference.
        let mut reference = BitmapFilter::new(config.clone());
        let mut seq_passed = 0u64;
        let mut seq_dropped = 0u64;
        for lp in &trace.packets {
            match reference.process_packet(&lp.packet, lp.direction) {
                Verdict::Pass => seq_passed += 1,
                Verdict::Drop => seq_dropped += 1,
            }
        }

        let result = run_pipeline(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            inside(),
            config,
            PipelineConfig::default(),
        );
        assert_eq!(result.ingested as usize, trace.packets.len());
        assert_eq!(result.passed, seq_passed);
        assert_eq!(result.dropped, seq_dropped);
        assert_eq!(result.filter_stats, reference.stats());
    }

    #[test]
    fn tiny_channels_still_drain_everything() {
        let trace = trace();
        let result = run_pipeline(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            inside(),
            BitmapFilterConfig::paper_evaluation(),
            PipelineConfig {
                channel_capacity: 1,
            },
        );
        assert_eq!(result.ingested as usize, trace.packets.len());
        assert_eq!(result.passed + result.dropped, result.ingested);
    }

    #[test]
    fn empty_input_shuts_down_cleanly() {
        let result = run_pipeline(
            std::iter::empty(),
            inside(),
            BitmapFilterConfig::paper_evaluation(),
            PipelineConfig::default(),
        );
        assert_eq!(result.ingested, 0);
        assert_eq!(result.passed, 0);
        assert_eq!(result.dropped, 0);
    }

    #[test]
    fn byte_accounting_matches_directions() {
        let trace = trace();
        let result = run_pipeline(
            trace.packets.iter().map(|lp| lp.packet.clone()),
            inside(),
            // Pd = 0 under no load (high thresholds): everything passes.
            BitmapFilterConfig::builder()
                .drop_policy(upbound_core::DropPolicy::new(1e12, 2e12).expect("valid"))
                .build()
                .expect("valid"),
            PipelineConfig::default(),
        );
        assert_eq!(result.dropped, 0);
        assert_eq!(result.uplink_bytes, trace.upload_bytes());
        assert_eq!(result.downlink_bytes, trace.download_bytes());
    }
}
