//! The trace-replay engine.

use crate::fault::{AtomicCheckpointSink, CheckpointSink};
use crate::{OracleFilter, PacketFilter};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::HashSet;
use std::path::Path;
use upbound_core::{SnapshotError, Snapshottable, SubscriberTable, Verdict};
use upbound_net::pcap::{IngestStats, PcapReader};
use upbound_net::{
    Cidr, Direction, FiveTuple, NetError, Packet, PacketSource, SourcePoll, TimeDelta, Timestamp,
};
use upbound_stats::BinnedSeries;
use upbound_traffic::SyntheticTrace;

/// Replay configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Width of the throughput/drop-rate bins, in seconds.
    pub bin_secs: f64,
    /// Maintain the blocked-σ store of the paper's Figure 9 setup: once
    /// an inbound packet of a connection is dropped, all future packets
    /// of that connection (both directions) are dropped without
    /// consulting the filter.
    pub block_connections: bool,
    /// Expiry window of the error-accounting oracle (should equal the
    /// filter's `T_e`).
    pub oracle_expiry: TimeDelta,
    /// Maximum packets decided per [`PacketFilter::decide_batch`] call.
    /// The engine flushes a partial batch whenever a packet's connection
    /// matches an inbound packet already pending (its verdict may block
    /// the newcomer), so results are byte-identical to the per-packet
    /// path at every batch size. `1` restores the per-packet path; `0`
    /// is treated as `1`.
    pub batch_size: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            bin_secs: 10.0,
            block_connections: true,
            oracle_expiry: TimeDelta::from_secs(20.0),
            batch_size: 64,
        }
    }
}

/// Everything measured during one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Display name of the filter that ran.
    pub filter_name: String,
    /// Unfiltered uplink bits per bin.
    pub pre_uplink: BinnedSeries,
    /// Unfiltered downlink bits per bin.
    pub pre_downlink: BinnedSeries,
    /// Surviving uplink bits per bin.
    pub post_uplink: BinnedSeries,
    /// Surviving downlink bits per bin.
    pub post_downlink: BinnedSeries,
    /// Inbound packets offered per bin.
    pub inbound_offered: BinnedSeries,
    /// Inbound packets dropped per bin (filter + blocked store).
    pub inbound_dropped: BinnedSeries,
    /// Total packets replayed.
    pub total_packets: u64,
    /// Total inbound packets offered.
    pub total_inbound_packets: u64,
    /// Total inbound packets dropped.
    pub total_dropped_packets: u64,
    /// Inbound packets the filter passed but the oracle would drop.
    pub false_positives: u64,
    /// Inbound packets the filter dropped but the oracle would pass.
    pub false_negatives: u64,
    /// Connections that ended up in the blocked store.
    pub blocked_connections: u64,
}

impl ReplayResult {
    /// Overall inbound drop rate (packets).
    pub fn drop_rate(&self) -> f64 {
        if self.total_inbound_packets == 0 {
            0.0
        } else {
            self.total_dropped_packets as f64 / self.total_inbound_packets as f64
        }
    }

    /// Per-bin inbound drop rates `(t, dropped/offered)`, skipping empty
    /// bins.
    pub fn drop_rate_series(&self) -> Vec<(f64, f64)> {
        (0..self.inbound_offered.n_bins())
            .filter_map(|i| {
                let offered = self.inbound_offered.bin_total(i);
                if offered <= 0.0 {
                    return None;
                }
                let t = i as f64 * self.inbound_offered.bin_secs();
                Some((t, self.inbound_dropped.bin_total(i) / offered))
            })
            .collect()
    }

    /// False-positive rate over inbound packets the oracle would drop.
    pub fn false_positive_rate(&self) -> f64 {
        let should_drop = self.false_positives
            + self
                .total_dropped_packets
                .saturating_sub(self.false_negatives);
        if should_drop == 0 {
            0.0
        } else {
            self.false_positives as f64 / should_drop as f64
        }
    }

    /// False-negative rate over inbound packets the oracle would pass.
    pub fn false_negative_rate(&self) -> f64 {
        let should_pass = self.false_negatives
            + self
                .total_inbound_packets
                .saturating_sub(self.total_dropped_packets)
                .saturating_sub(self.false_positives);
        if should_pass == 0 {
            0.0
        } else {
            self.false_negatives as f64 / should_pass as f64
        }
    }
}

/// Replays labeled traces through a [`PacketFilter`].
#[derive(Debug, Clone)]
pub struct ReplayEngine {
    config: ReplayConfig,
}

impl ReplayEngine {
    /// Creates an engine.
    pub fn new(config: ReplayConfig) -> Self {
        Self { config }
    }

    /// Replays `trace` through `filter` and collects the metrics.
    ///
    /// The replay semantics follow §5.3: every packet of the original
    /// trace is offered in timestamp order; outbound packets of blocked
    /// connections are suppressed before reaching the filter (the trace
    /// cannot "un-trigger" them, but suppressing them reproduces the
    /// bandwidth effect of the block).
    pub fn run<F: PacketFilter>(&self, trace: &SyntheticTrace, filter: &mut F) -> ReplayResult {
        self.run_iter(
            filter,
            trace.packets.iter().map(|lp| (&lp.packet, lp.direction)),
        )
    }

    /// Like [`run`](Self::run), but additionally writes an atomic
    /// checkpoint of `filter` to `path` every `every` of **trace time**
    /// (the cadence a crash-safe deployment would use), plus one final
    /// checkpoint at end-of-trace. Returns the replay metrics and how
    /// many checkpoints were written.
    ///
    /// # Errors
    ///
    /// Propagates the first checkpoint write failure as
    /// [`SnapshotError::Io`]; the replay stops at the failing packet.
    #[deprecated(
        since = "0.1.0",
        note = "use `PipelineRunner::new(inside, config).checkpoint(path, every).measure(trace)`"
    )]
    pub fn run_checkpointed<F>(
        &self,
        trace: &SyntheticTrace,
        filter: &mut F,
        path: &Path,
        every: TimeDelta,
    ) -> Result<(ReplayResult, u64), SnapshotError>
    where
        F: PacketFilter + Snapshottable,
    {
        self.checkpointed_impl(trace, filter, path, every, &mut AtomicCheckpointSink)
    }

    /// [`run_checkpointed`](Self::run_checkpointed) through a
    /// caller-supplied [`CheckpointSink`] — the injectable write layer
    /// the fault-injection subsystem uses to exercise checkpoint I/O
    /// failure without touching the filesystem's failure modes.
    ///
    /// # Errors
    ///
    /// Propagates the first checkpoint write failure from the sink; the
    /// replay stops at the failing packet.
    #[deprecated(
        since = "0.1.0",
        note = "use `PipelineRunner::new(inside, config).checkpoint(path, every).measure(trace)`; \
                fault-injection tests that need a custom sink call the internal impl"
    )]
    pub fn run_checkpointed_with<F, S>(
        &self,
        trace: &SyntheticTrace,
        filter: &mut F,
        path: &Path,
        every: TimeDelta,
        sink: &mut S,
    ) -> Result<(ReplayResult, u64), SnapshotError>
    where
        F: PacketFilter + Snapshottable,
        S: CheckpointSink,
    {
        self.checkpointed_impl(trace, filter, path, every, sink)
    }

    pub(crate) fn checkpointed_impl<F, S>(
        &self,
        trace: &SyntheticTrace,
        filter: &mut F,
        path: &Path,
        every: TimeDelta,
        sink: &mut S,
    ) -> Result<(ReplayResult, u64), SnapshotError>
    where
        F: PacketFilter + Snapshottable,
        S: CheckpointSink,
    {
        let mut written = 0u64;
        let mut failure: Option<SnapshotError> = None;
        let mut next_due: Option<Timestamp> = None;
        let mut watermark = Timestamp::ZERO;
        let result = self.run_iter_with(
            filter,
            trace.packets.iter().map(|lp| (&lp.packet, lp.direction)),
            |f, now| {
                if failure.is_some() {
                    return false;
                }
                watermark = watermark.max(now);
                let due = *next_due.get_or_insert(watermark + every);
                if watermark >= due {
                    match sink.write(path, &f.snapshot_bytes(watermark)) {
                        Ok(()) => {
                            written += 1;
                            next_due = Some(due + every);
                        }
                        Err(e) => {
                            failure = Some(e);
                            return false;
                        }
                    }
                }
                true
            },
        );
        if let Some(e) = failure {
            return Err(e);
        }
        sink.write(path, &filter.snapshot_bytes(watermark))?;
        written += 1;
        Ok((result, written))
    }

    /// Replays `trace` through a multi-tenant [`SubscriberTable`].
    ///
    /// The trace's own direction labels are ignored: each packet's
    /// accounting direction comes from the table's classifier (source
    /// inside any subscriber network → outbound, everything else →
    /// inbound), and batches flow through the table's subscriber-grouped
    /// dispatch, so one replay measures every provisioned tenant at
    /// once. Per-tenant results remain available from the table
    /// afterwards via
    /// [`per_subscriber_stats`](SubscriberTable::per_subscriber_stats).
    #[deprecated(
        since = "0.1.0",
        note = "use `PipelineRunner::new(inside, config).measure_subscribers(trace, table)`"
    )]
    pub fn run_subscribers<F: PacketFilter>(
        &self,
        trace: &SyntheticTrace,
        table: &mut SubscriberTable<F>,
    ) -> ReplayResult {
        self.subscribers_impl(trace, table)
    }

    pub(crate) fn subscribers_impl<F: PacketFilter>(
        &self,
        trace: &SyntheticTrace,
        table: &mut SubscriberTable<F>,
    ) -> ReplayResult {
        let classifier = table.classifier();
        self.run_iter(
            table,
            trace
                .packets
                .iter()
                .map(move |lp| (&lp.packet, classifier.direction_of(&lp.packet))),
        )
    }

    /// Replays the remaining records of a pcap `reader` through `filter`,
    /// classifying direction against `client_net` (source inside →
    /// outbound), and returns the replay metrics together with the
    /// reader's ingestion accounting.
    ///
    /// Under [`RecoveryPolicy::Skip`](upbound_net::pcap::RecoveryPolicy)
    /// corrupt records are skipped and counted in the returned
    /// [`IngestStats`] rather than aborting the replay.
    ///
    /// # Errors
    ///
    /// Propagates reader errors: any malformed record under
    /// [`RecoveryPolicy::Strict`](upbound_net::pcap::RecoveryPolicy),
    /// only I/O errors under `Skip`.
    #[deprecated(
        since = "0.1.0",
        note = "wrap the reader in `upbound_net::PcapSource` and use `run_source` \
                (or `PipelineRunner::measure_source`)"
    )]
    pub fn run_capture<F: PacketFilter, R: std::io::Read>(
        &self,
        reader: &mut PcapReader<R>,
        client_net: Cidr,
        filter: &mut F,
    ) -> Result<(ReplayResult, IngestStats), NetError> {
        // Deliberately NOT routed through `run_source`: this is the
        // pre-`PacketSource` drain-then-replay loop, kept verbatim so the
        // differential tests compare two genuinely distinct code paths.
        let mut packets: Vec<(Packet, Direction)> = Vec::new();
        while let Some(packet) = reader.read_packet()? {
            let direction = client_net.direction_of(&packet.tuple());
            packets.push((packet, direction));
        }
        let result = self.run_iter(filter, packets);
        Ok((result, *reader.stats()))
    }

    /// Replays a [`PacketSource`] through `filter` until the source
    /// reports [`SourcePoll::End`], and returns the replay metrics
    /// together with the source's final ingestion accounting.
    ///
    /// This is the unified dataplane entry point: pcap replay
    /// ([`PcapSource`](upbound_net::PcapSource)), looped replay
    /// ([`BufferedSource`](upbound_net::BufferedSource)) and live capture
    /// ([`LiveSource`](upbound_net::LiveSource)) all drive the same
    /// batched loop, so verdicts and statistics depend only on the packet
    /// stream, never on the backend. [`SourcePoll::Idle`] polls sleep
    /// briefly and retry, so live sources replay in (near) real time.
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable source error; metrics up to the
    /// failing poll are discarded (use [`IngestStats`] for forensics).
    pub fn run_source<F, S>(
        &self,
        source: &mut S,
        filter: &mut F,
    ) -> Result<(ReplayResult, IngestStats), NetError>
    where
        F: PacketFilter,
        S: PacketSource + ?Sized,
    {
        self.run_source_with(source, filter, |_, _| true)
    }

    /// [`run_source`](Self::run_source) with the flush hook of
    /// `run_iter_with`: `tick(filter, last_ts)` runs after each decided
    /// batch; returning `false` stops the replay early.
    pub(crate) fn run_source_with<F, S>(
        &self,
        source: &mut S,
        filter: &mut F,
        tick: impl FnMut(&mut F, Timestamp) -> bool,
    ) -> Result<(ReplayResult, IngestStats), NetError>
    where
        F: PacketFilter,
        S: PacketSource + ?Sized,
    {
        let mut error = None;
        let iter = SourceIter {
            source: &mut *source,
            chunk: Vec::with_capacity(SOURCE_CHUNK),
            buf: Vec::new(),
            error: &mut error,
        };
        let result = self.run_iter_with(filter, iter, tick);
        match error {
            Some(err) => Err(err),
            None => Ok((result, source.stats())),
        }
    }

    fn run_iter<F, P, I>(&self, filter: &mut F, packets: I) -> ReplayResult
    where
        F: PacketFilter,
        P: Borrow<Packet>,
        I: IntoIterator<Item = (P, Direction)>,
    {
        self.run_iter_with(filter, packets, |_, _| true)
    }

    /// The replay loop with a flush hook: after each decided batch is
    /// accounted, `tick(filter, last_ts)` runs with the timestamp of the
    /// batch's last packet; returning `false` stops the replay early
    /// (used to abort on checkpoint failures).
    ///
    /// Packets are staged into a batch and decided via
    /// [`PacketFilter::decide_batch`]. The blocked-σ store feeds back
    /// into which packets reach the filter at all, so the batch is
    /// flushed early whenever an arriving packet's connection matches an
    /// inbound packet already staged — the staged packet's verdict may
    /// block the newcomer. That hazard rule (plus oracle scoring and
    /// pre-filter accounting at staging time, both independent of the
    /// filter) makes the batched loop byte-identical to the per-packet
    /// loop at every batch size.
    fn run_iter_with<F, P, I>(
        &self,
        filter: &mut F,
        packets: I,
        mut tick: impl FnMut(&mut F, Timestamp) -> bool,
    ) -> ReplayResult
    where
        F: PacketFilter,
        P: Borrow<Packet>,
        I: IntoIterator<Item = (P, Direction)>,
    {
        let bin = self.config.bin_secs;
        let mut result = ReplayResult {
            filter_name: filter.name().to_owned(),
            pre_uplink: BinnedSeries::new(bin),
            pre_downlink: BinnedSeries::new(bin),
            post_uplink: BinnedSeries::new(bin),
            post_downlink: BinnedSeries::new(bin),
            inbound_offered: BinnedSeries::new(bin),
            inbound_dropped: BinnedSeries::new(bin),
            total_packets: 0,
            total_inbound_packets: 0,
            total_dropped_packets: 0,
            false_positives: 0,
            false_negatives: 0,
            blocked_connections: 0,
        };
        let mut oracle = OracleFilter::new(self.config.oracle_expiry);
        let mut blocked: HashSet<FiveTuple> = HashSet::new();

        let batch_limit = self.config.batch_size.max(1);
        let mut staged: Vec<(Packet, Direction)> = Vec::with_capacity(batch_limit);
        let mut staged_oracle: Vec<Verdict> = Vec::with_capacity(batch_limit);
        let mut staged_inbound: HashSet<FiveTuple> = HashSet::new();
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch_limit);

        // Decides and accounts everything staged; returns `false` when
        // the tick hook asks to stop.
        let mut flush = |filter: &mut F,
                         staged: &mut Vec<(Packet, Direction)>,
                         staged_oracle: &mut Vec<Verdict>,
                         staged_inbound: &mut HashSet<FiveTuple>,
                         blocked: &mut HashSet<FiveTuple>,
                         result: &mut ReplayResult|
         -> bool {
            if staged.is_empty() {
                return true;
            }
            verdicts.clear();
            filter.decide_batch(staged, &mut verdicts);
            let last_ts = staged[staged.len() - 1].0.ts();
            for ((packet, direction), (verdict, oracle_verdict)) in staged
                .drain(..)
                .zip(verdicts.drain(..).zip(staged_oracle.drain(..)))
            {
                let t = packet.ts().as_secs_f64();
                let bits = packet.wire_bits() as f64;
                match (direction, verdict) {
                    (Direction::Outbound, _) => result.post_uplink.add(t, bits),
                    (Direction::Inbound, Verdict::Pass) => {
                        result.post_downlink.add(t, bits);
                        if oracle_verdict == Verdict::Drop {
                            result.false_positives += 1;
                        }
                    }
                    (Direction::Inbound, Verdict::Drop) => {
                        result.total_dropped_packets += 1;
                        result.inbound_dropped.add(t, 1.0);
                        if oracle_verdict == Verdict::Pass {
                            result.false_negatives += 1;
                        }
                        if self.config.block_connections
                            && blocked.insert(packet.tuple().canonical())
                        {
                            result.blocked_connections += 1;
                        }
                    }
                }
            }
            staged_inbound.clear();
            tick(filter, last_ts)
        };

        for (packet, direction) in packets {
            let packet = packet.borrow();
            let tuple = packet.tuple();
            let canonical = tuple.canonical();

            // Hazard: a staged inbound packet of this connection may be
            // about to create the block that should suppress this
            // packet. Flush so the blocked store is current.
            if self.config.block_connections
                && !staged.is_empty()
                && staged_inbound.contains(&canonical)
                && !flush(
                    filter,
                    &mut staged,
                    &mut staged_oracle,
                    &mut staged_inbound,
                    &mut blocked,
                    &mut result,
                )
            {
                return result;
            }

            let t = packet.ts().as_secs_f64();
            let bits = packet.wire_bits() as f64;
            result.total_packets += 1;
            match direction {
                Direction::Outbound => result.pre_uplink.add(t, bits),
                Direction::Inbound => {
                    result.pre_downlink.add(t, bits);
                    result.total_inbound_packets += 1;
                    result.inbound_offered.add(t, 1.0);
                }
            }

            let is_blocked = self.config.block_connections
                && (blocked.contains(&tuple) || blocked.contains(&tuple.inverse()));

            // The oracle scores every inbound packet, blocked or not.
            let oracle_verdict = oracle.decide(packet, direction);

            if is_blocked {
                if direction == Direction::Inbound {
                    result.total_dropped_packets += 1;
                    result.inbound_dropped.add(t, 1.0);
                    if oracle_verdict == Verdict::Pass {
                        result.false_negatives += 1;
                    }
                }
                // Outbound packets of blocked connections are
                // suppressed: they never reach the filter.
            } else {
                if direction == Direction::Inbound {
                    staged_inbound.insert(canonical);
                }
                staged.push((packet.clone(), direction));
                staged_oracle.push(oracle_verdict);
                if staged.len() >= batch_limit
                    && !flush(
                        filter,
                        &mut staged,
                        &mut staged_oracle,
                        &mut staged_inbound,
                        &mut blocked,
                        &mut result,
                    )
                {
                    return result;
                }
            }
        }
        flush(
            filter,
            &mut staged,
            &mut staged_oracle,
            &mut staged_inbound,
            &mut blocked,
            &mut result,
        );
        result
    }
}

/// Packets pulled from a [`PacketSource`] per poll.
const SOURCE_CHUNK: usize = 256;

/// How long to sleep between polls when a live source reports
/// [`SourcePoll::Idle`].
const IDLE_SLEEP: std::time::Duration = std::time::Duration::from_millis(1);

/// Adapts a [`PacketSource`] to the `(Packet, Direction)` iterator the
/// replay loop consumes. A source error ends the iteration and is parked
/// in `error` for the caller to surface.
struct SourceIter<'a, S: PacketSource + ?Sized> {
    source: &'a mut S,
    chunk: Vec<(Packet, Direction)>,
    buf: Vec<(Packet, Direction)>,
    error: &'a mut Option<NetError>,
}

impl<S: PacketSource + ?Sized> Iterator for SourceIter<'_, S> {
    type Item = (Packet, Direction);

    fn next(&mut self) -> Option<(Packet, Direction)> {
        loop {
            // `buf` holds the current chunk reversed so `pop` yields
            // packets in source order without shifting the vector.
            if let Some(item) = self.buf.pop() {
                return Some(item);
            }
            self.chunk.clear();
            match self.source.next_batch(&mut self.chunk, SOURCE_CHUNK) {
                Ok(SourcePoll::Batch(_)) => {
                    self.buf.append(&mut self.chunk);
                    self.buf.reverse();
                }
                Ok(SourcePoll::Idle) => std::thread::sleep(IDLE_SLEEP),
                Ok(SourcePoll::End) => return None,
                Err(err) => {
                    *self.error = Some(err);
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_core::{BitmapFilter, BitmapFilterConfig};
    use upbound_spi::{SpiConfig, SpiFilter};
    use upbound_traffic::{generate, TraceConfig};

    fn trace(seed: u64) -> SyntheticTrace {
        generate(
            &TraceConfig::builder()
                .duration_secs(60.0)
                .flow_rate_per_sec(20.0)
                .seed(seed)
                .build()
                .unwrap(),
        )
    }

    fn bitmap() -> BitmapFilter {
        BitmapFilter::new(BitmapFilterConfig::paper_evaluation())
    }

    #[test]
    fn replay_accounts_for_every_packet() {
        let trace = trace(1);
        let result = ReplayEngine::new(ReplayConfig::default()).run(&trace, &mut bitmap());
        assert_eq!(result.total_packets as usize, trace.packets.len());
        assert!(result.total_inbound_packets > 0);
        assert!(result.total_dropped_packets <= result.total_inbound_packets);
        // Post-filter traffic never exceeds pre-filter traffic.
        assert!(result.post_uplink.total() <= result.pre_uplink.total());
        assert!(result.post_downlink.total() <= result.pre_downlink.total());
    }

    #[test]
    fn drop_all_policy_blocks_unsolicited_connections() {
        let trace = trace(2);
        let result = ReplayEngine::new(ReplayConfig::default()).run(&trace, &mut bitmap());
        // The workload is dominated by outside-initiated P2P, so plenty
        // of inbound traffic must drop.
        assert!(result.drop_rate() > 0.1, "drop rate {}", result.drop_rate());
        assert!(result.blocked_connections > 0);
        // And upload must shrink (blocked connections stop uploading).
        assert!(result.post_uplink.total() < result.pre_uplink.total());
    }

    #[test]
    fn oracle_scoring_bounds_bitmap_errors() {
        let trace = trace(3);
        let result = ReplayEngine::new(ReplayConfig::default()).run(&trace, &mut bitmap());
        // The bitmap filter is hugely over-provisioned for this load
        // (2^20 bits vs a few thousand connections): false positives
        // should be essentially zero, and without connection blocking no
        // legitimate response arrives after expiry in this short trace.
        assert!(
            result.false_positive_rate() < 0.01,
            "fp rate {}",
            result.false_positive_rate()
        );
    }

    #[test]
    fn spi_and_bitmap_agree_closely() {
        let trace = trace(4);
        let engine = ReplayEngine::new(ReplayConfig::default());
        let b = engine.run(&trace, &mut bitmap());
        let s = engine.run(
            &trace,
            &mut SpiFilter::new(SpiConfig {
                idle_timeout: TimeDelta::from_secs(240.0),
                ..SpiConfig::default()
            }),
        );
        let diff = (b.drop_rate() - s.drop_rate()).abs();
        assert!(
            diff < 0.1,
            "bitmap {} vs spi {}",
            b.drop_rate(),
            s.drop_rate()
        );
    }

    #[test]
    fn drop_rate_series_is_bounded() {
        let trace = trace(5);
        let result = ReplayEngine::new(ReplayConfig::default()).run(&trace, &mut bitmap());
        let series = result.drop_rate_series();
        assert!(!series.is_empty());
        assert!(series.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));
    }

    #[test]
    #[allow(deprecated)]
    fn run_capture_matches_in_memory_replay() {
        let trace = trace(7);
        let bytes =
            upbound_net::pcap::to_bytes(trace.packets.iter().map(|lp| &lp.packet), 65535).unwrap();
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let engine = ReplayEngine::new(ReplayConfig::default());
        let expected = engine.run(&trace, &mut bitmap());
        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        let (result, stats) = engine.run_capture(&mut reader, net, &mut bitmap()).unwrap();
        assert_eq!(result, expected);
        assert_eq!(stats.records_ok, trace.packets.len() as u64);
        assert_eq!(stats.errors_total(), 0);
    }

    #[test]
    #[allow(deprecated)]
    fn run_capture_recovers_past_corruption() {
        use upbound_net::pcap::RecoveryPolicy;
        let trace = trace(8);
        let bytes =
            upbound_net::pcap::to_bytes(trace.packets.iter().map(|lp| &lp.packet), 65535).unwrap();
        // Cut into the last record's body: strict aborts, skip recovers
        // the decodable prefix and accounts for the loss.
        let cut = &bytes[..bytes.len() - 7];
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let engine = ReplayEngine::new(ReplayConfig::default());

        let mut strict = PcapReader::new(cut).unwrap();
        assert!(engine.run_capture(&mut strict, net, &mut bitmap()).is_err());

        let mut skip = PcapReader::with_policy(cut, RecoveryPolicy::Skip).unwrap();
        let (result, stats) = engine.run_capture(&mut skip, net, &mut bitmap()).unwrap();
        let n = trace.packets.len() as u64;
        assert_eq!(stats.records_ok, n - 1);
        assert_eq!(result.total_packets, n - 1);
        assert_eq!(stats.records_skipped, 1);
        assert!(stats.bytes_skipped > 0);
    }

    #[test]
    fn checkpointed_replay_matches_plain_and_restores() {
        let trace = trace(9);
        let engine = ReplayEngine::new(ReplayConfig::default());
        let expected = engine.run(&trace, &mut bitmap());

        let dir = std::env::temp_dir().join(format!("upbound-replay-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("filter.snap");

        let mut filter = bitmap();
        let (result, written) = engine
            .checkpointed_impl(
                &trace,
                &mut filter,
                &path,
                TimeDelta::from_secs(10.0),
                &mut AtomicCheckpointSink,
            )
            .unwrap();
        // The checkpoint hook must not perturb the replay itself.
        assert_eq!(result, expected);
        // A 60 s trace at a 10 s cadence: several periodic checkpoints
        // plus the final one.
        assert!(written >= 4, "only {written} checkpoints written");

        // The final checkpoint restores to the exact end-of-trace state.
        let bytes = std::fs::read(&path).unwrap();
        let mut restored = bitmap();
        let end = trace.packets.last().unwrap().packet.ts();
        let outcome = restored
            .restore_bytes(&bytes, end, TimeDelta::from_secs(3600.0))
            .unwrap();
        assert_eq!(outcome, upbound_core::RestoreOutcome::Warm);
        assert_eq!(restored.stats(), filter.stats());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_size_never_changes_replay_results() {
        let trace = trace(11);
        for block_connections in [true, false] {
            let reference = ReplayEngine::new(ReplayConfig {
                block_connections,
                batch_size: 1,
                ..ReplayConfig::default()
            })
            .run(&trace, &mut bitmap());
            for batch_size in [0usize, 7, 64, 4096] {
                let result = ReplayEngine::new(ReplayConfig {
                    block_connections,
                    batch_size,
                    ..ReplayConfig::default()
                })
                .run(&trace, &mut bitmap());
                assert_eq!(
                    result, reference,
                    "batch {batch_size}, blocking {block_connections}"
                );
            }
        }
    }

    #[test]
    fn subscriber_replay_matches_single_filter_when_one_tenant_owns_the_net() {
        // With exactly one subscriber owning the trace's client network,
        // the table's verdict stream is the standalone filter's.
        let trace = trace(12);
        let engine = ReplayEngine::new(ReplayConfig::default());
        let expected = engine.run(&trace, &mut bitmap());

        let mut table = SubscriberTable::new();
        table
            .add_subscriber(
                "10.0.0.0/16".parse().unwrap(),
                BitmapFilterConfig::paper_evaluation(),
            )
            .unwrap();
        let result = engine.subscribers_impl(&trace, &mut table);
        assert_eq!(
            result,
            ReplayResult {
                filter_name: "subscribers".to_owned(),
                ..expected
            }
        );
        assert_eq!(
            table.per_subscriber_stats()[0].1,
            bitmap_reference_stats(&trace)
        );
    }

    fn bitmap_reference_stats(trace: &SyntheticTrace) -> upbound_core::FilterStats {
        let mut filter = bitmap();
        ReplayEngine::new(ReplayConfig::default()).run(trace, &mut filter);
        filter.stats()
    }

    #[test]
    #[allow(deprecated)]
    fn run_source_matches_run_capture_byte_for_byte() {
        // The unified `PacketSource` replay path must be byte-identical
        // to the historical drain-then-replay path on the same capture:
        // same metrics, same ingestion accounting.
        use upbound_net::PcapSource;
        let trace = trace(13);
        let bytes =
            upbound_net::pcap::to_bytes(trace.packets.iter().map(|lp| &lp.packet), 65535).unwrap();
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let engine = ReplayEngine::new(ReplayConfig::default());

        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        let (old, old_stats) = engine.run_capture(&mut reader, net, &mut bitmap()).unwrap();

        let mut source = PcapSource::new(PcapReader::new(&bytes[..]).unwrap(), net);
        let (new, new_stats) = engine.run_source(&mut source, &mut bitmap()).unwrap();
        assert_eq!(new, old);
        assert_eq!(new_stats, old_stats);
    }

    #[test]
    #[allow(deprecated)]
    fn run_source_matches_run_capture_on_corrupt_capture() {
        use upbound_net::pcap::RecoveryPolicy;
        use upbound_net::PcapSource;
        let trace = trace(14);
        let bytes =
            upbound_net::pcap::to_bytes(trace.packets.iter().map(|lp| &lp.packet), 65535).unwrap();
        let cut = &bytes[..bytes.len() - 9];
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let engine = ReplayEngine::new(ReplayConfig::default());

        // Strict: both paths propagate the truncation error.
        let mut strict = PcapReader::new(cut).unwrap();
        assert!(engine.run_capture(&mut strict, net, &mut bitmap()).is_err());
        let mut strict_source = PcapSource::new(PcapReader::new(cut).unwrap(), net);
        assert!(engine
            .run_source(&mut strict_source, &mut bitmap())
            .is_err());

        // Skip: both recover the decodable prefix with identical
        // accounting.
        let mut skip = PcapReader::with_policy(cut, RecoveryPolicy::Skip).unwrap();
        let (old, old_stats) = engine.run_capture(&mut skip, net, &mut bitmap()).unwrap();
        let mut source = PcapSource::new(
            PcapReader::with_policy(cut, RecoveryPolicy::Skip).unwrap(),
            net,
        );
        let (new, new_stats) = engine.run_source(&mut source, &mut bitmap()).unwrap();
        assert_eq!(new, old);
        assert_eq!(new_stats, old_stats);
    }

    #[test]
    fn buffered_source_replay_matches_trace_replay() {
        use upbound_net::BufferedSource;
        let trace = trace(15);
        let engine = ReplayEngine::new(ReplayConfig::default());
        let expected = engine.run(&trace, &mut bitmap());
        let packets: Vec<(Packet, Direction)> = trace
            .packets
            .iter()
            .map(|lp| (lp.packet.clone(), lp.direction))
            .collect();
        let mut source = BufferedSource::new(packets, IngestStats::default());
        let (result, _stats) = engine.run_source(&mut source, &mut bitmap()).unwrap();
        assert_eq!(result, expected);
    }

    #[test]
    fn blocking_disabled_consults_filter_every_time() {
        let trace = trace(6);
        let config = ReplayConfig {
            block_connections: false,
            ..ReplayConfig::default()
        };
        let result = ReplayEngine::new(config).run(&trace, &mut bitmap());
        assert_eq!(result.blocked_connections, 0);
        // Outbound traffic is never suppressed without blocking.
        assert_eq!(result.post_uplink.total(), result.pre_uplink.total());
    }
}
