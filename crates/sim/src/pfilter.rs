//! Compatibility re-exports: the filter abstraction now lives in
//! [`upbound_core`].
//!
//! The trait used to be defined here with narrow `decide`/`name`
//! methods; it has been hoisted into the core crate and widened
//! (`advance`, `stats`, `memory_bytes`, `drop_probability`) so every
//! deployment surface — the replay engine, the sharded concurrent
//! engine, the CLI, benches — drives the same interface. Existing
//! `upbound_sim::PacketFilter` imports keep working through this
//! re-export.

pub use upbound_core::{MergeStats, PacketFilter};

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_core::{BitmapFilter, BitmapFilterConfig, Verdict};
    use upbound_net::{Direction, FiveTuple, Packet, Protocol, TcpFlags, Timestamp};
    use upbound_spi::SpiConfig;
    use upbound_spi::SpiFilter;

    fn packet(dir_src: &str, dir_dst: &str) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(1.0),
            FiveTuple::new(
                Protocol::Tcp,
                dir_src.parse().unwrap(),
                dir_dst.parse().unwrap(),
            ),
            TcpFlags::SYN,
            &[][..],
        )
    }

    fn exercise<F: PacketFilter>(f: &mut F) {
        let outbound = packet("10.0.0.1:40000", "198.51.100.2:80");
        let unsolicited = packet("198.51.100.9:50000", "10.0.0.1:6881");
        assert_eq!(f.decide(&outbound, Direction::Outbound), Verdict::Pass);
        assert_eq!(f.decide(&unsolicited, Direction::Inbound), Verdict::Drop);
        // The widened surface is available uniformly.
        f.advance(Timestamp::from_secs(2.0));
        assert!(f.memory_bytes() > 0);
        assert!((0.0..=1.0).contains(&f.drop_probability(Timestamp::from_secs(2.0))));
        let mut stats = f.stats();
        stats.merge(&f.stats());
    }

    #[test]
    fn both_filters_implement_the_trait_consistently() {
        let mut bitmap = BitmapFilter::new(BitmapFilterConfig::paper_evaluation());
        let mut spi = SpiFilter::new(SpiConfig::default());
        exercise(&mut bitmap);
        exercise(&mut spi);
        assert_eq!(bitmap.name(), "bitmap");
        assert_eq!(spi.name(), "spi");
    }
}
