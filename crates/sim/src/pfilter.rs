//! The common filter interface the replay engine drives.

use upbound_core::observe::FilterObserver;
use upbound_core::{BitmapFilter, Verdict};
use upbound_net::{Direction, Packet};
use upbound_spi::SpiFilter;

/// Anything that can decide, packet by packet, whether traffic crossing
/// the client-network edge passes or drops.
///
/// Implementations must treat `decide` as the full per-packet pipeline:
/// learn from outbound packets, measure throughput, and judge inbound
/// packets. The engine calls it exactly once per surviving packet, in
/// timestamp order.
pub trait PacketFilter {
    /// Decides the fate of one packet.
    fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict;

    /// A short display name for reports.
    fn name(&self) -> &str;
}

impl<O: FilterObserver> PacketFilter for BitmapFilter<O> {
    fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict {
        self.process_packet(packet, direction)
    }

    fn name(&self) -> &str {
        "bitmap"
    }
}

impl<O: FilterObserver> PacketFilter for SpiFilter<O> {
    fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict {
        self.process_packet(packet, direction)
    }

    fn name(&self) -> &str {
        "spi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_core::BitmapFilterConfig;
    use upbound_net::{FiveTuple, Protocol, TcpFlags, Timestamp};
    use upbound_spi::SpiConfig;

    fn packet(dir_src: &str, dir_dst: &str) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(1.0),
            FiveTuple::new(
                Protocol::Tcp,
                dir_src.parse().unwrap(),
                dir_dst.parse().unwrap(),
            ),
            TcpFlags::SYN,
            &[][..],
        )
    }

    #[test]
    fn both_filters_implement_the_trait_consistently() {
        let outbound = packet("10.0.0.1:40000", "198.51.100.2:80");
        let unsolicited = packet("198.51.100.9:50000", "10.0.0.1:6881");
        let mut bitmap = BitmapFilter::new(BitmapFilterConfig::paper_evaluation());
        let mut spi = SpiFilter::new(SpiConfig::default());
        let filters: [&mut dyn PacketFilter; 2] = [&mut bitmap, &mut spi];
        for f in filters {
            assert_eq!(f.decide(&outbound, Direction::Outbound), Verdict::Pass);
            assert_eq!(f.decide(&unsolicited, Direction::Inbound), Verdict::Drop);
        }
        assert_eq!(bitmap.name(), "bitmap");
        assert_eq!(spi.name(), "spi");
    }
}
