//! Property tests: the Pike-VM engine agrees with an independent
//! backtracking reference matcher on randomly generated patterns and
//! haystacks, and never panics or blows up on arbitrary input.

use proptest::prelude::*;
use upbound_pattern::Regex;

/// A deliberately naive (exponential-time) backtracking matcher over a
/// tiny regex AST, used purely as an executable specification.
mod reference {
    #[derive(Debug, Clone)]
    pub enum Node {
        Byte(u8),
        Any,
        Class {
            negated: bool,
            ranges: Vec<(u8, u8)>,
        },
        Concat(Vec<Node>),
        Alt(Vec<Node>),
        Star(Box<Node>),
        Opt(Box<Node>),
        Plus(Box<Node>),
    }

    impl Node {
        /// Renders the node back to pattern syntax for the real engine.
        pub fn to_pattern(&self) -> String {
            match self {
                Node::Byte(b) => format!(r"\x{b:02x}"),
                Node::Any => ".".to_owned(),
                Node::Class { negated, ranges } => {
                    let mut s = String::from("[");
                    if *negated {
                        s.push('^');
                    }
                    for (lo, hi) in ranges {
                        if lo == hi {
                            s.push_str(&format!(r"\x{lo:02x}"));
                        } else {
                            s.push_str(&format!(r"\x{lo:02x}-\x{hi:02x}"));
                        }
                    }
                    s.push(']');
                    s
                }
                Node::Concat(parts) => parts.iter().map(Node::to_pattern).collect(),
                Node::Alt(parts) => {
                    // Parenthesize the whole alternation so it keeps its
                    // precedence when embedded in a concatenation.
                    let inner: Vec<String> = parts
                        .iter()
                        .map(|p| format!("({})", p.to_pattern()))
                        .collect();
                    format!("({})", inner.join("|"))
                }
                Node::Star(inner) => format!("({})*", inner.to_pattern()),
                Node::Opt(inner) => format!("({})?", inner.to_pattern()),
                Node::Plus(inner) => format!("({})+", inner.to_pattern()),
            }
        }
    }

    /// Returns every length `l` such that the node matches `input[..l]`.
    fn match_lens(node: &Node, input: &[u8]) -> Vec<usize> {
        match node {
            Node::Byte(b) => {
                if input.first() == Some(b) {
                    vec![1]
                } else {
                    vec![]
                }
            }
            Node::Any => {
                if input.is_empty() {
                    vec![]
                } else {
                    vec![1]
                }
            }
            Node::Class { negated, ranges } => match input.first() {
                Some(&c) => {
                    let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                    if inside != *negated {
                        vec![1]
                    } else {
                        vec![]
                    }
                }
                None => vec![],
            },
            Node::Concat(parts) => {
                let mut lens = vec![0usize];
                for part in parts {
                    let mut next = Vec::new();
                    for &l in &lens {
                        for m in match_lens(part, &input[l..]) {
                            if !next.contains(&(l + m)) {
                                next.push(l + m);
                            }
                        }
                    }
                    lens = next;
                    if lens.is_empty() {
                        break;
                    }
                }
                lens
            }
            Node::Alt(parts) => {
                let mut lens = Vec::new();
                for part in parts {
                    for m in match_lens(part, input) {
                        if !lens.contains(&m) {
                            lens.push(m);
                        }
                    }
                }
                lens
            }
            Node::Star(inner) => {
                let mut lens = vec![0usize];
                let mut frontier = vec![0usize];
                while let Some(l) = frontier.pop() {
                    for m in match_lens(inner, &input[l..]) {
                        if m > 0 && !lens.contains(&(l + m)) {
                            lens.push(l + m);
                            frontier.push(l + m);
                        }
                    }
                }
                lens
            }
            Node::Opt(inner) => {
                let mut lens = vec![0usize];
                for m in match_lens(inner, input) {
                    if !lens.contains(&m) {
                        lens.push(m);
                    }
                }
                lens
            }
            Node::Plus(inner) => {
                let star = Node::Star(inner.clone());
                let mut lens = Vec::new();
                for f in match_lens(inner, input) {
                    for rest in match_lens(&star, &input[f..]) {
                        if !lens.contains(&(f + rest)) {
                            lens.push(f + rest);
                        }
                    }
                }
                lens
            }
        }
    }

    /// Unanchored substring search.
    pub fn is_match(node: &Node, haystack: &[u8]) -> bool {
        (0..=haystack.len()).any(|start| !match_lens(node, &haystack[start..]).is_empty())
    }
}

use reference::Node;

/// Small byte alphabet keeps match probability interesting.
fn arb_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(b'a'),
        Just(b'b'),
        Just(b'c'),
        Just(0x00u8),
        Just(0xffu8)
    ]
}

fn arb_leaf() -> impl Strategy<Value = Node> {
    prop_oneof![
        arb_byte().prop_map(Node::Byte),
        Just(Node::Any),
        (
            any::<bool>(),
            proptest::collection::vec((arb_byte(), arb_byte()), 1..3)
        )
            .prop_map(|(negated, pairs)| {
                let ranges = pairs
                    .into_iter()
                    .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                    .collect();
                Node::Class { negated, ranges }
            }),
    ]
}

fn arb_node() -> impl Strategy<Value = Node> {
    arb_leaf().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Node::Concat),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Node::Alt),
            inner.clone().prop_map(|n| Node::Star(Box::new(n))),
            inner.clone().prop_map(|n| Node::Opt(Box::new(n))),
            inner.prop_map(|n| Node::Plus(Box::new(n))),
        ]
    })
}

fn arb_haystack() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arb_byte(), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The production engine and the reference matcher agree on every
    /// (pattern, haystack) pair.
    #[test]
    fn engine_matches_reference(node in arb_node(), hay in arb_haystack()) {
        let pattern = node.to_pattern();
        let re = Regex::new(&pattern)
            .unwrap_or_else(|e| panic!("generated pattern {pattern:?} must compile: {e}"));
        let expected = reference::is_match(&node, &hay);
        prop_assert_eq!(
            re.is_match(&hay),
            expected,
            "pattern {:?} on {:?}",
            pattern,
            hay
        );
    }

    /// Arbitrary pattern strings either compile or error — never panic —
    /// and compiled ones never panic on arbitrary haystacks.
    #[test]
    fn arbitrary_patterns_never_panic(
        pattern in "[ -~]{0,20}",
        hay in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&hay);
        }
        if let Ok(re) = Regex::case_insensitive(&pattern) {
            let _ = re.is_match(&hay);
        }
    }

    /// `find` agrees with `is_match` on presence, and its span really
    /// contains a match of the pattern (verified with the reference).
    #[test]
    fn find_presence_matches_is_match(node in arb_node(), hay in arb_haystack()) {
        let pattern = node.to_pattern();
        let re = Regex::new(&pattern).expect("generated pattern compiles");
        let span = re.find(&hay);
        prop_assert_eq!(span.is_some(), re.is_match(&hay));
        if let Some((start, end)) = span {
            prop_assert!(start <= end && end <= hay.len());
            // The reported span's prefix region must contain a match when
            // checked independently.
            prop_assert!(reference::is_match(&node, &hay[start..]));
        }
    }

    /// Case-insensitive matching is invariant under ASCII case changes of
    /// the haystack.
    #[test]
    fn insensitive_matching_ignores_case(
        node in arb_node(),
        hay in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'A'), Just(b'B')], 0..10),
    ) {
        let pattern = node.to_pattern();
        if let Ok(re) = Regex::case_insensitive(&pattern) {
            let upper: Vec<u8> = hay.iter().map(|b| b.to_ascii_uppercase()).collect();
            let lower: Vec<u8> = hay.iter().map(|b| b.to_ascii_lowercase()).collect();
            prop_assert_eq!(re.is_match(&upper), re.is_match(&lower));
        }
    }
}
