//! Pattern-compilation errors.

use std::fmt;

/// An error raised while parsing or compiling a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// The pattern ended in the middle of a construct.
    UnexpectedEnd {
        /// What was being parsed when the pattern ended.
        context: &'static str,
    },
    /// A character appeared where it is not allowed.
    Unexpected {
        /// Byte offset in the pattern.
        at: usize,
        /// The offending character.
        found: char,
    },
    /// A `\x` escape was not followed by two hex digits.
    BadHexEscape {
        /// Byte offset of the escape.
        at: usize,
    },
    /// An unknown escape like `\q`.
    UnknownEscape {
        /// Byte offset of the escape.
        at: usize,
        /// The escaped character.
        found: char,
    },
    /// A `{n,m}` repetition had `n > m` or exceeded the supported bound.
    BadRepetition {
        /// Byte offset of the repetition.
        at: usize,
    },
    /// A quantifier had nothing to repeat (e.g. a pattern starting `*`).
    NothingToRepeat {
        /// Byte offset of the quantifier.
        at: usize,
    },
    /// A character class had an inverted range like `[z-a]`.
    BadClassRange {
        /// Byte offset within the class.
        at: usize,
    },
    /// The compiled program exceeded the safety limit.
    TooLarge,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnexpectedEnd { context } => {
                write!(f, "pattern ended while parsing {context}")
            }
            PatternError::Unexpected { at, found } => {
                write!(f, "unexpected character {found:?} at offset {at}")
            }
            PatternError::BadHexEscape { at } => {
                write!(f, "\\x escape at offset {at} needs two hex digits")
            }
            PatternError::UnknownEscape { at, found } => {
                write!(f, "unknown escape \\{found} at offset {at}")
            }
            PatternError::BadRepetition { at } => {
                write!(f, "invalid repetition bounds at offset {at}")
            }
            PatternError::NothingToRepeat { at } => {
                write!(f, "quantifier at offset {at} has nothing to repeat")
            }
            PatternError::BadClassRange { at } => {
                write!(f, "inverted class range at offset {at}")
            }
            PatternError::TooLarge => write!(f, "compiled pattern exceeds size limit"),
        }
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = PatternError::BadHexEscape { at: 3 };
        assert!(e.to_string().contains("offset 3"));
        let e = PatternError::UnknownEscape { at: 1, found: 'q' };
        assert!(e.to_string().contains("\\q"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PatternError>();
    }
}
