//! Regular-expression parser producing an AST.
//!
//! Grammar (byte-oriented):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := rep*
//! rep    := atom quantifier*
//! quant  := '*' | '+' | '?' | '{' n [',' [m]] '}'
//! atom   := '(' alt ')' | '[' class ']' | '.' | '^' | '$'
//!         | '\' escape | literal byte
//! ```

use crate::PatternError;

/// Maximum bound accepted in `{n,m}` repetitions; keeps the compiled
/// program size under control.
pub(crate) const MAX_REPEAT: u32 = 255;

/// A parsed regular-expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Ast {
    /// The empty expression (matches the empty string).
    Empty,
    /// A single literal byte.
    Byte(u8),
    /// Any byte (`.`).
    Any,
    /// A character class; `ranges` are inclusive byte ranges.
    Class {
        /// `true` for `[^...]`.
        negated: bool,
        /// Sorted inclusive byte ranges.
        ranges: Vec<(u8, u8)>,
    },
    /// Start-of-input assertion (`^`).
    StartAnchor,
    /// End-of-input assertion (`$`).
    EndAnchor,
    /// Concatenation of subexpressions.
    Concat(Vec<Ast>),
    /// Alternation between subexpressions.
    Alt(Vec<Ast>),
    /// Repetition of a subexpression between `min` and `max` times
    /// (`max == None` means unbounded).
    Repeat {
        /// The repeated subexpression.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
    },
}

pub(crate) fn parse(pattern: &str) -> Result<Ast, PatternError> {
    let bytes = pattern.as_bytes();
    let mut parser = Parser { bytes, pos: 0 };
    let ast = parser.parse_alt()?;
    if parser.pos != bytes.len() {
        return Err(PatternError::Unexpected {
            at: parser.pos,
            found: bytes[parser.pos] as char,
        });
    }
    Ok(ast)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn parse_alt(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts: Vec<Ast> = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            let at = self.pos;
            if matches!(b, b'*' | b'+' | b'?' | b'{') {
                // A quantifier here would repeat the previous atom, which
                // parse_rep already consumed, so this must be a dangling
                // quantifier — except `{` that does not start a valid
                // repetition, which L7 patterns use literally.
                if b == b'{' && !self.looks_like_repetition() {
                    self.bump();
                    parts.push(Ast::Byte(b'{'));
                    continue;
                }
                return Err(PatternError::NothingToRepeat { at });
            }
            parts.push(self.parse_rep()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    /// Checks (without consuming) whether the input at `{` is a valid
    /// `{n}`, `{n,}`, or `{n,m}` repetition.
    fn looks_like_repetition(&self) -> bool {
        let rest = &self.bytes[self.pos..];
        if rest.first() != Some(&b'{') {
            return false;
        }
        let mut i = 1;
        let mut saw_digit = false;
        while i < rest.len() && rest[i].is_ascii_digit() {
            saw_digit = true;
            i += 1;
        }
        if !saw_digit {
            return false;
        }
        if i < rest.len() && rest[i] == b',' {
            i += 1;
            while i < rest.len() && rest[i].is_ascii_digit() {
                i += 1;
            }
        }
        i < rest.len() && rest[i] == b'}'
    }

    fn parse_rep(&mut self) -> Result<Ast, PatternError> {
        let mut node = self.parse_atom()?;
        loop {
            let at = self.pos;
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: None,
                    };
                }
                Some(b'+') => {
                    self.bump();
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: 1,
                        max: None,
                    };
                }
                Some(b'?') => {
                    self.bump();
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: Some(1),
                    };
                }
                Some(b'{') if self.looks_like_repetition() => {
                    self.bump();
                    let (min, max) = self.parse_bounds(at)?;
                    node = Ast::Repeat {
                        node: Box::new(node),
                        min,
                        max,
                    };
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_bounds(&mut self, at: usize) -> Result<(u32, Option<u32>), PatternError> {
        let min = self.parse_number(at)?;
        let max = match self.peek() {
            Some(b',') => {
                self.bump();
                if self.peek() == Some(b'}') {
                    None
                } else {
                    Some(self.parse_number(at)?)
                }
            }
            _ => Some(min),
        };
        match self.bump() {
            Some(b'}') => {}
            _ => return Err(PatternError::BadRepetition { at }),
        }
        if let Some(m) = max {
            if min > m || m > MAX_REPEAT {
                return Err(PatternError::BadRepetition { at });
            }
        }
        if min > MAX_REPEAT {
            return Err(PatternError::BadRepetition { at });
        }
        Ok((min, max))
    }

    fn parse_number(&mut self, at: usize) -> Result<u32, PatternError> {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(b) = self.peek() {
            if !b.is_ascii_digit() {
                break;
            }
            self.bump();
            any = true;
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add((b - b'0') as u32))
                .ok_or(PatternError::BadRepetition { at })?;
        }
        if !any {
            return Err(PatternError::BadRepetition { at });
        }
        Ok(n)
    }

    fn parse_atom(&mut self) -> Result<Ast, PatternError> {
        let at = self.pos;
        let b = self
            .bump()
            .ok_or(PatternError::UnexpectedEnd { context: "an atom" })?;
        match b {
            b'(' => {
                let inner = self.parse_alt()?;
                match self.bump() {
                    Some(b')') => Ok(inner),
                    _ => Err(PatternError::UnexpectedEnd { context: "a group" }),
                }
            }
            b'[' => self.parse_class(),
            b'.' => Ok(Ast::Any),
            b'^' => Ok(Ast::StartAnchor),
            b'$' => Ok(Ast::EndAnchor),
            b'\\' => self.parse_escape(at).map(Ast::Byte),
            b')' => Err(PatternError::Unexpected { at, found: ')' }),
            other => Ok(Ast::Byte(other)),
        }
    }

    fn parse_escape(&mut self, at: usize) -> Result<u8, PatternError> {
        let b = self.bump().ok_or(PatternError::UnexpectedEnd {
            context: "an escape",
        })?;
        match b {
            b'x' => {
                let hi = self.bump().ok_or(PatternError::BadHexEscape { at })?;
                let lo = self.bump().ok_or(PatternError::BadHexEscape { at })?;
                let hex = |c: u8| -> Option<u8> { (c as char).to_digit(16).map(|d| d as u8) };
                match (hex(hi), hex(lo)) {
                    (Some(h), Some(l)) => Ok(h * 16 + l),
                    _ => Err(PatternError::BadHexEscape { at }),
                }
            }
            b'n' => Ok(b'\n'),
            b'r' => Ok(b'\r'),
            b't' => Ok(b'\t'),
            b'0' => Ok(0),
            // Punctuation escapes: identity.
            b'\\' | b'.' | b'*' | b'+' | b'?' | b'(' | b')' | b'[' | b']' | b'|' | b'^' | b'$'
            | b'{' | b'}' | b'/' | b'-' | b' ' | b'\'' | b'"' => Ok(b),
            other => Err(PatternError::UnknownEscape {
                at,
                found: other as char,
            }),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, PatternError> {
        let mut negated = false;
        if self.peek() == Some(b'^') {
            self.bump();
            negated = true;
        }
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        let mut first = true;
        loop {
            let at = self.pos;
            let b = self.bump().ok_or(PatternError::UnexpectedEnd {
                context: "a character class",
            })?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo = if b == b'\\' {
                self.parse_escape(at)?
            } else {
                b
            };
            // Range `lo-hi` unless the '-' is last in the class.
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let at2 = self.pos;
                let hb = self.bump().ok_or(PatternError::UnexpectedEnd {
                    context: "a class range",
                })?;
                let hi = if hb == b'\\' {
                    self.parse_escape(at2)?
                } else {
                    hb
                };
                if hi < lo {
                    return Err(PatternError::BadClassRange { at });
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        ranges.sort_unstable();
        Ok(Ast::Class { negated, ranges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Byte(b'a'), Ast::Byte(b'b')])
        );
    }

    #[test]
    fn empty_pattern_is_empty() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
    }

    #[test]
    fn alternation_and_groups() {
        let ast = parse("a|(bc)").unwrap();
        assert_eq!(
            ast,
            Ast::Alt(vec![
                Ast::Byte(b'a'),
                Ast::Concat(vec![Ast::Byte(b'b'), Ast::Byte(b'c')]),
            ])
        );
    }

    #[test]
    fn quantifiers_parse() {
        assert_eq!(
            parse("a*").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Byte(b'a')),
                min: 0,
                max: None
            }
        );
        assert_eq!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Byte(b'a')),
                min: 2,
                max: Some(5)
            }
        );
        assert_eq!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Byte(b'a')),
                min: 3,
                max: Some(3)
            }
        );
        assert_eq!(
            parse("a{3,}").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Byte(b'a')),
                min: 3,
                max: None
            }
        );
    }

    #[test]
    fn nested_quantifier_applies_to_previous() {
        // `a+?` = (a+)? in this grammar (quantifier chains).
        let ast = parse("a+?").unwrap();
        assert_eq!(
            ast,
            Ast::Repeat {
                node: Box::new(Ast::Repeat {
                    node: Box::new(Ast::Byte(b'a')),
                    min: 1,
                    max: None
                }),
                min: 0,
                max: Some(1)
            }
        );
    }

    #[test]
    fn hex_escapes_decode() {
        assert_eq!(parse(r"\x13").unwrap(), Ast::Byte(0x13));
        assert_eq!(parse(r"\xFf").unwrap(), Ast::Byte(0xFF));
        assert!(matches!(
            parse(r"\xg1"),
            Err(PatternError::BadHexEscape { .. })
        ));
        assert!(matches!(
            parse(r"\x1"),
            Err(PatternError::BadHexEscape { .. })
        ));
    }

    #[test]
    fn named_escapes_decode() {
        assert_eq!(parse(r"\n").unwrap(), Ast::Byte(b'\n'));
        assert_eq!(parse(r"\.").unwrap(), Ast::Byte(b'.'));
        assert!(matches!(
            parse(r"\q"),
            Err(PatternError::UnknownEscape { found: 'q', .. })
        ));
    }

    #[test]
    fn classes_with_ranges_and_negation() {
        assert_eq!(
            parse("[a-c]").unwrap(),
            Ast::Class {
                negated: false,
                ranges: vec![(b'a', b'c')]
            }
        );
        assert_eq!(
            parse(r"[^\x00-\x1f]").unwrap(),
            Ast::Class {
                negated: true,
                ranges: vec![(0x00, 0x1f)]
            }
        );
    }

    #[test]
    fn class_with_literal_bracket_first() {
        // A `]` directly after `[` is a literal member.
        assert_eq!(
            parse("[]a]").unwrap(),
            Ast::Class {
                negated: false,
                ranges: vec![(b']', b']'), (b'a', b'a')]
            }
        );
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        assert_eq!(
            parse("[a-]").unwrap(),
            Ast::Class {
                negated: false,
                ranges: vec![(b'-', b'-'), (b'a', b'a')]
            }
        );
    }

    #[test]
    fn inverted_range_is_error() {
        assert!(matches!(
            parse("[z-a]"),
            Err(PatternError::BadClassRange { .. })
        ));
    }

    #[test]
    fn anchors_parse() {
        assert_eq!(
            parse("^a$").unwrap(),
            Ast::Concat(vec![Ast::StartAnchor, Ast::Byte(b'a'), Ast::EndAnchor])
        );
    }

    #[test]
    fn dangling_quantifier_is_error() {
        assert!(matches!(
            parse("*a"),
            Err(PatternError::NothingToRepeat { .. })
        ));
    }

    #[test]
    fn non_repetition_brace_is_literal() {
        assert_eq!(parse("{").unwrap(), Ast::Byte(b'{'));
        assert_eq!(
            parse("a{x}").unwrap(),
            Ast::Concat(vec![
                Ast::Byte(b'a'),
                Ast::Byte(b'{'),
                Ast::Byte(b'x'),
                Ast::Byte(b'}'),
            ])
        );
    }

    #[test]
    fn unbalanced_group_is_error() {
        assert!(parse("(ab").is_err());
        assert!(matches!(
            parse("ab)"),
            Err(PatternError::Unexpected { found: ')', .. })
        ));
    }

    #[test]
    fn bad_bounds_are_rejected() {
        assert!(matches!(
            parse("a{5,2}"),
            Err(PatternError::BadRepetition { .. })
        ));
        assert!(matches!(
            parse("a{999}"),
            Err(PatternError::BadRepetition { .. })
        ));
    }
}
