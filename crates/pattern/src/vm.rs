//! Pike-VM execution of compiled NFA programs.
//!
//! Runs in O(|haystack| × |program|) worst case with no backtracking, so a
//! hostile payload cannot blow up the traffic analyzer — an essential
//! property for a filter sitting on an ISP edge router.

use crate::compile::{Inst, Program};

/// A list of active NFA threads with O(1) dedup membership testing.
struct ThreadList {
    dense: Vec<usize>,
    /// `mark[pc] == generation` means pc is already in `dense`.
    mark: Vec<u32>,
    generation: u32,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        Self {
            dense: Vec::with_capacity(n),
            mark: vec![0; n],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.generation += 1;
    }

    fn contains(&self, pc: usize) -> bool {
        self.mark[pc] == self.generation
    }

    fn insert(&mut self, pc: usize) {
        self.mark[pc] = self.generation;
        self.dense.push(pc);
    }
}

/// Executes `prog` over `haystack`, returning whether any substring
/// matches (or any prefix-anchored position when the program is
/// anchored).
///
/// `fold_case` lowercases ASCII input bytes before comparison; compiled
/// patterns must have been case-folded the same way (see `regex.rs`).
pub(crate) fn is_match(prog: &Program, haystack: &[u8], fold_case: bool) -> bool {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();
    nlist.clear();

    // Seed at position 0.
    if add_thread(prog, &mut clist, 0, 0, haystack.len()) {
        return true;
    }

    for (pos, &raw) in haystack.iter().enumerate() {
        let byte = if fold_case {
            raw.to_ascii_lowercase()
        } else {
            raw
        };
        nlist.clear();
        let mut matched = false;
        for i in 0..clist.dense.len() {
            let pc = clist.dense[i];
            let consumed = match &prog.insts[pc] {
                Inst::Byte(b) => *b == byte,
                Inst::Any => true,
                Inst::Class { negated, ranges } => class_matches(ranges, byte) != *negated,
                // Non-consuming instructions were expanded by add_thread.
                _ => false,
            };
            if consumed && add_thread(prog, &mut nlist, pc + 1, pos + 1, haystack.len()) {
                matched = true;
                break;
            }
        }
        if matched {
            return true;
        }
        std::mem::swap(&mut clist, &mut nlist);
        // Unanchored search: also start a fresh attempt at pos + 1.
        if !prog.anchored_start && add_thread(prog, &mut clist, 0, pos + 1, haystack.len()) {
            return true;
        }
        if clist.dense.is_empty() && prog.anchored_start {
            return false;
        }
    }
    false
}

/// Executes `prog` over `haystack`, returning the span of the leftmost
/// match (earliest start; for that start, the earliest end). Returns
/// `None` when nothing matches.
///
/// Runs one anchored Pike-VM scan per start position, so it is
/// O(|haystack|² × |program|) worst case — fine for the short
/// first-payload streams signatures inspect; use [`is_match`] on hot
/// paths.
pub(crate) fn find(prog: &Program, haystack: &[u8], fold_case: bool) -> Option<(usize, usize)> {
    let starts: Box<dyn Iterator<Item = usize>> = if prog.anchored_start {
        Box::new(std::iter::once(0))
    } else {
        Box::new(0..=haystack.len())
    };
    for start in starts {
        if let Some(len) = shortest_match_at(prog, &haystack[start..], fold_case) {
            return Some((start, start + len));
        }
    }
    None
}

/// Anchored scan: the length of the shortest match beginning at the
/// start of `input`, if any.
fn shortest_match_at(prog: &Program, input: &[u8], fold_case: bool) -> Option<usize> {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();
    nlist.clear();
    if add_thread(prog, &mut clist, 0, 0, input.len()) {
        return Some(0);
    }
    for (pos, &raw) in input.iter().enumerate() {
        let byte = if fold_case {
            raw.to_ascii_lowercase()
        } else {
            raw
        };
        nlist.clear();
        for i in 0..clist.dense.len() {
            let pc = clist.dense[i];
            let consumed = match &prog.insts[pc] {
                Inst::Byte(b) => *b == byte,
                Inst::Any => true,
                Inst::Class { negated, ranges } => class_matches(ranges, byte) != *negated,
                _ => false,
            };
            if consumed && add_thread(prog, &mut nlist, pc + 1, pos + 1, input.len()) {
                return Some(pos + 1);
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
        if clist.dense.is_empty() {
            return None;
        }
    }
    None
}

fn class_matches(ranges: &[(u8, u8)], byte: u8) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= byte && byte <= hi)
}

/// Adds `pc` (expanding epsilon transitions) to `list`; returns `true`
/// when a `Match` instruction is reached.
fn add_thread(prog: &Program, list: &mut ThreadList, pc: usize, pos: usize, len: usize) -> bool {
    if pc >= prog.insts.len() || list.contains(pc) {
        return false;
    }
    list.insert(pc);
    match &prog.insts[pc] {
        Inst::Match => true,
        Inst::Jmp(t) => add_thread(prog, list, *t, pos, len),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, pos, len) || add_thread(prog, list, *b, pos, len)
        }
        Inst::StartAnchor => pos == 0 && add_thread(prog, list, pc + 1, pos, len),
        Inst::EndAnchor => pos == len && add_thread(prog, list, pc + 1, pos, len),
        // Consuming instructions wait in the list for the next byte.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::compile::compile;

    fn matches(pattern: &str, haystack: &[u8]) -> bool {
        let prog = compile(&parse(pattern).unwrap()).unwrap();
        is_match(&prog, haystack, false)
    }

    #[test]
    fn literal_substring_search() {
        assert!(matches("bc", b"abcd"));
        assert!(!matches("bd", b"abcd"));
        assert!(matches("", b"anything"));
        assert!(matches("", b""));
    }

    #[test]
    fn anchors_constrain_position() {
        assert!(matches("^ab", b"abxx"));
        assert!(!matches("^ab", b"xab"));
        assert!(matches("cd$", b"abcd"));
        assert!(!matches("cd$", b"cdx"));
        assert!(matches("^abcd$", b"abcd"));
        assert!(!matches("^abcd$", b"abcde"));
    }

    #[test]
    fn quantifiers_match() {
        assert!(matches("ab*c", b"ac"));
        assert!(matches("ab*c", b"abbbbc"));
        assert!(matches("ab+c", b"abc"));
        assert!(!matches("ab+c", b"ac"));
        assert!(matches("ab?c", b"ac"));
        assert!(matches("ab?c", b"abc"));
        assert!(!matches("ab?c", b"abbc"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(matches("^a{2,3}$", b"aa"));
        assert!(matches("^a{2,3}$", b"aaa"));
        assert!(!matches("^a{2,3}$", b"a"));
        assert!(!matches("^a{2,3}$", b"aaaa"));
        assert!(matches("^a{2,}$", b"aaaaa"));
        assert!(!matches("^a{2,}$", b"a"));
    }

    #[test]
    fn classes_and_dot() {
        assert!(matches("[0-9]+", b"port 8080"));
        assert!(!matches("[0-9]", b"no digits"));
        assert!(matches("^[^x]", b"abc"));
        assert!(!matches("^[^x]", b"xabc"));
        assert!(matches("a.c", b"azc"));
        assert!(matches("a.c", b"a\x00c"));
    }

    #[test]
    fn alternation_searches_all_branches() {
        assert!(matches("cat|dog", b"hotdog"));
        assert!(matches("cat|dog", b"catalog"));
        assert!(!matches("cat|dog", b"bird"));
    }

    #[test]
    fn binary_bytes_match() {
        assert!(matches(r"^\x13bit", b"\x13bittorrent"));
        assert!(!matches(r"^\x13bit", b"x\x13bit"));
        assert!(matches(r"[\xc5\xd4\xe3-\xe5]", b"\xe4"));
        assert!(!matches(r"[\xc5\xd4\xe3-\xe5]", b"\xe6"));
    }

    #[test]
    fn case_folding_at_vm_level() {
        let prog = compile(&parse("abc").unwrap()).unwrap();
        assert!(is_match(&prog, b"xxABCxx", true));
        assert!(!is_match(&prog, b"xxABCxx", false));
    }

    #[test]
    fn pathological_pattern_terminates_quickly() {
        // (a*)* style blow-up patterns are linear under a Pike VM.
        let hay = vec![b'a'; 2000];
        assert!(matches("^(a|a)(a|a)*$", &hay));
        let mut hay2 = hay.clone();
        hay2.push(b'b');
        assert!(!matches("^(a|a)(a|a)*$", &hay2));
    }

    #[test]
    fn empty_repeat_does_not_loop_forever() {
        // `()*`-style empty-width loop must terminate.
        assert!(matches("(a?)*b", b"b"));
        assert!(matches("(a?)*", b""));
    }

    #[test]
    fn anchored_miss_exits_early() {
        assert!(!matches("^zz", b"aaaaaaaaaaaaaaaa"));
    }

    fn find_span(pattern: &str, haystack: &[u8]) -> Option<(usize, usize)> {
        let prog = compile(&parse(pattern).unwrap()).unwrap();
        find(&prog, haystack, false)
    }

    #[test]
    fn find_returns_leftmost_shortest() {
        assert_eq!(find_span("bc", b"abcbc"), Some((1, 3)));
        assert_eq!(find_span("a+", b"xxaaay"), Some((2, 3))); // shortest end
        assert_eq!(find_span("^ab", b"abab"), Some((0, 2)));
        assert_eq!(find_span("q", b"abc"), None);
        assert_eq!(find_span("", b"abc"), Some((0, 0)));
    }

    #[test]
    fn find_respects_end_anchor() {
        assert_eq!(find_span("bc$", b"abcbc"), Some((3, 5)));
        assert_eq!(find_span("bc$", b"bcx"), None);
    }

    #[test]
    fn find_agrees_with_is_match() {
        for (p, h) in [
            ("a(b|c)d", &b"zzacdzz"[..]),
            ("[0-9]{2,3}", b"port 8080 here"),
            ("nope", b"hay"),
        ] {
            let prog = compile(&parse(p).unwrap()).unwrap();
            assert_eq!(is_match(&prog, h, false), find(&prog, h, false).is_some());
        }
    }
}
