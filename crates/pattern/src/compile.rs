//! AST → NFA program compilation (Thompson construction).

use crate::ast::Ast;
use crate::PatternError;

/// Safety cap on compiled program size.
const MAX_PROGRAM: usize = 65_536;

/// One NFA instruction of the Pike VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Inst {
    /// Match one specific byte.
    Byte(u8),
    /// Match any byte.
    Any,
    /// Match a byte against inclusive ranges; `negated` inverts.
    Class {
        /// `true` for `[^...]`.
        negated: bool,
        /// Sorted inclusive ranges.
        ranges: Vec<(u8, u8)>,
    },
    /// Assert start of input.
    StartAnchor,
    /// Assert end of input.
    EndAnchor,
    /// Fork execution to both targets.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Accept.
    Match,
}

/// A compiled NFA program. Entry point is instruction 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Program {
    pub(crate) insts: Vec<Inst>,
    /// `true` when the pattern begins with `^` on every alternative, which
    /// lets the VM skip re-seeding threads at every input position.
    pub(crate) anchored_start: bool,
}

pub(crate) fn compile(ast: &Ast) -> Result<Program, PatternError> {
    let mut c = Compiler { insts: Vec::new() };
    c.emit_node(ast)?;
    c.push(Inst::Match)?;
    Ok(Program {
        anchored_start: starts_anchored(ast),
        insts: c.insts,
    })
}

/// Conservatively determines whether every path through the pattern starts
/// with a `^` assertion.
fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(parts) => parts.first().is_some_and(starts_anchored),
        Ast::Alt(branches) => branches.iter().all(starts_anchored),
        Ast::Repeat { node, min, .. } => *min >= 1 && starts_anchored(node),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<usize, PatternError> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(PatternError::TooLarge);
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn emit_node(&mut self, ast: &Ast) -> Result<(), PatternError> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Byte(b) => self.push(Inst::Byte(*b)).map(drop),
            Ast::Any => self.push(Inst::Any).map(drop),
            Ast::Class { negated, ranges } => self
                .push(Inst::Class {
                    negated: *negated,
                    ranges: ranges.clone(),
                })
                .map(drop),
            Ast::StartAnchor => self.push(Inst::StartAnchor).map(drop),
            Ast::EndAnchor => self.push(Inst::EndAnchor).map(drop),
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit_node(p)?;
                }
                Ok(())
            }
            Ast::Alt(branches) => self.emit_alt(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alt(&mut self, branches: &[Ast]) -> Result<(), PatternError> {
        debug_assert!(branches.len() >= 2);
        // For each branch but the last: Split(branch, next_alternative),
        // branch code, Jmp(end).
        let mut jmp_ends: Vec<usize> = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split = self.push(Inst::Split(0, 0))?;
                let branch_start = self.here();
                self.emit_node(branch)?;
                let jmp = self.push(Inst::Jmp(0))?;
                jmp_ends.push(jmp);
                let next_alt = self.here();
                self.insts[split] = Inst::Split(branch_start, next_alt);
            } else {
                self.emit_node(branch)?;
            }
        }
        let end = self.here();
        for jmp in jmp_ends {
            self.insts[jmp] = Inst::Jmp(end);
        }
        Ok(())
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Result<(), PatternError> {
        // Mandatory copies.
        for _ in 0..min {
            self.emit_node(node)?;
        }
        match max {
            None => {
                if min == 0 {
                    // `e*`: split over a loop.
                    let split = self.push(Inst::Split(0, 0))?;
                    let body = self.here();
                    self.emit_node(node)?;
                    self.push(Inst::Jmp(split))?;
                    let end = self.here();
                    self.insts[split] = Inst::Split(body, end);
                } else {
                    // `e{n,}`: after the copies, loop the last one.
                    // Emit: Split(body, end); body; Jmp(split).
                    let split = self.push(Inst::Split(0, 0))?;
                    let body = self.here();
                    self.emit_node(node)?;
                    self.push(Inst::Jmp(split))?;
                    let end = self.here();
                    self.insts[split] = Inst::Split(body, end);
                }
            }
            Some(max) => {
                // Optional copies: each is Split(body, end).
                let mut splits = Vec::new();
                for _ in min..max {
                    let split = self.push(Inst::Split(0, 0))?;
                    let body = self.here();
                    self.emit_node(node)?;
                    self.insts[split] = Inst::Split(body, 0); // end patched below
                    splits.push(split);
                }
                let end = self.here();
                for split in splits {
                    if let Inst::Split(body, _) = self.insts[split] {
                        self.insts[split] = Inst::Split(body, end);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap()).unwrap()
    }

    #[test]
    fn literal_compiles_to_bytes_and_match() {
        let p = prog("ab");
        assert_eq!(
            p.insts,
            vec![Inst::Byte(b'a'), Inst::Byte(b'b'), Inst::Match]
        );
    }

    #[test]
    fn star_builds_loop() {
        let p = prog("a*");
        assert_eq!(
            p.insts,
            vec![
                Inst::Split(1, 3),
                Inst::Byte(b'a'),
                Inst::Jmp(0),
                Inst::Match
            ]
        );
    }

    #[test]
    fn alternation_splits() {
        let p = prog("a|b");
        assert_eq!(
            p.insts,
            vec![
                Inst::Split(1, 3),
                Inst::Byte(b'a'),
                Inst::Jmp(4),
                Inst::Byte(b'b'),
                Inst::Match
            ]
        );
    }

    #[test]
    fn bounded_repeat_expands() {
        let p = prog("a{2,4}");
        // 2 mandatory bytes + 2 optional (split+byte each) + match.
        let bytes = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Byte(_)))
            .count();
        assert_eq!(bytes, 4);
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split(_, _)))
            .count();
        assert_eq!(splits, 2);
    }

    #[test]
    fn anchored_detection() {
        assert!(prog("^abc").anchored_start);
        assert!(prog("^a|^b").anchored_start);
        assert!(!prog("abc").anchored_start);
        assert!(!prog("^a|b").anchored_start);
        assert!(!prog("(^a)?b").anchored_start);
    }

    #[test]
    fn plus_requires_one_iteration() {
        let p = prog("a+");
        assert_eq!(p.insts[0], Inst::Byte(b'a'));
        assert!(matches!(p.insts[1], Inst::Split(_, _)));
    }
}
