//! A from-scratch regular-expression subset engine and the L7-filter-style
//! application signature database of the paper's Table 1.
//!
//! The paper's traffic analyzer identifies applications by matching packet
//! payloads "against several predefined patterns … written in the form of
//! regular expressions. Most of these patterns are adopted from the
//! L7-filter project" (§3.2). This crate rebuilds that capability without
//! any external regex dependency:
//!
//! * [`Regex`] — a byte-oriented Thompson-NFA (Pike VM) engine supporting
//!   exactly the features those signatures need: literals, `\xHH` escapes,
//!   character classes with ranges and negation, `.`, alternation,
//!   grouping, the `*` `+` `?` `{n,m}` quantifiers, and `^`/`$` anchors.
//!   Matching is linear-time in the haystack (no backtracking blow-up) and
//!   optionally case-insensitive, as L7-filter patterns are.
//! * [`SignatureDb`] / [`Signature`] / [`AppLabel`] — the Table 1
//!   signature set (bittorrent, edonkey, fasttrack, gnutella,
//!   http/http-proxy, ftp) with its port fallbacks, plus the well-known
//!   service ports the analyzer's second-stage port matching uses.
//!
//! # Examples
//!
//! ```
//! use upbound_pattern::{Regex, SignatureDb, AppLabel};
//!
//! let re = Regex::case_insensitive(r"^\x13bittorrent protocol")?;
//! assert!(re.is_match(b"\x13BitTorrent protocol..."));
//!
//! let db = SignatureDb::standard();
//! assert_eq!(
//!     db.match_payload(b"\x13BitTorrent protocol ex"),
//!     Some(AppLabel::BitTorrent),
//! );
//! # Ok::<(), upbound_pattern::PatternError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod ast;
mod compile;
mod error;
mod regex;
mod signatures;
mod vm;

pub use error::PatternError;
pub use regex::Regex;
pub use signatures::{AppLabel, PortClass, Signature, SignatureDb};
