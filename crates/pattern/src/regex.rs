//! The public [`Regex`] type.

use crate::ast::{self, Ast};
use crate::compile::{self, Program};
use crate::vm;
use crate::PatternError;

/// A compiled regular expression over bytes.
///
/// Supports the subset of syntax the L7-filter application signatures use:
/// literals, `\xHH`/`\n`/`\r`/`\t`/`\0` and punctuation escapes, character
/// classes with ranges and negation, `.` (any byte), grouping,
/// alternation, the `*` `+` `?` and `{n[,m]}` quantifiers, and `^`/`$`
/// anchors. Matching is unanchored substring search unless the pattern is
/// anchored, and runs in time linear in the haystack (Pike VM — no
/// backtracking).
///
/// # Examples
///
/// ```
/// use upbound_pattern::Regex;
///
/// let re = Regex::new(r"^220[\x09-\x0d -~]*ftp")?;
/// assert!(re.is_match(b"220 welcome to my ftp server"));
/// assert!(!re.is_match(b"250 ok"));
/// # Ok::<(), upbound_pattern::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
    fold_case: bool,
}

impl Regex {
    /// Compiles a case-sensitive pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] describing the first syntax problem.
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        Self::build(pattern, false)
    }

    /// Compiles a case-insensitive pattern (ASCII folding), matching
    /// L7-filter's default behaviour.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] describing the first syntax problem.
    pub fn case_insensitive(pattern: &str) -> Result<Self, PatternError> {
        Self::build(pattern, true)
    }

    fn build(pattern: &str, fold_case: bool) -> Result<Self, PatternError> {
        let mut tree = ast::parse(pattern)?;
        if fold_case {
            fold_ast(&mut tree);
        }
        let program = compile::compile(&tree)?;
        Ok(Self {
            pattern: pattern.to_owned(),
            program,
            fold_case,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// `true` when the expression was compiled case-insensitively.
    pub fn is_case_insensitive(&self) -> bool {
        self.fold_case
    }

    /// Tests whether `haystack` contains a match.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        vm::is_match(&self.program, haystack, self.fold_case)
    }

    /// Returns the byte span `[start, end)` of the leftmost match — the
    /// earliest start, and for that start the earliest end — or `None`.
    ///
    /// Quadratic in the haystack in the worst case (one scan per start
    /// position); intended for the short payload prefixes signature
    /// identification inspects. Use [`is_match`](Self::is_match) when
    /// only a yes/no answer is needed.
    pub fn find(&self, haystack: &[u8]) -> Option<(usize, usize)> {
        vm::find(&self.program, haystack, self.fold_case)
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "/{}/{}",
            self.pattern,
            if self.fold_case { "i" } else { "" }
        )
    }
}

/// Rewrites an AST for ASCII case-insensitive matching: input bytes are
/// lowercased by the VM, so uppercase literals fold to lowercase and
/// uppercase class ranges gain their lowercase images.
fn fold_ast(ast: &mut Ast) {
    match ast {
        Ast::Byte(b) => *b = b.to_ascii_lowercase(),
        Ast::Class { ranges, .. } => {
            let mut extra = Vec::new();
            for &(lo, hi) in ranges.iter() {
                if lo.is_ascii_uppercase() && hi.is_ascii_uppercase() {
                    extra.push((lo.to_ascii_lowercase(), hi.to_ascii_lowercase()));
                }
            }
            ranges.extend(extra);
            ranges.sort_unstable();
        }
        Ast::Concat(parts) | Ast::Alt(parts) => parts.iter_mut().for_each(fold_ast),
        Ast::Repeat { node, .. } => fold_ast(node),
        Ast::Empty | Ast::Any | Ast::StartAnchor | Ast::EndAnchor => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_vs_insensitive() {
        let s = Regex::new("http").unwrap();
        let i = Regex::case_insensitive("http").unwrap();
        assert!(s.is_match(b"http/1.1"));
        assert!(!s.is_match(b"HTTP/1.1"));
        assert!(i.is_match(b"HTTP/1.1"));
        assert!(i.is_match(b"HtTp/1.1"));
    }

    #[test]
    fn insensitive_pattern_with_uppercase_literals() {
        let i = Regex::case_insensitive("GET").unwrap();
        assert!(i.is_match(b"get / http/1.0"));
        assert!(i.is_match(b"GET / HTTP/1.0"));
    }

    #[test]
    fn insensitive_class_ranges_fold() {
        let i = Regex::case_insensitive("^[A-F]+$").unwrap();
        assert!(i.is_match(b"AbCf"));
        assert!(!i.is_match(b"g"));
    }

    #[test]
    fn binary_bytes_unaffected_by_folding() {
        let i = Regex::case_insensitive(r"^\xc5\x01").unwrap();
        assert!(i.is_match(b"\xc5\x01rest"));
    }

    #[test]
    fn accessors_report_configuration() {
        let re = Regex::case_insensitive("abc").unwrap();
        assert_eq!(re.pattern(), "abc");
        assert!(re.is_case_insensitive());
        assert_eq!(re.to_string(), "/abc/i");
        assert_eq!(Regex::new("x").unwrap().to_string(), "/x/");
    }

    #[test]
    fn find_locates_signatures_in_streams() {
        let re = Regex::case_insensitive(r"user-agent: (limewire|bearshare)").unwrap();
        let hay = b"GET /f HTTP/1.1\r\nUser-Agent: LimeWire/4.9\r\n";
        let (start, end) = re.find(hay).expect("match");
        assert_eq!(&hay[start..end], b"User-Agent: LimeWire");
        assert_eq!(re.find(b"nothing here"), None);
    }

    #[test]
    fn invalid_pattern_reports_error() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new(r"\xzz").is_err());
    }

    #[test]
    fn realistic_l7_patterns_compile() {
        // Transliterations of actual L7-filter expressions.
        for p in [
            r"^\x13bittorrent protocol",
            r"^(get|post|head) [\x09-\x0d -~]* http/[01]\.[019]",
            r"^220[\x09-\x0d -~]*ftp",
            r"^gnutella connect/[012]\.[0-9]\x0d\x0a",
            r"get /uri-res/n2r\?urn:sha1:",
            r"^giv [0-9]*:[0-9a-f]*",
        ] {
            assert!(
                Regex::case_insensitive(p).is_ok(),
                "pattern {p} must compile"
            );
        }
    }
}
