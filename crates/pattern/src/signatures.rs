//! The application signature database of the paper's Table 1.
//!
//! Patterns are transliterated from the L7-filter expressions listed in
//! the paper (simplified where the original relies on PCRE features the
//! signatures do not actually need). Each signature carries the well-known
//! ports used by the analyzer's second identification stage.

use crate::Regex;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The application labels the reproduction distinguishes.
///
/// These are the rows of the paper's Table 2 (HTTP, bittorrent, gnutella,
/// edonkey, UNKNOWN, Others) with "Others" broken out into the concrete
/// well-known services the generator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AppLabel {
    /// HTTP and HTTP proxy traffic.
    Http,
    /// FTP control (and tracked data) connections.
    Ftp,
    /// Domain Name System.
    Dns,
    /// Simple Mail Transfer Protocol.
    Smtp,
    /// Secure Shell.
    Ssh,
    /// TLS web traffic (identified by port only).
    Https,
    /// BitTorrent peer wire and tracker traffic.
    BitTorrent,
    /// eDonkey / eMule.
    EDonkey,
    /// FastTrack (Kazaa).
    FastTrack,
    /// Gnutella and descendants.
    Gnutella,
    /// Traffic no stage could identify.
    Unknown,
}

/// The port-class buckets of the paper's Figures 2 and 3:
/// "P2P", "Non-P2P", and "UNKNOWN" (plus the implicit "ALL").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// Identified as a peer-to-peer application.
    P2p,
    /// Identified as a traditional client-server application.
    NonP2p,
    /// Not identified.
    Unknown,
}

impl AppLabel {
    /// Human-readable name matching the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            AppLabel::Http => "HTTP",
            AppLabel::Ftp => "FTP",
            AppLabel::Dns => "DNS",
            AppLabel::Smtp => "SMTP",
            AppLabel::Ssh => "SSH",
            AppLabel::Https => "HTTPS",
            AppLabel::BitTorrent => "bittorrent",
            AppLabel::EDonkey => "edonkey",
            AppLabel::FastTrack => "fasttrack",
            AppLabel::Gnutella => "gnutella",
            AppLabel::Unknown => "UNKNOWN",
        }
    }

    /// `true` for peer-to-peer applications.
    pub const fn is_p2p(self) -> bool {
        matches!(
            self,
            AppLabel::BitTorrent | AppLabel::EDonkey | AppLabel::FastTrack | AppLabel::Gnutella
        )
    }

    /// The Figure 2/3 bucket this label falls in.
    pub const fn port_class(self) -> PortClass {
        match self {
            AppLabel::Unknown => PortClass::Unknown,
            l if l.is_p2p() => PortClass::P2p,
            _ => PortClass::NonP2p,
        }
    }

    /// All labels, for iteration in reports.
    pub const fn all() -> [AppLabel; 11] {
        [
            AppLabel::Http,
            AppLabel::Ftp,
            AppLabel::Dns,
            AppLabel::Smtp,
            AppLabel::Ssh,
            AppLabel::Https,
            AppLabel::BitTorrent,
            AppLabel::EDonkey,
            AppLabel::FastTrack,
            AppLabel::Gnutella,
            AppLabel::Unknown,
        ]
    }
}

impl fmt::Display for AppLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One application signature: payload patterns plus well-known ports.
#[derive(Debug, Clone)]
pub struct Signature {
    label: AppLabel,
    regexes: Vec<Regex>,
    tcp_ports: Vec<u16>,
    udp_ports: Vec<u16>,
}

impl Signature {
    /// Builds a signature; `patterns` are compiled case-insensitively, as
    /// L7-filter does.
    ///
    /// # Panics
    ///
    /// Panics if any pattern fails to compile — signatures are static
    /// program data, so a bad pattern is a programming error.
    pub fn new(label: AppLabel, patterns: &[&str], tcp_ports: &[u16], udp_ports: &[u16]) -> Self {
        let regexes = patterns
            .iter()
            .map(|p| {
                Regex::case_insensitive(p)
                    .unwrap_or_else(|e| panic!("signature pattern {p:?} failed to compile: {e}"))
            })
            .collect();
        Self {
            label,
            regexes,
            tcp_ports: tcp_ports.to_vec(),
            udp_ports: udp_ports.to_vec(),
        }
    }

    /// The application this signature identifies.
    pub fn label(&self) -> AppLabel {
        self.label
    }

    /// The compiled payload patterns.
    pub fn regexes(&self) -> &[Regex] {
        &self.regexes
    }

    /// Well-known TCP service ports.
    pub fn tcp_ports(&self) -> &[u16] {
        &self.tcp_ports
    }

    /// Well-known UDP service ports.
    pub fn udp_ports(&self) -> &[u16] {
        &self.udp_ports
    }

    /// `true` when any pattern matches the payload.
    pub fn matches_payload(&self, payload: &[u8]) -> bool {
        self.regexes.iter().any(|r| r.is_match(payload))
    }
}

/// The full signature database (paper Table 1 plus the well-known
/// client-server service ports used for second-stage identification).
///
/// # Examples
///
/// ```
/// use upbound_pattern::{SignatureDb, AppLabel};
///
/// let db = SignatureDb::standard();
/// assert_eq!(db.match_payload(b"GET / HTTP/1.1\r\nHost: x\r\n"), Some(AppLabel::Http));
/// assert_eq!(db.match_tcp_port(21), Some(AppLabel::Ftp));
/// assert_eq!(db.match_udp_port(4672), Some(AppLabel::EDonkey));
/// assert_eq!(db.match_payload(b"\x00\x01\x02"), None);
/// ```
#[derive(Debug, Clone)]
pub struct SignatureDb {
    signatures: Vec<Signature>,
}

impl SignatureDb {
    /// Builds the standard Table 1 database.
    ///
    /// Peer-to-peer signatures are ordered before HTTP so tracker requests
    /// (`GET /scrape?info_hash=…`) and Gnutella-over-HTTP handshakes
    /// resolve to their P2P application, as the paper's analyzer does.
    pub fn standard() -> Self {
        let signatures = vec![
            Signature::new(
                AppLabel::BitTorrent,
                &[
                    r"^\x13bittorrent protocol",
                    r"d1:ad2:id20:",
                    r"^azver\x01$",
                    r"^get /scrape\?info_hash=",
                    r"^get /announce\?info_hash=",
                ],
                &[],
                &[],
            ),
            Signature::new(
                AppLabel::EDonkey,
                // First byte selects the eDonkey/eMule family, then up to
                // four length bytes, then a known opcode.
                &[
                    r"^[\xc5\xd4\xe3-\xe5].?.?.?.?[\x01\x02\x05\x14\x15\x16\x18\x19\x1a\x1b\x1c\x20\x21\x32\x33\x34\x35\x36\x38\x40\x41\x42\x43\x46\x47\x48\x49\x4a\x4b\x4c\x4d\x4e\x4f\x50\x51\x52\x53\x54\x55\x56\x57\x58\x60\x81\x82\x90\x91\x93\x96\x97\x98\x99\x9a\x9b\x9c\x9e\xa0\xa1\xa2\xa3\xa4]",
                ],
                &[4661, 4662],
                &[4661, 4662, 4665, 4672],
            ),
            Signature::new(
                AppLabel::FastTrack,
                &[
                    r"^get (/\.hash=[0-9a-f]*|/\.supernode|/\.status|/\.network)",
                    r"^give [0-9][0-9]*",
                ],
                &[],
                &[],
            ),
            Signature::new(
                AppLabel::Gnutella,
                &[
                    r"^gnd[\x01\x02]?.?.?\x01",
                    r"^gnutella connect/[012]\.[0-9]\x0d\x0a",
                    r"get /uri-res/n2r\?urn:sha1:",
                    r"get /[\x09-\x0d -~]*user-agent: (gtk-gnutella|bearshare|mactella|gnucleus|gnotella|limewire|imesh)",
                    r"get /[\x09-\x0d -~]*content-type: application/x-gnutella-packets",
                    r"^giv [0-9]*:[0-9a-f]*",
                ],
                &[],
                &[],
            ),
            Signature::new(AppLabel::Ftp, &[r"^220[\x09-\x0d -~]*ftp"], &[21], &[]),
            Signature::new(
                AppLabel::Http,
                &[
                    r"^(get|post|head|put|delete|options|connect) [\x09-\x0d -~]* http/[01]\.[019]",
                    r"^http/[01]\.[019] [1-5][0-9][0-9]",
                ],
                &[80, 3128, 8080],
                &[],
            ),
            // Port-only well-known services (second-stage fallback).
            Signature::new(AppLabel::Dns, &[], &[53], &[53]),
            Signature::new(
                AppLabel::Smtp,
                &[r"^220[\x09-\x0d -~]*(smtp|mail)"],
                &[25],
                &[],
            ),
            Signature::new(AppLabel::Ssh, &[r"^ssh-[12]\.[0-9]"], &[22], &[]),
            Signature::new(AppLabel::Https, &[], &[443], &[]),
        ];
        Self { signatures }
    }

    /// All signatures in matching priority order.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// First-stage identification: matches a (possibly concatenated)
    /// payload stream against every pattern in priority order.
    pub fn match_payload(&self, payload: &[u8]) -> Option<AppLabel> {
        if payload.is_empty() {
            return None;
        }
        self.signatures
            .iter()
            .find(|s| s.matches_payload(payload))
            .map(Signature::label)
    }

    /// Second-stage identification: well-known TCP service port.
    pub fn match_tcp_port(&self, port: u16) -> Option<AppLabel> {
        self.signatures
            .iter()
            .find(|s| s.tcp_ports.contains(&port))
            .map(Signature::label)
    }

    /// Second-stage identification: well-known UDP service port.
    pub fn match_udp_port(&self, port: u16) -> Option<AppLabel> {
        self.signatures
            .iter()
            .find(|s| s.udp_ports.contains(&port))
            .map(Signature::label)
    }
}

impl Default for SignatureDb {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SignatureDb {
        SignatureDb::standard()
    }

    #[test]
    fn bittorrent_handshake_matches() {
        let payload = b"\x13BitTorrent protocol\x00\x00\x00\x00\x00\x10\x00\x05";
        assert_eq!(db().match_payload(payload), Some(AppLabel::BitTorrent));
    }

    #[test]
    fn bittorrent_tracker_scrape_beats_http() {
        let payload = b"GET /scrape?info_hash=abcdef HTTP/1.0\r\n";
        assert_eq!(db().match_payload(payload), Some(AppLabel::BitTorrent));
    }

    #[test]
    fn bittorrent_dht_bencoding_matches() {
        let payload = b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping";
        assert_eq!(db().match_payload(payload), Some(AppLabel::BitTorrent));
    }

    #[test]
    fn edonkey_hello_matches() {
        // 0xe3 header, 4-byte length, opcode 0x01 (hello).
        let payload = b"\xe3\x10\x00\x00\x00\x01rest-of-hello";
        assert_eq!(db().match_payload(payload), Some(AppLabel::EDonkey));
    }

    #[test]
    fn edonkey_emule_extension_matches() {
        let payload = b"\xc5\x05\x00\x00\x00\x60data";
        assert_eq!(db().match_payload(payload), Some(AppLabel::EDonkey));
    }

    #[test]
    fn gnutella_connect_matches() {
        let payload = b"GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire\r\n";
        assert_eq!(db().match_payload(payload), Some(AppLabel::Gnutella));
    }

    #[test]
    fn gnutella_http_style_download_matches() {
        let payload = b"GET /uri-res/N2R?urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB HTTP/1.1\r\n";
        assert_eq!(db().match_payload(payload), Some(AppLabel::Gnutella));
    }

    #[test]
    fn gnutella_user_agent_beats_http() {
        let payload = b"GET /file.mp3 HTTP/1.1\r\nUser-Agent: BearShare 4.0\r\n";
        assert_eq!(db().match_payload(payload), Some(AppLabel::Gnutella));
    }

    #[test]
    fn fasttrack_supernode_matches() {
        assert_eq!(
            db().match_payload(b"GET /.supernode HTTP/1.0"),
            Some(AppLabel::FastTrack)
        );
        assert_eq!(
            db().match_payload(b"GIVE 1234567"),
            Some(AppLabel::FastTrack)
        );
    }

    #[test]
    fn plain_http_request_and_response_match() {
        assert_eq!(
            db().match_payload(b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n"),
            Some(AppLabel::Http)
        );
        assert_eq!(
            db().match_payload(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"),
            Some(AppLabel::Http)
        );
    }

    #[test]
    fn ftp_banner_matches() {
        assert_eq!(
            db().match_payload(b"220 ProFTPD FTP Server ready.\r\n"),
            Some(AppLabel::Ftp)
        );
    }

    #[test]
    fn ssh_banner_matches() {
        assert_eq!(
            db().match_payload(b"SSH-2.0-OpenSSH_4.3"),
            Some(AppLabel::Ssh)
        );
    }

    #[test]
    fn random_binary_does_not_match() {
        assert_eq!(db().match_payload(b"\x00\x01\x02\x03\x04"), None);
        assert_eq!(db().match_payload(b""), None);
    }

    #[test]
    fn encrypted_like_payload_does_not_match() {
        // High-entropy bytes that avoid the eDonkey first-byte family.
        let payload: Vec<u8> = (0u8..64)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        assert_eq!(db().match_payload(&payload), None);
    }

    #[test]
    fn port_fallbacks_match_table_one() {
        let db = db();
        assert_eq!(db.match_tcp_port(80), Some(AppLabel::Http));
        assert_eq!(db.match_tcp_port(3128), Some(AppLabel::Http));
        assert_eq!(db.match_tcp_port(8080), Some(AppLabel::Http));
        assert_eq!(db.match_tcp_port(21), Some(AppLabel::Ftp));
        assert_eq!(db.match_tcp_port(4662), Some(AppLabel::EDonkey));
        assert_eq!(db.match_udp_port(4672), Some(AppLabel::EDonkey));
        assert_eq!(db.match_tcp_port(53), Some(AppLabel::Dns));
        assert_eq!(db.match_tcp_port(443), Some(AppLabel::Https));
        assert_eq!(db.match_tcp_port(12345), None);
        assert_eq!(db.match_udp_port(80), None);
    }

    #[test]
    fn label_classes_partition() {
        assert!(AppLabel::BitTorrent.is_p2p());
        assert!(!AppLabel::Http.is_p2p());
        assert_eq!(AppLabel::Gnutella.port_class(), PortClass::P2p);
        assert_eq!(AppLabel::Dns.port_class(), PortClass::NonP2p);
        assert_eq!(AppLabel::Unknown.port_class(), PortClass::Unknown);
        assert_eq!(AppLabel::all().len(), 11);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(AppLabel::BitTorrent.to_string(), "bittorrent");
        assert_eq!(AppLabel::Unknown.to_string(), "UNKNOWN");
        assert_eq!(AppLabel::Http.to_string(), "HTTP");
    }
}
