//! The family of `m` hash functions shared by all bit vectors.
//!
//! The paper requires `m` independent hash functions that each "output an
//! n-bit value" (§4.2). We derive them by double hashing (Kirsch &
//! Mitzenmacher): two independent 64-bit base hashes `h1`, `h2` combine as
//! `g_i(x) = h1(x) + i·h2(x)`, truncated to `n` bits — asymptotically as
//! good as `m` independent functions for Bloom filters, and O(1) per
//! extra function.
//!
//! `h1` is FNV-1a; `h2` is FNV-1a with a different offset basis passed
//! through a splitmix64 finalizer, forced odd so it is invertible modulo
//! the power-of-two table size.

use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

pub(crate) fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A family of `m` n-bit hash functions over byte strings.
///
/// # Examples
///
/// ```
/// use upbound_core::HashFamily;
///
/// let family = HashFamily::new(3, 20);
/// let idx: Vec<usize> = family.indexes(b"key").collect();
/// assert_eq!(idx.len(), 3);
/// assert!(idx.iter().all(|&i| i < 1 << 20));
/// // Deterministic:
/// assert_eq!(idx, family.indexes(b"key").collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    m: usize,
    n_bits: u32,
}

impl HashFamily {
    /// Creates a family of `m` hash functions with `n_bits`-bit outputs.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m` and `1 <= n_bits <= 32`.
    pub fn new(m: usize, n_bits: u32) -> Self {
        assert!(m >= 1, "need at least one hash function");
        assert!(
            (1..=32).contains(&n_bits),
            "n_bits must be in 1..=32, got {n_bits}"
        );
        Self { m, n_bits }
    }

    /// Number of hash functions `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Output width in bits (`n`); indexes are below `2^n`.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// The table size `N = 2^n` the outputs index into.
    pub fn table_size(&self) -> usize {
        1usize << self.n_bits
    }

    /// Returns the `m` bit indexes for `key`.
    pub fn indexes(&self, key: &[u8]) -> Indexes {
        let h1 = splitmix64(fnv1a(FNV_OFFSET, key));
        // Independent second hash: different seed + finalizer, forced odd.
        let h2 = splitmix64(fnv1a(FNV_OFFSET ^ 0x5bd1_e995_9d1b_54a3, key)) | 1;
        Indexes {
            h1,
            h2,
            i: 0,
            m: self.m,
            mask: (self.table_size() - 1) as u64,
        }
    }
}

/// Iterator over the `m` bit indexes of one key.
#[derive(Debug, Clone)]
pub struct Indexes {
    h1: u64,
    h2: u64,
    i: u64,
    m: usize,
    mask: u64,
}

impl Iterator for Indexes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.i as usize >= self.m {
            return None;
        }
        let g = self.h1.wrapping_add(self.i.wrapping_mul(self.h2));
        self.i += 1;
        Some((g & self.mask) as usize)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.m - self.i as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Indexes {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn outputs_are_deterministic() {
        let f = HashFamily::new(4, 16);
        let a: Vec<_> = f.indexes(b"hello").collect();
        let b: Vec<_> = f.indexes(b"hello").collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn outputs_fit_in_n_bits() {
        let f = HashFamily::new(8, 10);
        for key in [&b"a"[..], b"abc", b"\x00\xff\x13", b""] {
            for idx in f.indexes(key) {
                assert!(idx < 1024);
            }
        }
    }

    #[test]
    fn different_keys_usually_differ() {
        let f = HashFamily::new(3, 20);
        let a: Vec<_> = f.indexes(b"key-a").collect();
        let b: Vec<_> = f.indexes(b"key-b").collect();
        assert_ne!(a, b);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Hash 20_000 distinct keys into 2^10 buckets with one function;
        // every bucket should land within a loose band of the mean (~19.5).
        let f = HashFamily::new(1, 10);
        let mut counts = vec![0u32; 1024];
        for i in 0..20_000u32 {
            let key = i.to_le_bytes();
            let idx = f.indexes(&key).next().unwrap();
            counts[idx] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min >= 3, "unexpectedly empty bucket (min {min})");
        assert!(max <= 50, "unexpectedly hot bucket (max {max})");
    }

    #[test]
    fn family_members_are_distinct() {
        // For one key, the m indexes should rarely all coincide; check
        // they are not all equal over many keys.
        let f = HashFamily::new(4, 16);
        let mut all_same = 0;
        for i in 0..1000u32 {
            let idx: HashSet<_> = f.indexes(&i.to_le_bytes()).collect();
            if idx.len() == 1 {
                all_same += 1;
            }
        }
        assert!(all_same < 5, "hash family is degenerate ({all_same})");
    }

    #[test]
    fn exact_size_iterator_contract() {
        let f = HashFamily::new(5, 8);
        let mut it = f.indexes(b"x");
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn accessors_report_shape() {
        let f = HashFamily::new(3, 20);
        assert_eq!(f.m(), 3);
        assert_eq!(f.n_bits(), 20);
        assert_eq!(f.table_size(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "n_bits must be in 1..=32")]
    fn oversized_output_panics() {
        let _ = HashFamily::new(1, 33);
    }

    #[test]
    #[should_panic(expected = "at least one hash function")]
    fn zero_functions_panics() {
        let _ = HashFamily::new(0, 8);
    }
}
