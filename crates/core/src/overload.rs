//! Saturation sentinel and graceful-degradation ladder.
//!
//! The paper's bitmap filter has a blind spot under inbound floods: an
//! attacker who elicits enough outbound responses (SYN→RST, UDP→ICMP)
//! saturates the bit vectors, driving the utilization `U` — and with it
//! the penetration probability `U^m` of Equation 2 — toward 1. Every
//! unknown tuple then looks solicited and the filter silently stops
//! filtering.
//!
//! This module adds the *overload ladder*: a hysteresis-guarded state
//! machine (`Normal → Pressure → Saturated`) fed by a sentinel that
//! samples the current vector's fill ratio (an O(1) read — the
//! [`AtomicBitVec`](crate::AtomicBitVec) maintains its popcount) and
//! projects the expected false-positive probability `fill^m`. The ladder
//! drives three graceful-degradation actions inside
//! [`BitmapFilter`](crate::BitmapFilter):
//!
//! * **`P_d` clamp** — while degraded, the effective drop probability
//!   for *unmarked* inbound packets is raised to at least the state's
//!   clamp. The clamp is applied strictly after the bitmap probe, so it
//!   structurally cannot flip a marked (solicited) flow from Pass to
//!   Drop: known tuples return before any drop draw runs.
//! * **Early epoch rotation** — while `Saturated`, each rotation tick
//!   performs one extra rotation, shedding attacker marks at twice the
//!   configured rate. This degrades the guaranteed mark-survival floor
//!   from `(k−1)·Δt` to `⌊(k−1)/2⌋·Δt` — the documented rotation bound
//!   the overload proptests pin down.
//! * **Fail-mode-aware emergency bypass** — an availability-first
//!   ([`FailMode::Open`](crate::FailMode)) deployment never hardens the
//!   clamp past the `Pressure` level even when `Saturated`: it relies on
//!   early rotation alone, trading attack suppression for fewer
//!   collateral drops. Fail-closed deployments apply the full clamp.
//!
//! The ladder is pure *derived* state — a function of the bitmap fill —
//! so it is deliberately not part of the snapshot format: a restored
//! filter re-derives its state from the restored bitmap on the first
//! inbound packet.

use crate::config::FailMode;
use crate::AtomicBitmap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use upbound_net::Timestamp;

/// The rungs of the degradation ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OverloadState {
    /// Fill is healthy; the ladder changes nothing.
    #[default]
    Normal,
    /// Fill is elevated: the unsolicited-inbound `P_d` clamp engages.
    Pressure,
    /// Fill threatens the filtering guarantee: rotation doubles and the
    /// clamp hardens (fail-closed only).
    Saturated,
}

impl OverloadState {
    /// Stable numeric encoding (gauge value, event payloads).
    pub fn as_u8(self) -> u8 {
        match self {
            OverloadState::Normal => 0,
            OverloadState::Pressure => 1,
            OverloadState::Saturated => 2,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8); out-of-range decodes clamp to
    /// `Saturated` (the safe interpretation of an unknown rung).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => OverloadState::Normal,
            1 => OverloadState::Pressure,
            _ => OverloadState::Saturated,
        }
    }

    /// The stable lowercase spelling used in events and logs.
    pub fn label(self) -> &'static str {
        match self {
            OverloadState::Normal => "normal",
            OverloadState::Pressure => "pressure",
            OverloadState::Saturated => "saturated",
        }
    }
}

/// Error parsing an [`OverloadPolicy`] spec string.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OverloadPolicyError {
    /// Not a recognized preset or `key=value` field.
    UnknownField(String),
    /// A numeric field failed to parse or was out of `[0, 1]`.
    BadValue(String),
    /// Thresholds must satisfy `0 < pressure < saturated <= 1` and
    /// `hysteresis < pressure`.
    BadThresholds,
}

impl std::fmt::Display for OverloadPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadPolicyError::UnknownField(s) => {
                write!(f, "unknown overload-policy field {s:?}")
            }
            OverloadPolicyError::BadValue(s) => {
                write!(f, "overload-policy value out of range: {s:?}")
            }
            OverloadPolicyError::BadThresholds => write!(
                f,
                "overload-policy thresholds must satisfy 0 < pressure < saturated <= 1 \
                 and hysteresis < pressure"
            ),
        }
    }
}

impl std::error::Error for OverloadPolicyError {}

/// Thresholds and actions of the degradation ladder.
///
/// Construct with the presets ([`off`](Self::off),
/// [`balanced`](Self::balanced), [`strict`](Self::strict)) or parse a
/// CLI spec via [`parse`](Self::parse). The default is
/// [`off`](Self::off): the ladder never engages and the filter behaves
/// exactly as the paper specifies — which is what keeps every
/// sharded-vs-sequential equivalence property intact unless an operator
/// opts in.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPolicy {
    enabled: bool,
    /// Enter `Pressure` at fill ≥ this.
    pressure_fill: f64,
    /// Enter `Saturated` at fill ≥ this.
    saturated_fill: f64,
    /// De-escalate only below `threshold − hysteresis` (flap guard).
    hysteresis: f64,
    /// Minimum effective `P_d` for unmarked inbound while in `Pressure`.
    pressure_clamp: f64,
    /// Minimum effective `P_d` while `Saturated` (fail-closed only).
    saturated_clamp: f64,
    /// Double the rotation rate while `Saturated`.
    early_rotation: bool,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy::off()
    }
}

impl OverloadPolicy {
    /// The ladder never engages (paper-faithful behavior; the default).
    pub fn off() -> Self {
        OverloadPolicy {
            enabled: false,
            pressure_fill: 1.0,
            saturated_fill: 1.0,
            hysteresis: 0.0,
            pressure_clamp: 0.0,
            saturated_clamp: 0.0,
            early_rotation: false,
        }
    }

    /// Production default: `Pressure` at 50% fill (`U^3 ≈ 0.13`),
    /// `Saturated` at 75% (`U^3 ≈ 0.42`), 5-point hysteresis, clamps of
    /// 0.5 / 1.0, early rotation on.
    pub fn balanced() -> Self {
        OverloadPolicy {
            enabled: true,
            pressure_fill: 0.50,
            saturated_fill: 0.75,
            hysteresis: 0.05,
            pressure_clamp: 0.5,
            saturated_clamp: 1.0,
            early_rotation: true,
        }
    }

    /// Aggressive: engages earlier (35% / 60%) and clamps harder in
    /// `Pressure` (0.75), for deployments that prefer bounding over
    /// availability.
    pub fn strict() -> Self {
        OverloadPolicy {
            enabled: true,
            pressure_fill: 0.35,
            saturated_fill: 0.60,
            hysteresis: 0.05,
            pressure_clamp: 0.75,
            saturated_clamp: 1.0,
            early_rotation: true,
        }
    }

    /// Parses a CLI spec: a preset name (`off`, `balanced`, `strict`)
    /// optionally followed by `key=value` overrides, comma-separated.
    /// Recognized keys: `pressure`, `saturated`, `hysteresis`,
    /// `pressure-clamp`, `saturated-clamp`, `early-rotation` (bool).
    ///
    /// ```
    /// use upbound_core::OverloadPolicy;
    /// let p = OverloadPolicy::parse("balanced,pressure=0.4").unwrap();
    /// assert!(p.enabled());
    /// assert_eq!(p.pressure_fill(), 0.4);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an [`OverloadPolicyError`] for unknown fields, values
    /// outside `[0, 1]`, or inconsistent thresholds.
    pub fn parse(spec: &str) -> Result<Self, OverloadPolicyError> {
        let mut parts = spec.split(',');
        let head = parts.next().unwrap_or("").trim();
        let mut policy = match head {
            "off" => OverloadPolicy::off(),
            "balanced" => OverloadPolicy::balanced(),
            "strict" => OverloadPolicy::strict(),
            other => {
                return Err(OverloadPolicyError::UnknownField(other.to_string()));
            }
        };
        for part in parts {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| OverloadPolicyError::UnknownField(part.to_string()))?;
            let fraction = |v: &str| -> Result<f64, OverloadPolicyError> {
                v.parse::<f64>()
                    .ok()
                    .filter(|x| (0.0..=1.0).contains(x))
                    .ok_or_else(|| OverloadPolicyError::BadValue(part.to_string()))
            };
            match key.trim() {
                "pressure" => policy.pressure_fill = fraction(value)?,
                "saturated" => policy.saturated_fill = fraction(value)?,
                "hysteresis" => policy.hysteresis = fraction(value)?,
                "pressure-clamp" => policy.pressure_clamp = fraction(value)?,
                "saturated-clamp" => policy.saturated_clamp = fraction(value)?,
                "early-rotation" => {
                    policy.early_rotation = match value.trim() {
                        "true" | "on" | "1" => true,
                        "false" | "off" | "0" => false,
                        _ => return Err(OverloadPolicyError::BadValue(part.to_string())),
                    }
                }
                other => return Err(OverloadPolicyError::UnknownField(other.to_string())),
            }
        }
        if policy.enabled
            && !(policy.pressure_fill > 0.0
                && policy.pressure_fill < policy.saturated_fill
                && policy.saturated_fill <= 1.0
                && policy.hysteresis < policy.pressure_fill)
        {
            return Err(OverloadPolicyError::BadThresholds);
        }
        Ok(policy)
    }

    /// `true` when the ladder can engage at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The fill ratio at which `Pressure` engages.
    pub fn pressure_fill(&self) -> f64 {
        self.pressure_fill
    }

    /// The fill ratio at which `Saturated` engages.
    pub fn saturated_fill(&self) -> f64 {
        self.saturated_fill
    }

    /// The de-escalation hysteresis margin.
    pub fn hysteresis(&self) -> f64 {
        self.hysteresis
    }

    /// Whether `Saturated` doubles the rotation rate.
    pub fn early_rotation(&self) -> bool {
        self.early_rotation
    }

    /// The state the sentinel targets for `fill`, given the ladder is
    /// currently at `from` (hysteresis makes the map direction-aware).
    fn target_state(&self, from: OverloadState, fill: f64) -> OverloadState {
        // Escalation uses the raw thresholds; de-escalation requires the
        // fill to clear the threshold by the hysteresis margin, so a
        // fill hovering at a boundary cannot flap the ladder.
        let up = if fill >= self.saturated_fill {
            OverloadState::Saturated
        } else if fill >= self.pressure_fill {
            OverloadState::Pressure
        } else {
            OverloadState::Normal
        };
        if up >= from {
            return up;
        }
        let down = if fill >= self.saturated_fill - self.hysteresis {
            OverloadState::Saturated
        } else if fill >= self.pressure_fill - self.hysteresis {
            OverloadState::Pressure
        } else {
            OverloadState::Normal
        };
        down.min(from)
    }

    /// The minimum effective `P_d` for unmarked inbound packets in
    /// `state`, under `fail_mode`. This is the fail-mode-aware emergency
    /// bypass: a fail-open deployment caps the clamp at the `Pressure`
    /// level even when `Saturated`.
    pub fn clamp_for(&self, state: OverloadState, fail_mode: FailMode) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        match (state, fail_mode) {
            (OverloadState::Normal, _) => 0.0,
            (OverloadState::Pressure, _) => self.pressure_clamp,
            (OverloadState::Saturated, FailMode::Closed) => self.saturated_clamp,
            (OverloadState::Saturated, FailMode::Open) => self.pressure_clamp,
        }
    }
}

/// A ladder transition, handed to
/// [`FilterObserver::on_overload`](crate::FilterObserver::on_overload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadEvent {
    /// Packet time of the sentinel sample that moved the ladder.
    pub now: Timestamp,
    /// The rung left.
    pub from: OverloadState,
    /// The rung entered.
    pub to: OverloadState,
    /// The sampled fill ratio of the current bit vector.
    pub fill: f64,
    /// The projected false-positive probability `fill^m` (Equation 2).
    pub projected_fp: f64,
    /// Total ladder transitions so far, this one included.
    pub transitions: u64,
}

/// The ladder's runtime state: an atomic rung plus transition counters,
/// so the concurrent (`&self`) decision paths of
/// [`BitmapFilter`](crate::BitmapFilter) can evaluate it lock-free.
#[derive(Debug)]
pub struct OverloadLadder {
    policy: OverloadPolicy,
    state: AtomicU8,
    transitions: AtomicU64,
    early_rotations: AtomicU64,
}

impl Clone for OverloadLadder {
    fn clone(&self) -> Self {
        OverloadLadder {
            policy: self.policy.clone(),
            state: AtomicU8::new(self.state.load(Ordering::Relaxed)),
            transitions: AtomicU64::new(self.transitions.load(Ordering::Relaxed)),
            early_rotations: AtomicU64::new(self.early_rotations.load(Ordering::Relaxed)),
        }
    }
}

impl OverloadLadder {
    /// A ladder enforcing `policy`, starting at `Normal`.
    pub fn new(policy: OverloadPolicy) -> Self {
        OverloadLadder {
            policy,
            state: AtomicU8::new(OverloadState::Normal.as_u8()),
            transitions: AtomicU64::new(0),
            early_rotations: AtomicU64::new(0),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Replaces the policy without disturbing the rung or the
    /// transition counters (runtime reconfiguration). The next
    /// [`evaluate`](Self::evaluate) re-derives the rung under the new
    /// thresholds, so a policy that no longer justifies the current
    /// rung de-escalates on its own.
    pub fn set_policy(&mut self, policy: OverloadPolicy) {
        if !policy.enabled {
            // A disabled ladder reports `Normal` everywhere clamps and
            // rotation are derived; drop the stale rung too so state
            // gauges agree.
            *self.state.get_mut() = OverloadState::Normal.as_u8();
        }
        self.policy = policy;
    }

    /// The current rung.
    pub fn state(&self) -> OverloadState {
        OverloadState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Total transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Extra rotations performed because the ladder was `Saturated`.
    pub fn early_rotations(&self) -> u64 {
        self.early_rotations.load(Ordering::Relaxed)
    }

    /// Samples the sentinel against `bitmap` and moves the ladder if the
    /// fill crossed a (hysteresis-guarded) threshold. Returns the
    /// transition when one happened — `None` on the hot path.
    pub fn evaluate(&self, bitmap: &AtomicBitmap, now: Timestamp) -> Option<OverloadEvent> {
        if !self.policy.enabled {
            return None;
        }
        let from = self.state();
        let fill = bitmap.utilization();
        let to = self.policy.target_state(from, fill);
        if to == from {
            return None;
        }
        // One winner per transition: racing evaluators that observed the
        // same `from` rung agree on `to` (same policy, near-identical
        // fill), and the exchange makes exactly one of them report it.
        if self
            .state
            .compare_exchange(
                from.as_u8(),
                to.as_u8(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return None;
        }
        let transitions = self.transitions.fetch_add(1, Ordering::Relaxed) + 1;
        Some(OverloadEvent {
            now,
            from,
            to,
            fill,
            projected_fp: fill.powi(bitmap.hash_family().m() as i32),
            transitions,
        })
    }

    /// The minimum effective `P_d` at the current rung under
    /// `fail_mode` (see [`OverloadPolicy::clamp_for`]).
    pub fn clamp(&self, fail_mode: FailMode) -> f64 {
        if !self.policy.enabled {
            return 0.0;
        }
        self.policy.clamp_for(self.state(), fail_mode)
    }

    /// `true` when the current rotation tick should perform one extra
    /// rotation (ladder `Saturated` with early rotation enabled).
    pub fn wants_early_rotation(&self) -> bool {
        self.policy.enabled
            && self.policy.early_rotation
            && self.state() == OverloadState::Saturated
    }

    /// Accounts one early rotation.
    pub fn note_early_rotation(&self) {
        self.early_rotations.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the ladder to `Normal` and zeroes its counters
    /// (exclusive; used by [`BitmapFilter::reset`](crate::BitmapFilter)).
    pub fn reset(&mut self) {
        *self.state.get_mut() = OverloadState::Normal.as_u8();
        *self.transitions.get_mut() = 0;
        *self.early_rotations.get_mut() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_validate() {
        assert_eq!(OverloadPolicy::parse("off").unwrap(), OverloadPolicy::off());
        assert_eq!(
            OverloadPolicy::parse("balanced").unwrap(),
            OverloadPolicy::balanced()
        );
        assert_eq!(
            OverloadPolicy::parse("strict").unwrap(),
            OverloadPolicy::strict()
        );
        let custom = OverloadPolicy::parse("balanced,pressure=0.3,early-rotation=off").unwrap();
        assert_eq!(custom.pressure_fill(), 0.3);
        assert!(!custom.early_rotation());
        assert!(matches!(
            OverloadPolicy::parse("bogus"),
            Err(OverloadPolicyError::UnknownField(_))
        ));
        assert!(matches!(
            OverloadPolicy::parse("balanced,pressure=2.0"),
            Err(OverloadPolicyError::BadValue(_))
        ));
        // pressure >= saturated is inconsistent.
        assert!(matches!(
            OverloadPolicy::parse("balanced,pressure=0.9"),
            Err(OverloadPolicyError::BadThresholds)
        ));
    }

    #[test]
    fn state_codec_round_trips() {
        for s in [
            OverloadState::Normal,
            OverloadState::Pressure,
            OverloadState::Saturated,
        ] {
            assert_eq!(OverloadState::from_u8(s.as_u8()), s);
        }
        assert_eq!(OverloadState::from_u8(99), OverloadState::Saturated);
        assert_eq!(OverloadState::Pressure.label(), "pressure");
    }

    #[test]
    fn hysteresis_blocks_flapping() {
        let p = OverloadPolicy::balanced();
        // Escalate exactly at the threshold.
        assert_eq!(
            p.target_state(OverloadState::Normal, 0.50),
            OverloadState::Pressure
        );
        // Just under the threshold from above: held by hysteresis.
        assert_eq!(
            p.target_state(OverloadState::Pressure, 0.48),
            OverloadState::Pressure
        );
        // Clear of the hysteresis band: de-escalates.
        assert_eq!(
            p.target_state(OverloadState::Pressure, 0.44),
            OverloadState::Normal
        );
        // Straight from Normal to Saturated on a huge fill jump.
        assert_eq!(
            p.target_state(OverloadState::Normal, 0.9),
            OverloadState::Saturated
        );
        // And back down two rungs when the fill collapses.
        assert_eq!(
            p.target_state(OverloadState::Saturated, 0.1),
            OverloadState::Normal
        );
    }

    #[test]
    fn fail_open_caps_the_saturated_clamp() {
        let p = OverloadPolicy::balanced();
        assert_eq!(p.clamp_for(OverloadState::Saturated, FailMode::Closed), 1.0);
        assert_eq!(p.clamp_for(OverloadState::Saturated, FailMode::Open), 0.5);
        assert_eq!(p.clamp_for(OverloadState::Normal, FailMode::Closed), 0.0);
        assert_eq!(
            OverloadPolicy::off().clamp_for(OverloadState::Saturated, FailMode::Closed),
            0.0
        );
    }

    #[test]
    fn disabled_ladder_never_moves() {
        let bitmap = AtomicBitmap::new(4, 4, 3);
        let ladder = OverloadLadder::new(OverloadPolicy::off());
        for i in 0..200u32 {
            bitmap.mark(&i.to_le_bytes());
        }
        assert!(ladder.evaluate(&bitmap, Timestamp::ZERO).is_none());
        assert_eq!(ladder.state(), OverloadState::Normal);
        assert_eq!(ladder.clamp(FailMode::Closed), 0.0);
        assert!(!ladder.wants_early_rotation());
    }

    #[test]
    fn ladder_escalates_on_fill_and_reports_projection() {
        // Tiny vectors (2^4 = 16 bits) saturate fast.
        let bitmap = AtomicBitmap::new(4, 4, 3);
        let ladder = OverloadLadder::new(OverloadPolicy::balanced());
        assert!(ladder.evaluate(&bitmap, Timestamp::ZERO).is_none());
        for i in 0..300u32 {
            bitmap.mark(&i.to_le_bytes());
        }
        let event = ladder
            .evaluate(&bitmap, Timestamp::from_secs(1.0))
            .expect("full bitmap must escalate");
        assert_eq!(event.from, OverloadState::Normal);
        assert_eq!(event.to, OverloadState::Saturated);
        assert!(event.fill > 0.9, "fill {}", event.fill);
        assert!((event.projected_fp - event.fill.powi(3)).abs() < 1e-12);
        assert_eq!(ladder.state(), OverloadState::Saturated);
        assert_eq!(ladder.transitions(), 1);
        assert!(ladder.wants_early_rotation());
        // Re-evaluating at the same fill is a no-op.
        assert!(ladder
            .evaluate(&bitmap, Timestamp::from_secs(2.0))
            .is_none());
    }
}
