//! The `{k × N}` bitmap: k rotating Bloom-filter bit vectors.

use crate::{BitVec, HashFamily};
use serde::{Deserialize, Serialize};

/// The core data structure of the paper (§4.2, Figure 7): `k` bit vectors
/// of `N = 2^n` bits sharing `m` hash functions.
///
/// * **mark** (outbound packet): set the key's `m` bits in **all** `k`
///   vectors — paper Algorithm 2, lines 1–5.
/// * **lookup** (inbound packet): check the `m` bits in the **current**
///   vector only — Algorithm 2, lines 6–15.
/// * **rotate** (every `Δt`): advance the current index and zero the
///   vector it left — Algorithm 1.
///
/// A key marked immediately after a rotation survives `k` further
/// rotations; one marked just before, `k−1`. Marks therefore expire after
/// `T_e ∈ [(k−1)·Δt, k·Δt]`, without any per-flow state.
///
/// # Examples
///
/// ```
/// use upbound_core::Bitmap;
///
/// let mut bm = Bitmap::new(4, 10, 3); // {4 × 2^10}, m = 3
/// bm.mark(b"conn");
/// assert!(bm.lookup(b"conn"));
/// for _ in 0..4 {
///     bm.rotate();
/// }
/// assert!(!bm.lookup(b"conn")); // expired
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bitmap {
    vectors: Vec<BitVec>,
    hashes: HashFamily,
    idx: usize,
    rotations: u64,
}

impl Bitmap {
    /// Creates a `{k × 2^n_bits}` bitmap with `m` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (rotation needs at least a current and a
    /// clearable vector) or on [`HashFamily::new`] bounds.
    pub fn new(k: usize, n_bits: u32, m: usize) -> Self {
        assert!(k >= 2, "need at least two bit vectors, got {k}");
        let hashes = HashFamily::new(m, n_bits);
        Self {
            vectors: (0..k).map(|_| BitVec::new(hashes.table_size())).collect(),
            hashes,
            idx: 0,
            rotations: 0,
        }
    }

    /// Number of bit vectors `k`.
    pub fn k(&self) -> usize {
        self.vectors.len()
    }

    /// Bits per vector `N`.
    pub fn vector_len(&self) -> usize {
        self.vectors[0].len()
    }

    /// The shared hash family.
    pub fn hash_family(&self) -> HashFamily {
        self.hashes
    }

    /// Index of the current bit vector.
    pub fn current_index(&self) -> usize {
        self.idx
    }

    /// Total rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Marks `key` in **all** `k` vectors (Algorithm 2, outbound path).
    ///
    /// Iterates vector-outer: all `m` bits of one vector are set before
    /// moving to the next, so each vector's cache lines are touched in
    /// one burst instead of interleaving accesses across `k` separate
    /// `N`-bit tables per hash index.
    pub fn mark(&mut self, key: &[u8]) {
        let indexes = self.hashes.indexes(key);
        for v in &mut self.vectors {
            for bit in indexes.clone() {
                v.set(bit);
            }
        }
    }

    /// Looks `key` up in the **current** vector only (Algorithm 2,
    /// inbound path). `true` means the key was marked within the expiry
    /// window (or collided — a false positive).
    pub fn lookup(&self, key: &[u8]) -> bool {
        let current = &self.vectors[self.idx];
        self.hashes.indexes(key).all(|bit| current.get(bit))
    }

    /// Reads one bit of the **current** vector — the per-bit check of
    /// Algorithm 2, exposed so the filter can apply its per-bit drop
    /// draws.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= vector_len()`.
    pub fn current_bit(&self, bit: usize) -> bool {
        self.vectors[self.idx].get(bit)
    }

    /// The timer handler `b.rotate()` (Algorithm 1): advances the current
    /// index to the next vector and zeroes the vector just left. Returns
    /// the new current index.
    pub fn rotate(&mut self) -> usize {
        let last = self.idx;
        self.idx = (self.idx + 1) % self.vectors.len();
        self.vectors[last].clear();
        self.rotations += 1;
        self.idx
    }

    /// Utilization `U = b/N` of the current vector (paper Eq. 2).
    pub fn utilization(&self) -> f64 {
        self.vectors[self.idx].utilization()
    }

    /// Expected penetration probability `U^m` for a random unknown key
    /// (paper Eq. 2).
    pub fn penetration_probability(&self) -> f64 {
        self.utilization().powi(self.hashes.m() as i32)
    }

    /// Total memory of the bit storage: `(k × N)/8` bytes — 512 KiB for
    /// the paper's `{4 × 2^20}` configuration.
    pub fn memory_bytes(&self) -> usize {
        self.vectors.iter().map(BitVec::memory_bytes).sum()
    }

    /// Zeroes every vector and resets the index.
    pub fn reset(&mut self) {
        for v in &mut self.vectors {
            v.clear();
        }
        self.idx = 0;
        self.rotations = 0;
    }

    /// Overwrites the bit-vector contents and rotation clock from
    /// snapshot fields. All geometry checks (vector count, each vector's
    /// length, the index bound) run **before** any field is touched, so
    /// a `false` return leaves the bitmap exactly as it was — callers
    /// may keep using it or retry with a good snapshot.
    pub fn restore_fields(&mut self, vectors: Vec<BitVec>, idx: usize, rotations: u64) -> bool {
        if vectors.len() != self.vectors.len()
            || idx >= vectors.len()
            || vectors.iter().any(|v| v.len() != self.vector_len())
        {
            return false;
        }
        self.vectors = vectors;
        self.idx = idx;
        self.rotations = rotations;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_memory() {
        let bm = Bitmap::new(4, 20, 3);
        assert_eq!(bm.memory_bytes(), 512 * 1024);
        assert_eq!(bm.k(), 4);
        assert_eq!(bm.vector_len(), 1 << 20);
    }

    #[test]
    fn marked_key_is_found() {
        let mut bm = Bitmap::new(4, 12, 3);
        bm.mark(b"abc");
        assert!(bm.lookup(b"abc"));
        assert!(!bm.lookup(b"xyz"));
    }

    #[test]
    fn mark_survives_k_minus_one_rotations() {
        // Marked right after a rotation, a key must survive k−1 further
        // rotations and disappear on the k-th.
        let k = 4;
        let mut bm = Bitmap::new(k, 12, 3);
        bm.mark(b"conn");
        for r in 1..k {
            bm.rotate();
            assert!(bm.lookup(b"conn"), "lost after {r} rotations");
        }
        bm.rotate();
        assert!(!bm.lookup(b"conn"), "survived {k} rotations");
    }

    #[test]
    fn remarking_refreshes_lifetime() {
        let mut bm = Bitmap::new(3, 12, 2);
        bm.mark(b"conn");
        bm.rotate();
        bm.rotate();
        bm.mark(b"conn"); // tuple seen again: timer reset
        bm.rotate();
        bm.rotate();
        assert!(bm.lookup(b"conn"));
    }

    #[test]
    fn rotation_index_wraps() {
        let mut bm = Bitmap::new(3, 8, 1);
        assert_eq!(bm.current_index(), 0);
        assert_eq!(bm.rotate(), 1);
        assert_eq!(bm.rotate(), 2);
        assert_eq!(bm.rotate(), 0);
        assert_eq!(bm.rotations(), 3);
    }

    #[test]
    fn rotate_clears_only_departed_vector() {
        let mut bm = Bitmap::new(2, 10, 2);
        bm.mark(b"a");
        bm.rotate(); // vector 0 cleared; vector 1 (now current) still marked
        assert!(bm.lookup(b"a"));
        // Key marked now goes into both vectors, including the cleared one.
        bm.mark(b"b");
        bm.rotate(); // vector 1 cleared; current = vector 0 has only "b"
        assert!(bm.lookup(b"b"));
        assert!(!bm.lookup(b"a"));
    }

    #[test]
    fn utilization_and_penetration_grow_with_load() {
        let mut bm = Bitmap::new(4, 10, 3);
        assert_eq!(bm.penetration_probability(), 0.0);
        for i in 0..200u32 {
            bm.mark(&i.to_le_bytes());
        }
        assert!(bm.utilization() > 0.0);
        let p = bm.penetration_probability();
        assert!(p > 0.0 && p < 1.0);
        assert!((p - bm.utilization().powi(3)).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut bm = Bitmap::new(3, 8, 2);
        bm.mark(b"x");
        bm.rotate();
        bm.reset();
        assert_eq!(bm.current_index(), 0);
        assert_eq!(bm.rotations(), 0);
        assert!(!bm.lookup(b"x"));
        assert_eq!(bm.utilization(), 0.0);
    }

    #[test]
    fn no_false_negatives_within_window_bulk() {
        let mut bm = Bitmap::new(4, 16, 3);
        let keys: Vec<[u8; 4]> = (0..2000u32).map(|i| i.to_le_bytes()).collect();
        for key in &keys {
            bm.mark(key);
        }
        bm.rotate();
        bm.rotate();
        bm.rotate(); // still within k−1 rotations
        assert!(keys.iter().all(|k| bm.lookup(k)));
    }

    #[test]
    #[should_panic(expected = "at least two bit vectors")]
    fn single_vector_is_rejected() {
        let _ = Bitmap::new(1, 8, 1);
    }
}
