//! Multi-network deployment: one filter instance per client network on
//! an aggregating core router.
//!
//! The paper's Figure 6 shows bitmap filters installed either on edge
//! routers (one client network each) or on core routers that aggregate
//! "two or more client networks". [`MultiNetworkFilter`] was that core
//! deployment; it is now a thin **deprecated** shim over
//! [`SubscriberTable`](crate::SubscriberTable), which adds
//! longest-prefix-match dispatch (no more registration-order matching),
//! lazy activation with arena-backed eviction, per-tenant telemetry and
//! incremental checkpoints. New code should use `SubscriberTable`
//! directly.

use crate::pfilter::PacketFilter;
use crate::subscriber::SubscriberTable;
use crate::{BitmapFilter, BitmapFilterConfig, Verdict};
use upbound_net::{Cidr, Packet, Timestamp};

/// A bank of per-client-network filters for an aggregation point.
///
/// Deprecated shim: all behavior is delegated to a
/// [`SubscriberTable`](crate::SubscriberTable) with eagerly installed
/// filters. Prefix matching is longest-prefix-match, so overlapping
/// networks resolve to the most specific prefix regardless of
/// registration order (the old linear scan required registering
/// more-specific prefixes first).
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use upbound_core::{MultiNetworkFilter, BitmapFilterConfig, Verdict};
/// use upbound_net::{FiveTuple, Packet, Protocol, TcpFlags, Timestamp};
///
/// let mut bank = MultiNetworkFilter::new();
/// bank.add_network("10.1.0.0/16".parse()?, BitmapFilterConfig::paper_evaluation());
/// bank.add_network("10.2.0.0/16".parse()?, BitmapFilterConfig::paper_evaluation());
///
/// // An unsolicited inbound SYN toward network 1 is dropped there …
/// let pkt = Packet::tcp(
///     Timestamp::from_secs(1.0),
///     FiveTuple::new(
///         Protocol::Tcp,
///         "198.51.100.2:4000".parse()?,
///         "10.1.0.9:6881".parse()?,
///     ),
///     TcpFlags::SYN,
///     &[][..],
/// );
/// assert_eq!(bank.process_packet(&pkt), Verdict::Drop);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
#[deprecated(
    since = "0.7.0",
    note = "use `SubscriberTable`, which adds LPM dispatch, lazy activation and incremental checkpoints"
)]
pub struct MultiNetworkFilter<F: PacketFilter = BitmapFilter> {
    table: SubscriberTable<F>,
}

#[allow(deprecated)]
impl<F: PacketFilter> Default for MultiNetworkFilter<F> {
    fn default() -> Self {
        Self {
            table: SubscriberTable::with_filters(),
        }
    }
}

#[allow(deprecated)]
impl MultiNetworkFilter<BitmapFilter> {
    /// Registers a client network with its own bitmap-filter
    /// configuration. The filter is built eagerly, preserving the
    /// historical semantics of this type (memory O(provisioned); use
    /// [`SubscriberTable::add_subscriber`] for lazy activation).
    ///
    /// # Panics
    ///
    /// Panics if the exact prefix is already registered.
    pub fn add_network(&mut self, network: Cidr, config: BitmapFilterConfig) -> &mut Self {
        self.add_network_filter(network, BitmapFilter::new(config))
    }
}

#[allow(deprecated)]
impl<F: PacketFilter> MultiNetworkFilter<F> {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a client network served by a pre-built filter.
    ///
    /// Overlapping prefixes resolve by longest prefix match.
    ///
    /// # Panics
    ///
    /// Panics if the exact prefix is already registered.
    pub fn add_network_filter(&mut self, network: Cidr, filter: F) -> &mut Self {
        if let Err(e) = self.table.add_subscriber_filter(network, filter) {
            panic!("cannot register network: {e}");
        }
        self
    }

    /// Number of registered networks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no networks are registered.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Processes one packet at the aggregation point (see
    /// [`SubscriberTable::process_packet`] for the classification
    /// rules: outbound from a monitored source always passes, inbound
    /// to a monitored destination is checked, transit passes).
    pub fn process_packet(&mut self, packet: &Packet) -> Verdict {
        self.table.process_packet(packet)
    }

    /// Applies due timer events on every member filter.
    pub fn advance(&mut self, now: Timestamp) {
        self.table.advance(now);
    }

    /// Per-network statistics, in registration order.
    pub fn stats(&self) -> Vec<(Cidr, F::Stats)> {
        self.table.per_subscriber_stats()
    }

    /// All member statistics folded into one aggregate (see
    /// [`crate::MergeStats::merge`] for the fold semantics).
    pub fn merged_stats(&self) -> F::Stats {
        self.table.merged_stats()
    }

    /// Total filter memory across all networks.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }

    /// The underlying subscriber table, for migration.
    pub fn as_subscriber_table(&self) -> &SubscriberTable<F> {
        &self.table
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use upbound_net::{FiveTuple, Protocol, TcpFlags};

    fn pkt(src: &str, dst: &str, t: f64) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(t),
            FiveTuple::new(Protocol::Tcp, src.parse().unwrap(), dst.parse().unwrap()),
            TcpFlags::ACK,
            &[][..],
        )
    }

    fn bank() -> MultiNetworkFilter {
        let mut bank = MultiNetworkFilter::new();
        bank.add_network(
            "10.1.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank.add_network(
            "10.2.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank
    }

    #[test]
    fn each_network_has_independent_state() {
        let mut bank = bank();
        // Client in network 1 talks out.
        bank.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        // The response is admitted in network 1 …
        assert_eq!(
            bank.process_packet(&pkt("198.51.100.9:80", "10.1.0.5:4000", 1.1)),
            Verdict::Pass
        );
        // … but the same remote hitting network 2 is unsolicited.
        assert_eq!(
            bank.process_packet(&pkt("198.51.100.9:80", "10.2.0.5:4000", 1.2)),
            Verdict::Drop
        );
    }

    #[test]
    fn inter_network_traffic_is_never_dropped() {
        let mut bank = bank();
        assert_eq!(
            bank.process_packet(&pkt("10.1.0.5:4000", "10.2.0.7:6881", 1.0)),
            Verdict::Pass
        );
    }

    #[test]
    fn transit_traffic_passes_untouched() {
        let mut bank = bank();
        assert_eq!(
            bank.process_packet(&pkt("192.0.2.1:80", "198.51.100.2:81", 1.0)),
            Verdict::Pass
        );
        let stats = bank.stats();
        assert!(stats
            .iter()
            .all(|(_, s)| s.inbound_packets == 0 && s.outbound_packets == 0));
    }

    #[test]
    fn stats_and_memory_aggregate() {
        let config = BitmapFilterConfig::paper_evaluation();
        let mut bank = bank();
        bank.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        bank.process_packet(&pkt("198.51.100.9:80", "10.2.0.5:4000", 1.0));
        let stats = bank.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.outbound_packets, 1);
        assert_eq!(stats[1].1.inbound_packets, 1);
        // Both members are eagerly resident; expected size derives from
        // the configuration they were built with.
        assert_eq!(bank.memory_bytes(), 2 * config.memory_bytes());
        assert_eq!(bank.len(), 2);
        assert!(!bank.is_empty());
        // The fold view agrees with the per-network view.
        let merged = bank.merged_stats();
        assert_eq!(merged.outbound_packets, 1);
        assert_eq!(merged.inbound_packets, 1);
    }

    #[test]
    fn advance_rotates_every_member() {
        let mut bank = bank();
        bank.advance(Timestamp::from_secs(12.0));
        for (_, s) in bank.stats() {
            assert_eq!(s.rotations, 2);
        }
    }

    #[test]
    fn empty_bank_passes_everything() {
        let mut bank: MultiNetworkFilter = MultiNetworkFilter::new();
        assert!(bank.is_empty());
        assert_eq!(
            bank.process_packet(&pkt("1.2.3.4:1", "5.6.7.8:2", 0.0)),
            Verdict::Pass
        );
    }

    #[test]
    fn overlapping_prefixes_resolve_to_most_specific() {
        // Registration order no longer matters: the /24 wins over the
        // /16 even though it is registered second.
        let mut bank = MultiNetworkFilter::new();
        bank.add_network(
            "10.1.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank.add_network(
            "10.1.7.0/24".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank.process_packet(&pkt("10.1.7.5:4000", "198.51.100.9:80", 1.0));
        let stats = bank.stats();
        assert_eq!(stats[0].1.outbound_packets, 0);
        assert_eq!(stats[1].1.outbound_packets, 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_prefix_panics() {
        let mut bank = MultiNetworkFilter::new();
        bank.add_network(
            "10.1.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank.add_network(
            "10.1.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
    }

    #[test]
    fn bank_accepts_sharded_members() {
        use crate::ShardedFilter;
        let mut bank: MultiNetworkFilter<ShardedFilter> = MultiNetworkFilter::new();
        bank.add_network_filter(
            "10.1.0.0/16".parse().unwrap(),
            ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
                .shards(2)
                .build()
                .unwrap(),
        );
        bank.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        assert_eq!(
            bank.process_packet(&pkt("198.51.100.9:80", "10.1.0.5:4000", 1.1)),
            Verdict::Pass
        );
        assert_eq!(bank.merged_stats().outbound_packets, 1);
    }
}
