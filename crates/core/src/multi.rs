//! Multi-network deployment: one filter instance per client network on
//! an aggregating core router.
//!
//! The paper's Figure 6 shows bitmap filters installed either on edge
//! routers (one client network each) or on core routers that aggregate
//! "two or more client networks". [`MultiNetworkFilter`] is that core
//! deployment: it classifies each packet to the client network it
//! belongs to and drives that network's own [`PacketFilter`] — so each
//! network gets its own throughput policy and its own filter state, and
//! traffic *between* two monitored networks is treated as outbound from
//! its source network (never dropped, matching the positive-listing
//! intent).

use crate::pfilter::{MergeStats, PacketFilter};
use crate::{BitmapFilter, BitmapFilterConfig, Verdict};
use upbound_net::{Cidr, Direction, Packet, Timestamp};

/// A bank of per-client-network filters for an aggregation point.
///
/// Generic over any [`PacketFilter`]; defaults to the bitmap filter.
/// Use [`add_network`](Self::add_network) for the common bitmap case or
/// [`add_network_filter`](Self::add_network_filter) to install any
/// pre-built filter (an SPI baseline, a
/// [`ShardedFilter`](crate::ShardedFilter), …).
///
/// # Examples
///
/// ```
/// use upbound_core::{MultiNetworkFilter, BitmapFilterConfig, Verdict};
/// use upbound_net::{FiveTuple, Packet, Protocol, TcpFlags, Timestamp};
///
/// let mut bank = MultiNetworkFilter::new();
/// bank.add_network("10.1.0.0/16".parse()?, BitmapFilterConfig::paper_evaluation());
/// bank.add_network("10.2.0.0/16".parse()?, BitmapFilterConfig::paper_evaluation());
///
/// // An unsolicited inbound SYN toward network 1 is dropped there …
/// let pkt = Packet::tcp(
///     Timestamp::from_secs(1.0),
///     FiveTuple::new(
///         Protocol::Tcp,
///         "198.51.100.2:4000".parse()?,
///         "10.1.0.9:6881".parse()?,
///     ),
///     TcpFlags::SYN,
///     &[][..],
/// );
/// assert_eq!(bank.process_packet(&pkt), Verdict::Drop);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiNetworkFilter<F: PacketFilter = BitmapFilter> {
    networks: Vec<(Cidr, F)>,
}

impl<F: PacketFilter> Default for MultiNetworkFilter<F> {
    fn default() -> Self {
        Self {
            networks: Vec::new(),
        }
    }
}

impl MultiNetworkFilter<BitmapFilter> {
    /// Registers a client network with its own bitmap-filter
    /// configuration.
    ///
    /// Networks are matched in registration order; register more-specific
    /// prefixes first if they overlap.
    pub fn add_network(&mut self, network: Cidr, config: BitmapFilterConfig) -> &mut Self {
        self.add_network_filter(network, BitmapFilter::new(config))
    }
}

impl<F: PacketFilter> MultiNetworkFilter<F> {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a client network served by a pre-built filter.
    ///
    /// Networks are matched in registration order; register more-specific
    /// prefixes first if they overlap.
    pub fn add_network_filter(&mut self, network: Cidr, filter: F) -> &mut Self {
        self.networks.push((network, filter));
        self
    }

    /// Number of registered networks.
    pub fn len(&self) -> usize {
        self.networks.len()
    }

    /// `true` when no networks are registered.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
    }

    /// The network a source/destination address belongs to, if any.
    fn network_of(&self, addr: std::net::Ipv4Addr) -> Option<usize> {
        self.networks.iter().position(|(net, _)| net.contains(addr))
    }

    /// Processes one packet at the aggregation point.
    ///
    /// * Source inside a monitored network → outbound for that network:
    ///   mark + measure, always pass (even if the destination is another
    ///   monitored network — inter-network traffic is client-initiated
    ///   from somewhere).
    /// * Otherwise, destination inside a monitored network → inbound for
    ///   that network: look up + RED-drop.
    /// * Transit traffic touching no monitored network passes untouched.
    pub fn process_packet(&mut self, packet: &Packet) -> Verdict {
        let tuple = packet.tuple();
        if let Some(i) = self.network_of(*tuple.src().ip()) {
            let verdict = self.networks[i].1.decide(packet, Direction::Outbound);
            // If the destination is also monitored, let its filter learn
            // nothing (the packet is inbound there) but never drop
            // intra-ISP traffic that a client initiated.
            debug_assert_eq!(verdict, Verdict::Pass);
            return verdict;
        }
        if let Some(i) = self.network_of(*tuple.dst().ip()) {
            return self.networks[i].1.decide(packet, Direction::Inbound);
        }
        Verdict::Pass // transit
    }

    /// Applies due timer events on every member filter.
    pub fn advance(&mut self, now: Timestamp) {
        for (_, filter) in &mut self.networks {
            filter.advance(now);
        }
    }

    /// Per-network statistics, in registration order.
    pub fn stats(&self) -> Vec<(Cidr, F::Stats)> {
        self.networks
            .iter()
            .map(|(net, f)| (*net, f.stats()))
            .collect()
    }

    /// All member statistics folded into one aggregate (see
    /// [`MergeStats::merge`] for the fold semantics).
    pub fn merged_stats(&self) -> F::Stats {
        let mut merged = F::Stats::default();
        for (_, f) in &self.networks {
            merged.merge(&f.stats());
        }
        merged
    }

    /// Total filter memory across all networks.
    pub fn memory_bytes(&self) -> usize {
        self.networks.iter().map(|(_, f)| f.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_net::{FiveTuple, Protocol, TcpFlags};

    fn pkt(src: &str, dst: &str, t: f64) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(t),
            FiveTuple::new(Protocol::Tcp, src.parse().unwrap(), dst.parse().unwrap()),
            TcpFlags::ACK,
            &[][..],
        )
    }

    fn bank() -> MultiNetworkFilter {
        let mut bank = MultiNetworkFilter::new();
        bank.add_network(
            "10.1.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank.add_network(
            "10.2.0.0/16".parse().unwrap(),
            BitmapFilterConfig::paper_evaluation(),
        );
        bank
    }

    #[test]
    fn each_network_has_independent_state() {
        let mut bank = bank();
        // Client in network 1 talks out.
        bank.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        // The response is admitted in network 1 …
        assert_eq!(
            bank.process_packet(&pkt("198.51.100.9:80", "10.1.0.5:4000", 1.1)),
            Verdict::Pass
        );
        // … but the same remote hitting network 2 is unsolicited.
        assert_eq!(
            bank.process_packet(&pkt("198.51.100.9:80", "10.2.0.5:4000", 1.2)),
            Verdict::Drop
        );
    }

    #[test]
    fn inter_network_traffic_is_never_dropped() {
        let mut bank = bank();
        assert_eq!(
            bank.process_packet(&pkt("10.1.0.5:4000", "10.2.0.7:6881", 1.0)),
            Verdict::Pass
        );
    }

    #[test]
    fn transit_traffic_passes_untouched() {
        let mut bank = bank();
        assert_eq!(
            bank.process_packet(&pkt("192.0.2.1:80", "198.51.100.2:81", 1.0)),
            Verdict::Pass
        );
        let stats = bank.stats();
        assert!(stats
            .iter()
            .all(|(_, s)| s.inbound_packets == 0 && s.outbound_packets == 0));
    }

    #[test]
    fn stats_and_memory_aggregate() {
        let mut bank = bank();
        bank.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        bank.process_packet(&pkt("198.51.100.9:80", "10.2.0.5:4000", 1.0));
        let stats = bank.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.outbound_packets, 1);
        assert_eq!(stats[1].1.inbound_packets, 1);
        assert_eq!(bank.memory_bytes(), 2 * 512 * 1024);
        assert_eq!(bank.len(), 2);
        assert!(!bank.is_empty());
        // The fold view agrees with the per-network view.
        let merged = bank.merged_stats();
        assert_eq!(merged.outbound_packets, 1);
        assert_eq!(merged.inbound_packets, 1);
    }

    #[test]
    fn advance_rotates_every_member() {
        let mut bank = bank();
        bank.advance(Timestamp::from_secs(12.0));
        for (_, s) in bank.stats() {
            assert_eq!(s.rotations, 2);
        }
    }

    #[test]
    fn empty_bank_passes_everything() {
        let mut bank: MultiNetworkFilter = MultiNetworkFilter::new();
        assert!(bank.is_empty());
        assert_eq!(
            bank.process_packet(&pkt("1.2.3.4:1", "5.6.7.8:2", 0.0)),
            Verdict::Pass
        );
    }

    #[test]
    fn bank_accepts_sharded_members() {
        use crate::ShardedFilter;
        let mut bank: MultiNetworkFilter<ShardedFilter> = MultiNetworkFilter::new();
        bank.add_network_filter(
            "10.1.0.0/16".parse().unwrap(),
            ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
                .shards(2)
                .build()
                .unwrap(),
        );
        bank.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        assert_eq!(
            bank.process_packet(&pkt("198.51.100.9:80", "10.1.0.5:4000", 1.1)),
            Verdict::Pass
        );
        assert_eq!(bank.merged_stats().outbound_packets, 1);
    }
}
