//! A thread-safe handle for driving one bitmap filter from several
//! threads (e.g. per-NIC-queue workers plus a timer thread).

use crate::{BitmapFilter, BitmapFilterConfig, FilterStats, Verdict};
use parking_lot::Mutex;
use std::sync::Arc;
use upbound_net::{Direction, FiveTuple, Packet, Timestamp};

/// A cloneable, `Send + Sync` handle to a [`BitmapFilter`].
///
/// All operations take a short critical section under a [`parking_lot`]
/// mutex; the underlying per-packet work is O(m) bit operations, so
/// contention stays low even with many worker threads. A deployment
/// would typically run packet workers calling
/// [`process_packet`](Self::process_packet) and one timer thread calling
/// [`advance`](Self::advance) every `Δt`.
///
/// # Examples
///
/// ```
/// use upbound_core::{SharedBitmapFilter, BitmapFilterConfig, Verdict};
/// use upbound_net::{Direction, FiveTuple, Protocol, Packet, TcpFlags, Timestamp};
///
/// let shared = SharedBitmapFilter::new(BitmapFilterConfig::paper_evaluation());
/// let worker = shared.clone();
///
/// let conn = FiveTuple::new(
///     Protocol::Tcp,
///     "10.0.0.1:9999".parse()?,
///     "192.0.2.1:80".parse()?,
/// );
/// let pkt = Packet::tcp(Timestamp::ZERO, conn, TcpFlags::SYN, &[][..]);
/// assert_eq!(worker.process_packet(&pkt, Direction::Outbound), Verdict::Pass);
/// assert_eq!(shared.stats().outbound_packets, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedBitmapFilter {
    inner: Arc<Mutex<BitmapFilter>>,
}

impl SharedBitmapFilter {
    /// Creates a shared filter from a configuration.
    pub fn new(config: BitmapFilterConfig) -> Self {
        Self::from_filter(BitmapFilter::new(config))
    }

    /// Wraps an existing filter.
    pub fn from_filter(filter: BitmapFilter) -> Self {
        Self {
            inner: Arc::new(Mutex::new(filter)),
        }
    }

    /// See [`BitmapFilter::process_packet`].
    pub fn process_packet(&self, packet: &Packet, direction: Direction) -> Verdict {
        self.inner.lock().process_packet(packet, direction)
    }

    /// See [`BitmapFilter::observe_outbound`].
    pub fn observe_outbound(&self, tuple: &FiveTuple, now: Timestamp) {
        self.inner.lock().observe_outbound(tuple, now);
    }

    /// See [`BitmapFilter::check_inbound`].
    pub fn check_inbound(&self, tuple: &FiveTuple, now: Timestamp, p_d: f64) -> Verdict {
        self.inner.lock().check_inbound(tuple, now, p_d)
    }

    /// See [`BitmapFilter::advance`] — intended for a timer thread.
    pub fn advance(&self, now: Timestamp) {
        self.inner.lock().advance(now);
    }

    /// Snapshot of the running counters.
    pub fn stats(&self) -> FilterStats {
        self.inner.lock().stats()
    }

    /// Memory of the underlying bitmap in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner.lock().memory_bytes()
    }

    /// Runs `f` with exclusive access to the underlying filter.
    pub fn with<R>(&self, f: impl FnOnce(&mut BitmapFilter) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use upbound_net::Protocol;

    fn shared() -> SharedBitmapFilter {
        SharedBitmapFilter::new(BitmapFilterConfig::paper_evaluation())
    }

    fn tuple(host: u8, port: u16) -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            format!("10.0.0.{host}:{port}").parse().unwrap(),
            "192.0.2.1:80".parse().unwrap(),
        )
    }

    #[test]
    fn handle_is_send_sync_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedBitmapFilter>();
    }

    #[test]
    fn concurrent_marks_are_all_visible() {
        let shared = shared();
        let threads: Vec<_> = (0..4u8)
            .map(|h| {
                let handle = shared.clone();
                thread::spawn(move || {
                    for port in 1000..1100u16 {
                        handle.observe_outbound(&tuple(h, port), Timestamp::ZERO);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(shared.stats().outbound_packets, 400);
        // Every mark is visible to subsequent inbound checks.
        for h in 0..4u8 {
            for port in 1000..1100u16 {
                assert_eq!(
                    shared.check_inbound(&tuple(h, port).inverse(), Timestamp::ZERO, 1.0),
                    Verdict::Pass
                );
            }
        }
    }

    #[test]
    fn timer_thread_pattern_rotates() {
        let shared = shared();
        let timer = shared.clone();
        let t = thread::spawn(move || {
            for step in 1..=4u64 {
                timer.advance(Timestamp::from_secs(step as f64 * 5.0));
            }
        });
        t.join().unwrap();
        assert_eq!(shared.stats().rotations, 4);
    }

    #[test]
    fn with_gives_exclusive_access() {
        let shared = shared();
        let mem = shared.with(|f| f.memory_bytes());
        assert_eq!(mem, 512 * 1024);
        assert_eq!(shared.memory_bytes(), mem);
    }
}
