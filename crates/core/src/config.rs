//! Bitmap-filter configuration and builder.

use crate::DropPolicy;
use serde::{Deserialize, Serialize};
use std::fmt;
use upbound_net::TimeDelta;

/// Error validating a [`BitmapFilterConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `vectors` (k) must be at least 2.
    TooFewVectors(usize),
    /// `vector_bits` (n) must be in `1..=32`.
    BadVectorBits(u32),
    /// `hash_functions` (m) must be at least 1.
    NoHashFunctions,
    /// `rotate_every` (Δt) must be positive.
    ZeroRotateInterval,
    /// Drop-policy thresholds must satisfy `0 ≤ L < H`.
    BadThresholds {
        /// The offending lower threshold.
        low_bps: f64,
        /// The offending upper threshold.
        high_bps: f64,
    },
    /// A sharded filter needs at least one shard.
    ZeroShards,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewVectors(k) => {
                write!(f, "bitmap needs at least 2 bit vectors, got {k}")
            }
            ConfigError::BadVectorBits(n) => {
                write!(f, "vector_bits must be in 1..=32, got {n}")
            }
            ConfigError::NoHashFunctions => write!(f, "need at least one hash function"),
            ConfigError::ZeroRotateInterval => write!(f, "rotate interval must be positive"),
            ConfigError::BadThresholds { low_bps, high_bps } => write!(
                f,
                "drop thresholds must satisfy 0 <= L < H, got L={low_bps} H={high_bps}"
            ),
            ConfigError::ZeroShards => write!(f, "need at least one shard"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// What a filter does with a would-be drop while its memory is cold.
///
/// After a restart the bitmap is empty, so every inbound packet of an
/// established flow looks unsolicited until the filter has re-observed
/// one full expiry window `T_e = k·Δt` of outbound traffic — the
/// false-positive regime the paper's §4 works to avoid. `FailMode`
/// decides whether that window punishes users:
///
/// * [`Closed`](FailMode::Closed) (default): drops apply immediately —
///   the paper's behavior, right for evaluation and for deployments
///   that prioritize bounding over availability.
/// * [`Open`](FailMode::Open): a cold filter passes everything until it
///   has observed `T_e` of trace time (one full rotation cycle), then
///   arms. Suppressed drops are counted, not silently lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailMode {
    /// Drop verdicts apply from the first packet, cold memory or not.
    #[default]
    Closed,
    /// Suppress drops until one expiry window of trace time has passed
    /// since the (re)start, then arm.
    Open,
}

impl FailMode {
    /// Parses the CLI spelling (`"open"` / `"closed"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "open" => Some(FailMode::Open),
            "closed" => Some(FailMode::Closed),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            FailMode::Open => "open",
            FailMode::Closed => "closed",
        }
    }
}

/// Complete configuration of a [`BitmapFilter`](crate::BitmapFilter).
///
/// Built with [`BitmapFilterConfig::builder`]; see the paper's §4.3 for
/// parameter guidance (`T_e = k·Δt` should stay below ~60 s to avoid
/// port-reuse false positives; `Δt` of 4–5 s is appropriate; `n` trades
/// memory for penetration probability; Eq. 5 gives the optimal `m`).
///
/// # Examples
///
/// ```
/// use upbound_core::BitmapFilterConfig;
///
/// let config = BitmapFilterConfig::builder()
///     .vector_bits(20)
///     .vectors(4)
///     .rotate_every_secs(5.0)
///     .hash_functions(3)
///     .build()?;
/// assert_eq!(config.expiry_timer().as_secs_f64(), 20.0);
/// assert_eq!(config.memory_bytes(), 512 * 1024);
/// # Ok::<(), upbound_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitmapFilterConfig {
    pub(crate) vector_bits: u32,
    pub(crate) vectors: usize,
    pub(crate) hash_functions: usize,
    pub(crate) rotate_every: TimeDelta,
    pub(crate) hole_punching: bool,
    pub(crate) drop_policy: DropPolicy,
    pub(crate) rng_seed: u64,
    pub(crate) fail_mode: FailMode,
}

impl BitmapFilterConfig {
    /// Starts a builder with the paper's §4.3 recommended defaults:
    /// `n = 20`, `k = 4`, `m = 3`, `Δt = 5 s`, hole punching off,
    /// drop-all policy, seed 0.
    pub fn builder() -> BitmapFilterConfigBuilder {
        BitmapFilterConfigBuilder::default()
    }

    /// The configuration of the paper's §5.3 simulations: a 512 KiB
    /// `{4 × 2^20}` bitmap, `Δt = 5 s` (`T_e = 20 s`), 3 hash functions,
    /// dropping every unknown inbound packet.
    pub fn paper_evaluation() -> Self {
        match Self::builder().build() {
            Ok(config) => config,
            Err(_) => unreachable!("the paper configuration is valid by construction"),
        }
    }

    /// The Figure 9 limiter setup: paper evaluation parameters with the
    /// RED policy `L = 50 Mbps`, `H = 100 Mbps`.
    pub fn paper_limiter() -> Self {
        match Self::builder()
            .drop_policy(DropPolicy::paper_figure9())
            .build()
        {
            Ok(config) => config,
            Err(_) => unreachable!("the paper configuration is valid by construction"),
        }
    }

    /// Bit-vector size exponent `n` (each vector has `2^n` bits).
    pub fn vector_bits(&self) -> u32 {
        self.vector_bits
    }

    /// Number of bit vectors `k`.
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Number of hash functions `m`.
    pub fn hash_functions(&self) -> usize {
        self.hash_functions
    }

    /// The rotation period `Δt`.
    pub fn rotate_every(&self) -> TimeDelta {
        self.rotate_every
    }

    /// Whether hash keys omit the remote port (hole-punching support).
    pub fn hole_punching(&self) -> bool {
        self.hole_punching
    }

    /// The RED-style drop policy (Equation 1).
    pub fn drop_policy(&self) -> DropPolicy {
        self.drop_policy
    }

    /// Seed for the drop-decision RNG (deterministic replay).
    pub fn rng_seed(&self) -> u64 {
        self.rng_seed
    }

    /// What a cold-memory filter does with would-be drops.
    pub fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }

    /// Returns this configuration with a different [`FailMode`].
    ///
    /// Used by the shard supervisor, which rebuilds a quarantined shard
    /// fail-open so the rebuilt (empty) memory never falsely drops
    /// while it warms back up.
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// The mark expiry timer `T_e = k·Δt` (§4.3).
    pub fn expiry_timer(&self) -> TimeDelta {
        self.rotate_every.times(self.vectors as u64)
    }

    /// Bitmap storage: `(k × 2^n)/8` bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vectors * (1usize << self.vector_bits) / 8
    }

    /// The uplink [`ThroughputMonitor`](crate::ThroughputMonitor) a
    /// filter built from this configuration measures `P_d` with:
    /// one-second slots spanning one expiry timer `T_e` (at least one
    /// slot). Shards of a [`ShardedFilter`](crate::ShardedFilter) share
    /// a single such monitor so the policy sees the aggregate rate.
    pub fn uplink_monitor(&self) -> crate::ThroughputMonitor {
        let slots = (self.expiry_timer().as_secs_f64().ceil() as usize).max(1);
        crate::ThroughputMonitor::new(TimeDelta::from_secs(1.0), slots)
    }
}

/// Builder for [`BitmapFilterConfig`].
#[derive(Debug, Clone)]
pub struct BitmapFilterConfigBuilder {
    vector_bits: u32,
    vectors: usize,
    hash_functions: usize,
    rotate_every: TimeDelta,
    hole_punching: bool,
    drop_policy: DropPolicy,
    rng_seed: u64,
    fail_mode: FailMode,
}

impl Default for BitmapFilterConfigBuilder {
    fn default() -> Self {
        Self {
            vector_bits: 20,
            vectors: 4,
            hash_functions: 3,
            rotate_every: TimeDelta::from_secs(5.0),
            hole_punching: false,
            drop_policy: DropPolicy::drop_all(),
            rng_seed: 0,
            fail_mode: FailMode::Closed,
        }
    }
}

impl BitmapFilterConfigBuilder {
    /// Sets `n`: each bit vector holds `2^n` bits.
    pub fn vector_bits(&mut self, n: u32) -> &mut Self {
        self.vector_bits = n;
        self
    }

    /// Sets `k`, the number of bit vectors.
    pub fn vectors(&mut self, k: usize) -> &mut Self {
        self.vectors = k;
        self
    }

    /// Sets `m`, the number of hash functions.
    pub fn hash_functions(&mut self, m: usize) -> &mut Self {
        self.hash_functions = m;
        self
    }

    /// Sets the rotation period `Δt`.
    pub fn rotate_every(&mut self, dt: TimeDelta) -> &mut Self {
        self.rotate_every = dt;
        self
    }

    /// Sets `Δt` in seconds (convenience).
    pub fn rotate_every_secs(&mut self, secs: f64) -> &mut Self {
        self.rotate_every = TimeDelta::from_secs(secs);
        self
    }

    /// Enables or disables hole-punching key derivation (§4.2).
    pub fn hole_punching(&mut self, enabled: bool) -> &mut Self {
        self.hole_punching = enabled;
        self
    }

    /// Sets the drop policy (Equation 1 thresholds).
    pub fn drop_policy(&mut self, policy: DropPolicy) -> &mut Self {
        self.drop_policy = policy;
        self
    }

    /// Sets the seed of the drop-decision RNG.
    pub fn rng_seed(&mut self, seed: u64) -> &mut Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the cold-memory behavior (default [`FailMode::Closed`]).
    pub fn fail_mode(&mut self, mode: FailMode) -> &mut Self {
        self.fail_mode = mode;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`] bound.
    pub fn build(&self) -> Result<BitmapFilterConfig, ConfigError> {
        if self.vectors < 2 {
            return Err(ConfigError::TooFewVectors(self.vectors));
        }
        if !(1..=32).contains(&self.vector_bits) {
            return Err(ConfigError::BadVectorBits(self.vector_bits));
        }
        if self.hash_functions == 0 {
            return Err(ConfigError::NoHashFunctions);
        }
        if self.rotate_every.is_zero() {
            return Err(ConfigError::ZeroRotateInterval);
        }
        Ok(BitmapFilterConfig {
            vector_bits: self.vector_bits,
            vectors: self.vectors,
            hash_functions: self.hash_functions,
            rotate_every: self.rotate_every,
            hole_punching: self.hole_punching,
            drop_policy: self.drop_policy,
            rng_seed: self.rng_seed,
            fail_mode: self.fail_mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = BitmapFilterConfig::paper_evaluation();
        assert_eq!(c.vector_bits(), 20);
        assert_eq!(c.vectors(), 4);
        assert_eq!(c.hash_functions(), 3);
        assert_eq!(c.rotate_every(), TimeDelta::from_secs(5.0));
        assert_eq!(c.expiry_timer(), TimeDelta::from_secs(20.0));
        assert_eq!(c.memory_bytes(), 512 * 1024);
        assert!(!c.hole_punching());
        assert_eq!(c.drop_policy().drop_probability(0.0), 1.0);
    }

    #[test]
    fn limiter_preset_uses_figure9_policy() {
        let c = BitmapFilterConfig::paper_limiter();
        assert_eq!(c.drop_policy().low_bps(), 50e6);
        assert_eq!(c.drop_policy().high_bps(), 100e6);
    }

    #[test]
    fn builder_setters_apply() {
        let c = BitmapFilterConfig::builder()
            .vector_bits(16)
            .vectors(8)
            .hash_functions(5)
            .rotate_every_secs(2.5)
            .hole_punching(true)
            .rng_seed(99)
            .build()
            .unwrap();
        assert_eq!(c.vector_bits(), 16);
        assert_eq!(c.vectors(), 8);
        assert_eq!(c.hash_functions(), 5);
        assert_eq!(c.rotate_every(), TimeDelta::from_secs(2.5));
        assert!(c.hole_punching());
        assert_eq!(c.rng_seed(), 99);
        assert_eq!(c.expiry_timer(), TimeDelta::from_secs(20.0));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert_eq!(
            BitmapFilterConfig::builder().vectors(1).build(),
            Err(ConfigError::TooFewVectors(1))
        );
        assert_eq!(
            BitmapFilterConfig::builder().vector_bits(0).build(),
            Err(ConfigError::BadVectorBits(0))
        );
        assert_eq!(
            BitmapFilterConfig::builder().vector_bits(40).build(),
            Err(ConfigError::BadVectorBits(40))
        );
        assert_eq!(
            BitmapFilterConfig::builder().hash_functions(0).build(),
            Err(ConfigError::NoHashFunctions)
        );
        assert_eq!(
            BitmapFilterConfig::builder()
                .rotate_every(TimeDelta::ZERO)
                .build(),
            Err(ConfigError::ZeroRotateInterval)
        );
    }

    #[test]
    fn fail_mode_defaults_closed_and_parses() {
        assert_eq!(
            BitmapFilterConfig::paper_evaluation().fail_mode(),
            FailMode::Closed
        );
        let open = BitmapFilterConfig::builder()
            .fail_mode(FailMode::Open)
            .build()
            .unwrap();
        assert_eq!(open.fail_mode(), FailMode::Open);
        assert_eq!(FailMode::parse("open"), Some(FailMode::Open));
        assert_eq!(FailMode::parse("closed"), Some(FailMode::Closed));
        assert_eq!(FailMode::parse("ajar"), None);
        assert_eq!(FailMode::Open.label(), "open");
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ConfigError::TooFewVectors(1).to_string().contains('1'));
        assert!(ConfigError::BadVectorBits(40).to_string().contains("40"));
        let e = ConfigError::BadThresholds {
            low_bps: 5.0,
            high_bps: 1.0,
        };
        assert!(e.to_string().contains("L=5"));
    }
}
