//! Multi-tenant subscriber engine: longest-prefix-match dispatch, a
//! shared bit-vector arena, per-tenant `P_d` controllers and
//! incremental checkpoints.
//!
//! The paper's Figure 6 installs one bitmap filter per client network.
//! An ISP aggregation point serves thousands of *subscriber* networks,
//! most of them idle at any instant. [`SubscriberTable`] scales the
//! multi-network deployment to that regime:
//!
//! * **LPM dispatch** — a binary trie ([`LpmTrie`]) maps an address to
//!   its subscriber in O(32) regardless of how many prefixes are
//!   provisioned, replacing the linear scan (and the "register
//!   more-specific prefixes first" footgun) of the since-removed
//!   `MultiNetworkFilter`.
//! * **Lazy activation + idle eviction** — a tenant's filter is
//!   materialized on its first packet and its bit storage is recycled
//!   through a shared arena once the tenant has been idle for a full
//!   expiry window, so resident memory is O(active subscribers), not
//!   O(provisioned). Eviction is *verdict-lossless*: after `T_e` of
//!   idleness every mark has expired, so a reactivated tenant behaves
//!   bit-for-bit like one that was never evicted.
//! * **Per-tenant controllers** — every subscriber carries its own
//!   [`ThroughputMonitor`](crate::ThroughputMonitor) and RED-style drop
//!   policy via its own [`BitmapFilterConfig`], so each tenant gets its
//!   own upload bound.
//! * **Incremental checkpoints** — a full snapshot (kind 3) serializes
//!   every tenant; a delta snapshot (kind 4) re-serializes only the
//!   tenants touched since the previous checkpoint, scaling checkpoint
//!   cost to thousands of tenants.

use crate::config::BitmapFilterConfig;
use crate::pfilter::{MergeStats, PacketFilter};
use crate::snapshot::{
    decode_container, encode_container, ByteReader, ByteWriter, RestoreMode, RestoreOutcome,
    SnapshotError, Snapshottable,
};
use crate::{BitmapFilter, FilterStats, Verdict};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use upbound_net::{Cidr, Direction, Packet, TimeDelta, Timestamp};
use upbound_telemetry::Registry;

/// Container kind of an incremental (dirty-tenants-only) subscriber
/// checkpoint produced by [`SubscriberTable::delta_bytes`].
pub const SUBSCRIBER_DELTA_KIND: u32 = 4;

const NO_NODE: u32 = u32::MAX;
const NO_VALUE: u32 = u32::MAX;

/// Errors from provisioning a [`SubscriberTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubscriberError {
    /// The exact prefix is already registered to another subscriber.
    DuplicatePrefix(Cidr),
    /// The subscriber id space (`u32`) is exhausted.
    TooManySubscribers,
}

impl fmt::Display for SubscriberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscriberError::DuplicatePrefix(c) => {
                write!(f, "prefix {c} is already registered to another subscriber")
            }
            SubscriberError::TooManySubscribers => write!(f, "subscriber id space exhausted"),
        }
    }
}

impl std::error::Error for SubscriberError {}

/// A binary trie over IPv4 prefixes resolving an address to the
/// longest (most specific) registered prefix's value.
///
/// Lookup walks at most 32 nodes, independent of how many prefixes are
/// registered — the property that keeps [`SubscriberTable`] dispatch
/// sub-linear in provisioned tenants.
///
/// # Examples
///
/// ```
/// use upbound_core::LpmTrie;
///
/// let mut trie = LpmTrie::new();
/// trie.insert("10.0.0.0/8".parse()?, 0)?;
/// trie.insert("10.1.0.0/16".parse()?, 1)?;
/// assert_eq!(trie.lookup("10.1.2.3".parse()?), Some(1)); // most specific
/// assert_eq!(trie.lookup("10.9.0.1".parse()?), Some(0));
/// assert_eq!(trie.lookup("192.0.2.1".parse()?), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LpmTrie {
    children: Vec<[u32; 2]>,
    values: Vec<u32>,
    prefixes: usize,
}

impl Default for LpmTrie {
    fn default() -> Self {
        LpmTrie::new()
    }
}

impl LpmTrie {
    /// An empty trie.
    pub fn new() -> Self {
        Self {
            children: vec![[NO_NODE; 2]],
            values: vec![NO_VALUE],
            prefixes: 0,
        }
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.prefixes
    }

    /// `true` when no prefix is registered.
    pub fn is_empty(&self) -> bool {
        self.prefixes == 0
    }

    /// Registers `prefix → value`. Overlapping prefixes are fine (the
    /// most specific wins at lookup); registering the *same* prefix
    /// twice is an error.
    ///
    /// # Errors
    ///
    /// [`SubscriberError::DuplicatePrefix`] when the exact prefix is
    /// already present; [`SubscriberError::TooManySubscribers`] when
    /// `value` is the reserved sentinel `u32::MAX`.
    pub fn insert(&mut self, prefix: Cidr, value: u32) -> Result<(), SubscriberError> {
        if value == NO_VALUE {
            return Err(SubscriberError::TooManySubscribers);
        }
        let bits = u32::from(prefix.base());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            let branch = ((bits >> (31 - depth)) & 1) as usize;
            let next = self.children[node][branch];
            node = if next == NO_NODE {
                let fresh = self.children.len() as u32;
                self.children.push([NO_NODE; 2]);
                self.values.push(NO_VALUE);
                self.children[node][branch] = fresh;
                fresh as usize
            } else {
                next as usize
            };
        }
        if self.values[node] != NO_VALUE {
            return Err(SubscriberError::DuplicatePrefix(prefix));
        }
        self.values[node] = value;
        self.prefixes += 1;
        Ok(())
    }

    /// The value of the longest registered prefix containing `addr`,
    /// if any.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<u32> {
        let bits = u32::from(addr);
        let mut node = 0usize;
        let mut best = self.values[0];
        for depth in 0..32 {
            let branch = ((bits >> (31 - depth)) & 1) as usize;
            let next = self.children[node][branch];
            if next == NO_NODE {
                break;
            }
            node = next as usize;
            if self.values[node] != NO_VALUE {
                best = self.values[node];
            }
        }
        (best != NO_VALUE).then_some(best)
    }
}

/// Pool of zeroed bit-vector word buffers recycled between tenants,
/// keyed by buffer size in words.
#[derive(Debug, Clone, Default)]
struct BitVecArena {
    pools: HashMap<usize, Vec<Vec<u64>>>,
    pooled_bytes: usize,
    reuses: u64,
    fresh_allocations: u64,
}

impl BitVecArena {
    fn take(&mut self, words: usize) -> Vec<u64> {
        if let Some(buf) = self.pools.get_mut(&words).and_then(Vec::pop) {
            self.pooled_bytes -= words * 8;
            self.reuses += 1;
            buf
        } else {
            self.fresh_allocations += 1;
            vec![0; words]
        }
    }

    fn put(&mut self, mut buf: Vec<u64>) {
        if buf.is_empty() {
            return;
        }
        buf.fill(0);
        self.pooled_bytes += buf.len() * 8;
        self.pools.entry(buf.len()).or_default().push(buf);
    }
}

/// Function table for parking/unparking a tenant filter's bit storage
/// through the arena. Present only for filter types that support it
/// (today: [`BitmapFilter`]); tables built from pre-constructed filters
/// run eagerly without eviction.
struct ArenaOps<F> {
    new_parked: fn(BitmapFilterConfig) -> F,
    park: fn(&mut F) -> Vec<Vec<u64>>,
    unpark: fn(&mut F, Vec<Vec<u64>>),
    is_parked: fn(&F) -> bool,
    /// `(buffer count, words per buffer)` of a filter's storage.
    geometry: fn(&F) -> (usize, usize),
}

impl<F> Clone for ArenaOps<F> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<F> Copy for ArenaOps<F> {}

impl<F> fmt::Debug for ArenaOps<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ArenaOps")
    }
}

fn bitmap_arena_ops() -> ArenaOps<BitmapFilter> {
    ArenaOps {
        new_parked: BitmapFilter::new_parked,
        park: |f| f.park_storage(),
        unpark: |f, buffers| f.unpark_storage(buffers),
        is_parked: |f| f.is_parked(),
        geometry: |f| (f.bitmap().k(), f.bitmap().vector_len().div_ceil(64)),
    }
}

/// Lifecycle state of one subscriber's filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriberState {
    /// Provisioned but never activated: no filter exists yet.
    Dormant,
    /// Filter exists (configuration, clock, monitor, statistics) but its
    /// bit storage was recycled into the arena after an idle expiry
    /// window.
    Parked,
    /// Filter fully materialized with bit storage attached.
    Active,
}

#[derive(Debug, Clone)]
struct Tenant<F> {
    cidr: Cidr,
    name: String,
    config: Option<BitmapFilterConfig>,
    filter: Option<F>,
    parked: bool,
    last_packet: Option<Timestamp>,
}

#[derive(Debug, Clone, Default)]
struct CheckpointCache {
    dirty: Vec<bool>,
    seq: u64,
    last_encoded: usize,
}

#[derive(Debug, Clone, Default)]
struct BatchScratch {
    tags: Vec<(u32, Direction)>,
    order: Vec<u32>,
    stage: Vec<(Packet, Direction)>,
    idxs: Vec<usize>,
    sub: Vec<Verdict>,
}

/// A multi-tenant bank of per-subscriber packet filters for an ISP
/// aggregation point.
///
/// Packets are classified to a subscriber by longest-prefix match on
/// the source address (outbound leg: mark + measure, always pass) or,
/// failing that, the destination address (inbound leg: look up +
/// RED-drop). Transit traffic touching no subscriber passes untouched —
/// the same semantics as the since-removed `MultiNetworkFilter`, minus
/// its linear scans and registration-order matching.
///
/// # Examples
///
/// ```
/// use upbound_core::{BitmapFilterConfig, SubscriberTable, Verdict};
/// use upbound_net::{FiveTuple, Packet, Protocol, TcpFlags, Timestamp};
///
/// let mut table = SubscriberTable::new();
/// table.add_subscriber("10.1.0.0/16".parse()?, BitmapFilterConfig::paper_evaluation())?;
/// table.add_subscriber("10.2.0.0/16".parse()?, BitmapFilterConfig::paper_evaluation())?;
///
/// // An unsolicited inbound SYN toward subscriber 1 is dropped there.
/// let pkt = Packet::tcp(
///     Timestamp::from_secs(1.0),
///     FiveTuple::new(
///         Protocol::Tcp,
///         "198.51.100.2:4000".parse()?,
///         "10.1.0.9:6881".parse()?,
///     ),
///     TcpFlags::SYN,
///     &[][..],
/// );
/// assert_eq!(table.process_packet(&pkt), Verdict::Drop);
/// // Only the touched subscriber is resident.
/// assert_eq!(table.active_subscribers(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubscriberTable<F: PacketFilter = BitmapFilter> {
    trie: LpmTrie,
    tenants: Vec<Tenant<F>>,
    arena: BitVecArena,
    ops: Option<ArenaOps<F>>,
    evict_after: Option<TimeDelta>,
    outbound_drop_anomalies: u64,
    ckpt: RefCell<CheckpointCache>,
    scratch: BatchScratch,
}

impl Default for SubscriberTable<BitmapFilter> {
    fn default() -> Self {
        SubscriberTable::new()
    }
}

impl SubscriberTable<BitmapFilter> {
    /// An empty table with lazy activation and arena-backed eviction
    /// available.
    pub fn new() -> Self {
        Self {
            trie: LpmTrie::new(),
            tenants: Vec::new(),
            arena: BitVecArena::default(),
            ops: Some(bitmap_arena_ops()),
            evict_after: None,
            outbound_drop_anomalies: 0,
            ckpt: RefCell::new(CheckpointCache::default()),
            scratch: BatchScratch::default(),
        }
    }

    /// Provisions a subscriber (dormant — no memory is allocated until
    /// its first packet) named after its prefix.
    ///
    /// # Errors
    ///
    /// See [`SubscriberError`].
    pub fn add_subscriber(
        &mut self,
        cidr: Cidr,
        config: BitmapFilterConfig,
    ) -> Result<usize, SubscriberError> {
        let name = cidr.to_string();
        self.add_named_subscriber(&name, cidr, config)
    }

    /// Provisions a dormant subscriber with an explicit display name
    /// (used as the `subscriber` telemetry label).
    ///
    /// # Errors
    ///
    /// See [`SubscriberError`].
    pub fn add_named_subscriber(
        &mut self,
        name: &str,
        cidr: Cidr,
        config: BitmapFilterConfig,
    ) -> Result<usize, SubscriberError> {
        self.push_tenant(cidr, name.to_string(), Some(config), None)
    }
}

impl<F: PacketFilter> SubscriberTable<F> {
    /// An empty table for pre-constructed filters (installed via
    /// [`add_subscriber_filter`](Self::add_subscriber_filter)). Such a
    /// table dispatches and checkpoints like any other but cannot
    /// lazily activate or evict tenants — every installed filter stays
    /// resident.
    pub fn with_filters() -> Self {
        Self {
            trie: LpmTrie::new(),
            tenants: Vec::new(),
            arena: BitVecArena::default(),
            ops: None,
            evict_after: None,
            outbound_drop_anomalies: 0,
            ckpt: RefCell::new(CheckpointCache::default()),
            scratch: BatchScratch::default(),
        }
    }

    fn push_tenant(
        &mut self,
        cidr: Cidr,
        name: String,
        config: Option<BitmapFilterConfig>,
        filter: Option<F>,
    ) -> Result<usize, SubscriberError> {
        let id =
            u32::try_from(self.tenants.len()).map_err(|_| SubscriberError::TooManySubscribers)?;
        self.trie.insert(cidr, id)?;
        let materialized = filter.is_some();
        self.tenants.push(Tenant {
            cidr,
            name,
            config,
            filter,
            parked: false,
            last_packet: None,
        });
        self.ckpt.get_mut().dirty.push(materialized);
        Ok(id as usize)
    }

    /// Installs a subscriber served by a pre-built filter (eagerly
    /// resident; exempt from arena eviction).
    ///
    /// # Errors
    ///
    /// See [`SubscriberError`].
    pub fn add_subscriber_filter(
        &mut self,
        cidr: Cidr,
        filter: F,
    ) -> Result<usize, SubscriberError> {
        let name = cidr.to_string();
        self.push_tenant(cidr, name, None, Some(filter))
    }

    /// Number of provisioned subscribers.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no subscriber is provisioned.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Enables idle-tenant eviction: a tenant whose last packet is at
    /// least `max(after, T_e)` in the past has its bit storage recycled
    /// into the shared arena. The clamp to the tenant's expiry window
    /// `T_e` makes eviction verdict-lossless — by then every mark has
    /// expired, so the evicted (all-zero) storage and a fresh zeroed
    /// buffer are indistinguishable.
    pub fn evict_idle_after(&mut self, after: TimeDelta) -> &mut Self {
        self.evict_after = Some(after);
        self
    }

    /// The subscriber owning `addr` (longest prefix match), if any.
    pub fn subscriber_of(&self, addr: Ipv4Addr) -> Option<usize> {
        self.trie.lookup(addr).map(|id| id as usize)
    }

    /// The prefix of subscriber `id`.
    pub fn subscriber_cidr(&self, id: usize) -> Option<Cidr> {
        self.tenants.get(id).map(|t| t.cidr)
    }

    /// The display name of subscriber `id`.
    pub fn subscriber_name(&self, id: usize) -> Option<&str> {
        self.tenants.get(id).map(|t| t.name.as_str())
    }

    /// The lifecycle state of subscriber `id`'s filter.
    pub fn subscriber_state(&self, id: usize) -> Option<SubscriberState> {
        self.tenants.get(id).map(|t| match (&t.filter, t.parked) {
            (None, _) => SubscriberState::Dormant,
            (Some(_), true) => SubscriberState::Parked,
            (Some(_), false) => SubscriberState::Active,
        })
    }

    /// Statistics of subscriber `id`, if its filter is materialized.
    pub fn subscriber_stats(&self, id: usize) -> Option<F::Stats> {
        self.tenants.get(id)?.filter.as_ref().map(|f| f.stats())
    }

    /// Filter memory of subscriber `id` in bytes (zero while dormant or
    /// parked).
    pub fn subscriber_memory_bytes(&self, id: usize) -> Option<usize> {
        self.tenants
            .get(id)
            .map(|t| t.filter.as_ref().map_or(0, |f| f.memory_bytes()))
    }

    /// The timestamp of subscriber `id`'s most recent packet.
    pub fn subscriber_last_packet(&self, id: usize) -> Option<Timestamp> {
        self.tenants.get(id)?.last_packet
    }

    /// Number of subscribers whose filter is resident (active, with bit
    /// storage attached).
    pub fn active_subscribers(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| t.filter.is_some() && !t.parked)
            .count()
    }

    /// Bytes currently pooled in the arena awaiting reuse.
    pub fn arena_pooled_bytes(&self) -> usize {
        self.arena.pooled_bytes
    }

    /// `(reuses, fresh allocations)` performed by the arena.
    pub fn arena_counters(&self) -> (u64, u64) {
        (self.arena.reuses, self.arena.fresh_allocations)
    }

    /// Outbound packets for which the tenant filter anomalously voted
    /// `Drop`. The table structurally forces such packets to pass
    /// (outbound traffic is never dropped, per Algorithm 2) and counts
    /// the anomaly here instead of a release-mode-silent debug assert.
    pub fn outbound_drop_anomalies(&self) -> u64 {
        self.outbound_drop_anomalies
    }

    /// A standalone classifier (clone of the dispatch trie) usable from
    /// another thread, e.g. a pipeline ingest stage labeling directions
    /// while the table itself lives with the filter stage.
    pub fn classifier(&self) -> SubscriberClassifier {
        SubscriberClassifier {
            trie: self.trie.clone(),
        }
    }

    fn note_activity(&mut self, id: usize, now: Timestamp) {
        let t = &mut self.tenants[id];
        t.last_packet = Some(match t.last_packet {
            Some(prev) if prev.as_micros() > now.as_micros() => prev,
            _ => now,
        });
        self.ckpt.get_mut().dirty[id] = true;
    }

    /// Materializes and/or re-attaches storage to tenant `id` so its
    /// filter can decide packets.
    fn ensure_active(&mut self, id: usize) {
        if self.tenants[id].filter.is_none() {
            let Some(ops) = self.ops else {
                unreachable!("dormant tenant in a table without arena ops")
            };
            let Some(config) = self.tenants[id].config.clone() else {
                unreachable!("dormant tenant without a configuration")
            };
            self.tenants[id].filter = Some((ops.new_parked)(config));
            self.tenants[id].parked = true;
        }
        if self.tenants[id].parked {
            let Some(ops) = self.ops else {
                unreachable!("parked tenant in a table without arena ops")
            };
            let (k, words) = match self.tenants[id].filter.as_ref() {
                Some(f) => (ops.geometry)(f),
                None => unreachable!("tenant materialized above"),
            };
            let buffers: Vec<Vec<u64>> = (0..k).map(|_| self.arena.take(words)).collect();
            match self.tenants[id].filter.as_mut() {
                Some(f) => (ops.unpark)(f, buffers),
                None => unreachable!("tenant materialized above"),
            }
            self.tenants[id].parked = false;
            self.ckpt.get_mut().dirty[id] = true;
        }
    }

    fn decide_leg(&mut self, id: usize, packet: &Packet, direction: Direction) -> Verdict {
        self.ensure_active(id);
        self.note_activity(id, packet.ts());
        let Some(filter) = self.tenants[id].filter.as_mut() else {
            unreachable!("tenant activated above")
        };
        let verdict = filter.decide(packet, direction);
        if direction == Direction::Outbound && verdict == Verdict::Drop {
            self.outbound_drop_anomalies += 1;
            return Verdict::Pass;
        }
        verdict
    }

    /// Processes one packet at the aggregation point:
    ///
    /// * source inside a subscriber → outbound for that subscriber
    ///   (mark + measure; structurally always passes);
    /// * otherwise destination inside a subscriber → inbound there
    ///   (look up + RED-drop);
    /// * transit traffic passes untouched.
    pub fn process_packet(&mut self, packet: &Packet) -> Verdict {
        let tuple = packet.tuple();
        if let Some(id) = self.trie.lookup(*tuple.src().ip()) {
            return self.decide_leg(id as usize, packet, Direction::Outbound);
        }
        if let Some(id) = self.trie.lookup(*tuple.dst().ip()) {
            return self.decide_leg(id as usize, packet, Direction::Inbound);
        }
        Verdict::Pass
    }

    /// Decides a batch with subscriber-aware grouped dispatch: every
    /// packet is classified once, the batch is partitioned by
    /// subscriber, and each tenant's sub-batch goes through its
    /// filter's [`decide_batch`](PacketFilter::decide_batch) — so
    /// per-tenant overhead (activation, bookkeeping, lock amortization
    /// in sharded members) is paid once per group instead of once per
    /// packet. Verdicts land in input order and are byte-identical to
    /// calling [`process_packet`](Self::process_packet) per packet,
    /// because tenant filters are independent and drop draws are pure
    /// functions of `(seed, key, timestamp)`.
    ///
    /// The `Direction` component of `packets` is ignored — the table
    /// classifies every packet itself.
    pub fn process_batch(&mut self, packets: &[(Packet, Direction)], verdicts: &mut Vec<Verdict>) {
        const TRANSIT: u32 = u32::MAX;
        let base = verdicts.len();
        verdicts.resize(base + packets.len(), Verdict::Pass);
        let mut s = std::mem::take(&mut self.scratch);
        s.tags.clear();
        s.order.clear();
        for (slot, (packet, _)) in packets.iter().enumerate() {
            let tuple = packet.tuple();
            let tag = if let Some(id) = self.trie.lookup(*tuple.src().ip()) {
                (id, Direction::Outbound)
            } else if let Some(id) = self.trie.lookup(*tuple.dst().ip()) {
                (id, Direction::Inbound)
            } else {
                (TRANSIT, Direction::Inbound)
            };
            if tag.0 != TRANSIT {
                s.order.push(slot as u32);
            }
            s.tags.push(tag);
        }
        // Group by sorting indices by tenant (stable within a tenant, so
        // each sub-batch keeps input order); transit packets were never
        // pushed and keep their pre-filled Pass.
        s.order.sort_by_key(|&slot| s.tags[slot as usize].0);
        let mut at = 0;
        while at < s.order.len() {
            let tid = s.tags[s.order[at] as usize].0;
            s.stage.clear();
            s.idxs.clear();
            s.sub.clear();
            while at < s.order.len() && s.tags[s.order[at] as usize].0 == tid {
                let j = s.order[at] as usize;
                // Packet payloads are refcounted (`Bytes`), so staging
                // clones are cheap.
                s.stage.push((packets[j].0.clone(), s.tags[j].1));
                s.idxs.push(j);
                at += 1;
            }
            let id = tid as usize;
            self.ensure_active(id);
            if let Some((last, _)) = s.stage.last() {
                self.note_activity(id, last.ts());
            }
            let Some(filter) = self.tenants[id].filter.as_mut() else {
                unreachable!("tenant activated above")
            };
            filter.decide_batch(&s.stage, &mut s.sub);
            for (&slot, &v) in s.idxs.iter().zip(s.sub.iter()) {
                let verdict = if s.tags[slot].1 == Direction::Outbound && v == Verdict::Drop {
                    self.outbound_drop_anomalies += 1;
                    Verdict::Pass
                } else {
                    v
                };
                verdicts[base + slot] = verdict;
            }
        }
        self.scratch = s;
    }

    /// Applies due timer events on every materialized tenant (rotation
    /// of a parked tenant is a free no-op that keeps its clock and
    /// statistics aligned with a standalone filter), then sweeps for
    /// idle tenants to evict.
    pub fn advance(&mut self, now: Timestamp) {
        for t in &mut self.tenants {
            if let Some(f) = t.filter.as_mut() {
                f.advance(now);
            }
        }
        self.sweep_evictions(now);
    }

    fn sweep_evictions(&mut self, now: Timestamp) {
        let Some(after) = self.evict_after else {
            return;
        };
        let Some(ops) = self.ops else { return };
        for id in 0..self.tenants.len() {
            {
                let t = &self.tenants[id];
                if t.parked || t.filter.is_none() {
                    continue;
                }
                // Pre-built tenants (no config) have no known expiry
                // window, so they are never evicted.
                let Some(cfg) = t.config.as_ref() else {
                    continue;
                };
                let Some(last) = t.last_packet else { continue };
                let expiry = cfg.expiry_timer();
                let threshold = if after.as_micros() > expiry.as_micros() {
                    after
                } else {
                    expiry
                };
                if now.saturating_since(last).as_micros() < threshold.as_micros() {
                    continue;
                }
            }
            let buffers = match self.tenants[id].filter.as_mut() {
                Some(f) => (ops.park)(f),
                None => continue,
            };
            for buf in buffers {
                self.arena.put(buf);
            }
            self.tenants[id].parked = true;
            self.ckpt.get_mut().dirty[id] = true;
        }
    }

    /// Per-subscriber statistics in provisioning order. Dormant tenants
    /// report default (all-zero) statistics.
    pub fn per_subscriber_stats(&self) -> Vec<(Cidr, F::Stats)> {
        self.tenants
            .iter()
            .map(|t| {
                (
                    t.cidr,
                    t.filter.as_ref().map(|f| f.stats()).unwrap_or_default(),
                )
            })
            .collect()
    }

    /// All tenant statistics folded into one aggregate.
    pub fn merged_stats(&self) -> F::Stats {
        let mut merged = F::Stats::default();
        for t in &self.tenants {
            if let Some(f) = t.filter.as_ref() {
                merged.merge(&f.stats());
            }
        }
        merged
    }

    /// Total resident filter memory plus bytes pooled in the arena.
    /// O(active subscribers): dormant and parked tenants hold no bit
    /// storage.
    pub fn memory_bytes(&self) -> usize {
        let filters: usize = self
            .tenants
            .iter()
            .filter_map(|t| t.filter.as_ref().map(|f| f.memory_bytes()))
            .sum();
        filters + self.arena.pooled_bytes
    }

    /// Number of tenants currently marked dirty (touched since the last
    /// checkpoint).
    pub fn dirty_subscribers(&self) -> usize {
        self.ckpt.borrow().dirty.iter().filter(|d| **d).count()
    }

    /// The checkpoint sequence number (incremented by every full or
    /// delta snapshot taken).
    pub fn checkpoint_seq(&self) -> u64 {
        self.ckpt.borrow().seq
    }

    /// How many tenant filters the most recent snapshot (full or delta)
    /// serialized — the observable that makes incremental checkpoints
    /// testable.
    pub fn last_checkpoint_tenants(&self) -> usize {
        self.ckpt.borrow().last_encoded
    }
}

/// A thread-portable snapshot of a [`SubscriberTable`]'s dispatch trie,
/// classifying packets without access to the table.
#[derive(Debug, Clone)]
pub struct SubscriberClassifier {
    trie: LpmTrie,
}

impl SubscriberClassifier {
    /// The subscriber owning `addr`, if any.
    pub fn subscriber_of(&self, addr: Ipv4Addr) -> Option<usize> {
        self.trie.lookup(addr).map(|id| id as usize)
    }

    /// The accounting direction of `packet` at the aggregation point:
    /// outbound when its source lies in a subscriber network, inbound
    /// otherwise.
    pub fn direction_of(&self, packet: &Packet) -> Direction {
        let tuple = packet.tuple();
        if self.trie.lookup(*tuple.src().ip()).is_some() {
            Direction::Outbound
        } else {
            Direction::Inbound
        }
    }
}

impl<F: PacketFilter> PacketFilter for SubscriberTable<F> {
    type Stats = F::Stats;

    fn decide(&mut self, packet: &Packet, _direction: Direction) -> Verdict {
        // The table classifies each packet itself; the caller-supplied
        // direction is ignored.
        self.process_packet(packet)
    }

    fn decide_batch(&mut self, packets: &[(Packet, Direction)], verdicts: &mut Vec<Verdict>) {
        self.process_batch(packets, verdicts);
    }

    fn advance(&mut self, now: Timestamp) {
        SubscriberTable::advance(self, now);
    }

    fn stats(&self) -> F::Stats {
        self.merged_stats()
    }

    fn memory_bytes(&self) -> usize {
        SubscriberTable::memory_bytes(self)
    }

    fn drop_probability(&self, now: Timestamp) -> f64 {
        // Most aggressive tenant: the largest P_d any subscriber's
        // policy currently yields.
        self.tenants
            .iter()
            .filter_map(|t| t.filter.as_ref().map(|f| f.drop_probability(now)))
            .fold(0.0, f64::max)
    }

    fn name(&self) -> &str {
        "subscribers"
    }
}

impl<F: PacketFilter + Snapshottable> SubscriberTable<F> {
    fn encode_tenant(t: &Tenant<F>, w: &mut ByteWriter) {
        match &t.filter {
            None => w.put_u8(0),
            Some(f) => {
                w.put_u8(1);
                w.put_bool(t.parked);
                match t.last_packet {
                    Some(ts) => {
                        w.put_bool(true);
                        w.put_u64(ts.as_micros());
                    }
                    None => {
                        w.put_bool(false);
                        w.put_u64(0);
                    }
                }
                let mut inner = ByteWriter::new();
                f.encode_snapshot(&mut inner);
                let blob = inner.into_bytes();
                w.put_u64(blob.len() as u64);
                w.put_slice(&blob);
            }
        }
    }

    fn restore_tenant(
        &mut self,
        id: usize,
        r: &mut ByteReader<'_>,
        mode: RestoreMode,
    ) -> Result<(), SnapshotError> {
        match r.u8()? {
            0 => {
                // Dormant in the snapshot: release whatever this table
                // holds for the tenant.
                if self.tenants[id].filter.is_some() && self.ops.is_none() {
                    return Err(SnapshotError::ConfigMismatch("subscriber provisioning"));
                }
                if let (Some(ops), Some(f)) = (self.ops, self.tenants[id].filter.as_mut()) {
                    if !(ops.is_parked)(f) {
                        let buffers = (ops.park)(f);
                        for buf in buffers {
                            self.arena.put(buf);
                        }
                    }
                }
                self.tenants[id].filter = None;
                self.tenants[id].parked = false;
                self.tenants[id].last_packet = None;
            }
            1 => {
                // The parked flag is a diagnostic hint; the effective
                // state is re-derived from the storage the filter ends
                // up with after the blob is applied.
                let _parked_hint = r.bool()?;
                let has_last = r.bool()?;
                let last_us = r.u64()?;
                let blob_len = r.u64()? as usize;
                let blob = r.take(blob_len)?;
                let freshly_materialized = self.tenants[id].filter.is_none();
                if freshly_materialized {
                    let Some(ops) = self.ops else {
                        return Err(SnapshotError::ConfigMismatch("subscriber filter missing"));
                    };
                    let Some(config) = self.tenants[id].config.clone() else {
                        return Err(SnapshotError::ConfigMismatch("subscriber config missing"));
                    };
                    self.tenants[id].filter = Some((ops.new_parked)(config));
                }
                {
                    let Some(filter) = self.tenants[id].filter.as_mut() else {
                        unreachable!("tenant materialized above")
                    };
                    let mut br = ByteReader::new(blob);
                    filter.restore_snapshot(&mut br, mode)?;
                    if !br.is_empty() {
                        return Err(SnapshotError::Malformed(
                            "subscriber payload trailing bytes",
                        ));
                    }
                }
                self.tenants[id].parked = match (self.ops, self.tenants[id].filter.as_ref()) {
                    (Some(ops), Some(f)) => (ops.is_parked)(f),
                    _ => false,
                };
                self.tenants[id].last_packet = has_last.then(|| Timestamp::from_micros(last_us));
            }
            _ => return Err(SnapshotError::Malformed("subscriber state tag")),
        }
        Ok(())
    }

    /// Serializes an **incremental** checkpoint: only tenants touched
    /// since the previous checkpoint (full or delta) are re-serialized,
    /// inside a kind-[`SUBSCRIBER_DELTA_KIND`] container. Restore with
    /// [`restore_delta_bytes`](Self::restore_delta_bytes) on a table
    /// whose state matches the delta's base sequence number — i.e. one
    /// restored from the previous checkpoint chain.
    pub fn delta_bytes(&self, watermark: Timestamp) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.tenants.len() as u32);
        let mut ckpt = self.ckpt.borrow_mut();
        w.put_u64(ckpt.seq);
        ckpt.seq += 1;
        w.put_u64(ckpt.seq);
        let dirty_ids: Vec<usize> = ckpt
            .dirty
            .iter()
            .enumerate()
            .filter_map(|(id, d)| d.then_some(id))
            .collect();
        w.put_u32(dirty_ids.len() as u32);
        for id in &dirty_ids {
            w.put_u32(*id as u32);
            Self::encode_tenant(&self.tenants[*id], &mut w);
            ckpt.dirty[*id] = false;
        }
        ckpt.last_encoded = dirty_ids.len();
        w.put_u64(self.outbound_drop_anomalies);
        encode_container(SUBSCRIBER_DELTA_KIND, watermark, w.as_slice())
    }

    /// Applies a delta produced by [`delta_bytes`](Self::delta_bytes),
    /// handling staleness like
    /// [`Snapshottable::restore_bytes`]: a delta older than
    /// `stale_after` restores statistics only and restarts every tenant
    /// cold at `now`.
    ///
    /// # Errors
    ///
    /// Container defects, a non-delta kind, a provisioning mismatch, or
    /// a base sequence number that does not match this table's current
    /// checkpoint sequence (the delta chain would have a gap) map to
    /// the corresponding [`SnapshotError`].
    pub fn restore_delta_bytes(
        &mut self,
        bytes: &[u8],
        now: Timestamp,
        stale_after: TimeDelta,
    ) -> Result<RestoreOutcome, SnapshotError> {
        let view = decode_container(bytes)?;
        if view.kind != SUBSCRIBER_DELTA_KIND {
            return Err(SnapshotError::KindMismatch {
                expected: SUBSCRIBER_DELTA_KIND,
                found: view.kind,
            });
        }
        let stale = now.saturating_since(view.watermark) > stale_after;
        let mode = if stale {
            RestoreMode::StatsOnly
        } else {
            RestoreMode::Full
        };
        let mut r = ByteReader::new(view.payload);
        if r.u32()? as usize != self.tenants.len() {
            return Err(SnapshotError::ConfigMismatch("subscriber count"));
        }
        let base_seq = r.u64()?;
        let new_seq = r.u64()?;
        if base_seq != self.ckpt.get_mut().seq {
            return Err(SnapshotError::Malformed("delta base sequence mismatch"));
        }
        let entries = r.u32()?;
        for _ in 0..entries {
            let id = r.u32()? as usize;
            if id >= self.tenants.len() {
                return Err(SnapshotError::Malformed("subscriber id out of range"));
            }
            self.restore_tenant(id, &mut r, mode)?;
        }
        self.outbound_drop_anomalies = r.u64()?;
        if !r.is_empty() {
            return Err(SnapshotError::Malformed("payload has trailing bytes"));
        }
        {
            let ckpt = self.ckpt.get_mut();
            ckpt.seq = new_seq;
            ckpt.dirty.iter_mut().for_each(|d| *d = false);
        }
        if stale {
            self.start_cold_at(now);
            Ok(RestoreOutcome::Cold)
        } else {
            Ok(RestoreOutcome::Warm)
        }
    }
}

impl<F: PacketFilter + Snapshottable> Snapshottable for SubscriberTable<F> {
    const SNAPSHOT_KIND: u32 = 3;

    fn encode_snapshot(&self, w: &mut ByteWriter) {
        w.put_u32(self.tenants.len() as u32);
        let mut ckpt = self.ckpt.borrow_mut();
        ckpt.seq += 1;
        w.put_u64(ckpt.seq);
        let mut encoded = 0usize;
        for (id, t) in self.tenants.iter().enumerate() {
            Self::encode_tenant(t, w);
            if t.filter.is_some() {
                encoded += 1;
            }
            ckpt.dirty[id] = false;
        }
        ckpt.last_encoded = encoded;
        w.put_u64(self.outbound_drop_anomalies);
    }

    fn restore_snapshot(
        &mut self,
        r: &mut ByteReader<'_>,
        mode: RestoreMode,
    ) -> Result<(), SnapshotError> {
        if r.u32()? as usize != self.tenants.len() {
            return Err(SnapshotError::ConfigMismatch("subscriber count"));
        }
        let seq = r.u64()?;
        for id in 0..self.tenants.len() {
            self.restore_tenant(id, r, mode)?;
        }
        self.outbound_drop_anomalies = r.u64()?;
        let ckpt = self.ckpt.get_mut();
        ckpt.seq = seq;
        ckpt.dirty.iter_mut().for_each(|d| *d = false);
        Ok(())
    }

    fn start_cold_at(&mut self, epoch: Timestamp) {
        for t in &mut self.tenants {
            if let Some(f) = t.filter.as_mut() {
                f.start_cold_at(epoch);
            }
        }
    }
}

/// Publishes per-subscriber labeled counters and gauges from a
/// [`SubscriberTable`] into a telemetry [`Registry`].
///
/// Counters are cumulative, so the publisher tracks the last published
/// value per tenant and adds only the delta on each
/// [`publish`](Self::publish) call. Dormant tenants export nothing
/// (keeping label cardinality proportional to tenants that have seen
/// traffic, not to provisioning).
#[derive(Debug)]
pub struct SubscriberTelemetry {
    registry: Registry,
    published: Vec<FilterStats>,
    published_anomalies: u64,
}

impl SubscriberTelemetry {
    /// A publisher writing into `registry`.
    pub fn new(registry: Registry) -> Self {
        Self {
            registry,
            published: Vec::new(),
            published_anomalies: 0,
        }
    }

    /// The registry this publisher writes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Publishes the current per-tenant and table-level state.
    pub fn publish<F>(&mut self, table: &SubscriberTable<F>)
    where
        F: PacketFilter<Stats = FilterStats>,
    {
        self.published.resize(table.len(), FilterStats::default());
        for id in 0..table.len() {
            let Some(stats) = table.subscriber_stats(id) else {
                continue;
            };
            let Some(name) = table.subscriber_name(id) else {
                continue;
            };
            let labels: &[(&str, &str)] = &[("subscriber", name)];
            let last = self.published[id];
            self.registry
                .labeled_counter(
                    "upbound_core_subscriber_outbound_packets_total",
                    "Outbound packets observed for this subscriber",
                    labels,
                )
                .add(stats.outbound_packets.saturating_sub(last.outbound_packets));
            self.registry
                .labeled_counter(
                    "upbound_core_subscriber_inbound_packets_total",
                    "Inbound packets checked for this subscriber",
                    labels,
                )
                .add(stats.inbound_packets.saturating_sub(last.inbound_packets));
            self.registry
                .labeled_counter(
                    "upbound_core_subscriber_dropped_total",
                    "Inbound packets dropped for this subscriber",
                    labels,
                )
                .add(stats.dropped.saturating_sub(last.dropped));
            self.registry
                .labeled_counter(
                    "upbound_core_subscriber_fail_open_passes_total",
                    "Would-be drops passed during this subscriber's warm-up grace",
                    labels,
                )
                .add(stats.fail_open_passes.saturating_sub(last.fail_open_passes));
            self.registry
                .labeled_gauge(
                    "upbound_core_subscriber_memory_bytes",
                    "Resident filter memory of this subscriber",
                    labels,
                )
                .set(table.subscriber_memory_bytes(id).unwrap_or(0) as f64);
            self.registry
                .labeled_gauge(
                    "upbound_core_subscriber_resident",
                    "1 when this subscriber's filter storage is resident, 0 when parked",
                    labels,
                )
                .set(match table.subscriber_state(id) {
                    Some(SubscriberState::Active) => 1.0,
                    _ => 0.0,
                });
            self.published[id] = stats;
        }
        let anomalies = table.outbound_drop_anomalies();
        self.registry
            .counter(
                "upbound_core_outbound_drop_anomaly_total",
                "Outbound packets a tenant filter anomalously voted to drop (forced to pass)",
            )
            .add(anomalies.saturating_sub(self.published_anomalies));
        self.published_anomalies = anomalies;
        self.registry
            .gauge(
                "upbound_core_subscribers_provisioned",
                "Subscribers provisioned in the table",
            )
            .set(table.len() as f64);
        self.registry
            .gauge(
                "upbound_core_subscribers_active",
                "Subscribers with resident filter storage",
            )
            .set(table.active_subscribers() as f64);
        self.registry
            .gauge(
                "upbound_core_subscriber_arena_pooled_bytes",
                "Bytes pooled in the shared bit-vector arena awaiting reuse",
            )
            .set(table.arena_pooled_bytes() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_net::{FiveTuple, Protocol, TcpFlags};
    use upbound_telemetry::MetricValue;

    fn pkt(src: &str, dst: &str, t: f64) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(t),
            FiveTuple::new(Protocol::Tcp, src.parse().unwrap(), dst.parse().unwrap()),
            TcpFlags::ACK,
            &[][..],
        )
    }

    fn small_config(seed: u64) -> BitmapFilterConfig {
        // {4 × 2^10} bitmap rotated every 1 s → T_e = 4 s, 512 bytes.
        BitmapFilterConfig::builder()
            .vector_bits(10)
            .vectors(4)
            .hash_functions(3)
            .rotate_every_secs(1.0)
            .rng_seed(seed)
            .build()
            .unwrap()
    }

    fn two_tenant_table() -> SubscriberTable {
        let mut table = SubscriberTable::new();
        table
            .add_subscriber("10.1.0.0/16".parse().unwrap(), small_config(7))
            .unwrap();
        table
            .add_subscriber("10.2.0.0/16".parse().unwrap(), small_config(7))
            .unwrap();
        table
    }

    #[test]
    fn lpm_duplicate_prefix_is_an_error() {
        let mut trie = LpmTrie::new();
        trie.insert("10.0.0.0/8".parse().unwrap(), 0).unwrap();
        assert_eq!(
            trie.insert("10.0.0.0/8".parse().unwrap(), 1),
            Err(SubscriberError::DuplicatePrefix(
                "10.0.0.0/8".parse().unwrap()
            ))
        );
        // A default route catches everything not more specifically owned.
        trie.insert("0.0.0.0/0".parse().unwrap(), 2).unwrap();
        assert_eq!(trie.lookup("203.0.113.9".parse().unwrap()), Some(2));
        assert_eq!(trie.lookup("10.4.5.6".parse().unwrap()), Some(0));
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn lazy_activation_keeps_memory_o_active() {
        let mut table = SubscriberTable::new();
        for i in 0..50u32 {
            let cidr: Cidr = format!("10.{i}.0.0/16").parse().unwrap();
            table.add_subscriber(cidr, small_config(1)).unwrap();
        }
        assert_eq!(table.memory_bytes(), 0);
        assert_eq!(table.active_subscribers(), 0);
        table.process_packet(&pkt("10.3.0.5:4000", "198.51.100.9:80", 1.0));
        assert_eq!(table.active_subscribers(), 1);
        assert_eq!(table.memory_bytes(), small_config(1).memory_bytes());
        assert_eq!(table.subscriber_state(3), Some(SubscriberState::Active));
        assert_eq!(table.subscriber_state(4), Some(SubscriberState::Dormant));
    }

    #[test]
    fn idle_eviction_parks_and_reactivation_reuses_arena() {
        let mut table = two_tenant_table();
        table.evict_idle_after(TimeDelta::from_secs(5.0));
        table.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        let resident = small_config(7).memory_bytes();
        assert_eq!(table.memory_bytes(), resident);
        // Idle for well past max(5 s, T_e = 4 s): the sweep parks it.
        table.advance(Timestamp::from_secs(60.0));
        assert_eq!(table.subscriber_state(0), Some(SubscriberState::Parked));
        assert_eq!(table.active_subscribers(), 0);
        assert_eq!(table.arena_pooled_bytes(), resident);
        // Statistics and clock survive parking.
        assert_eq!(table.subscriber_stats(0).unwrap().outbound_packets, 1);
        // Reactivation pulls the pooled buffers back out of the arena.
        table.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 61.0));
        assert_eq!(table.subscriber_state(0), Some(SubscriberState::Active));
        assert_eq!(table.arena_pooled_bytes(), 0);
        let (reuses, fresh) = table.arena_counters();
        assert!(reuses >= 1, "expected arena reuse, got {reuses}/{fresh}");
    }

    #[test]
    fn arena_buffers_migrate_between_tenants() {
        let mut table = two_tenant_table();
        table.evict_idle_after(TimeDelta::ZERO);
        table.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        table.advance(Timestamp::from_secs(60.0));
        let (_, fresh_before) = table.arena_counters();
        // Tenant 1 activates from tenant 0's recycled storage.
        table.process_packet(&pkt("10.2.0.5:4000", "198.51.100.9:80", 61.0));
        let (reuses, fresh_after) = table.arena_counters();
        assert!(reuses >= 1);
        assert_eq!(fresh_before, fresh_after);
    }

    #[test]
    fn eviction_is_verdict_lossless() {
        // A table with aggressive eviction must agree packet-for-packet
        // with a standalone filter that is never evicted.
        let mut table = SubscriberTable::new();
        table
            .add_subscriber("10.1.0.0/16".parse().unwrap(), small_config(3))
            .unwrap();
        table.evict_idle_after(TimeDelta::ZERO);
        let mut standalone = BitmapFilter::new(small_config(3));

        let script: &[(&str, &str, f64, Direction)] = &[
            ("10.1.0.5:4000", "198.51.100.9:80", 1.0, Direction::Outbound),
            ("198.51.100.9:80", "10.1.0.5:4000", 1.2, Direction::Inbound),
            // Long gap: the table parks the tenant at the advance below.
            ("198.51.100.9:80", "10.1.0.5:4000", 30.5, Direction::Inbound),
            (
                "10.1.0.5:4000",
                "198.51.100.9:80",
                30.6,
                Direction::Outbound,
            ),
            ("198.51.100.9:80", "10.1.0.5:4000", 30.7, Direction::Inbound),
        ];
        let advances = [10.0, 30.0, 31.0];
        let mut ai = 0;
        for &(src, dst, t, dir) in script {
            while ai < advances.len() && advances[ai] < t {
                let now = Timestamp::from_secs(advances[ai]);
                table.advance(now);
                standalone.advance(now);
                ai += 1;
            }
            let p = pkt(src, dst, t);
            assert_eq!(
                table.process_packet(&p),
                standalone.decide(&p, dir),
                "diverged at t={t}"
            );
        }
        assert_eq!(table.subscriber_stats(0).unwrap(), standalone.stats());
    }

    #[derive(Debug, Clone, Default)]
    struct DropAll {
        stats: FilterStats,
    }

    impl PacketFilter for DropAll {
        type Stats = FilterStats;
        fn decide(&mut self, _packet: &Packet, direction: Direction) -> Verdict {
            match direction {
                Direction::Outbound => self.stats.outbound_packets += 1,
                Direction::Inbound => self.stats.inbound_packets += 1,
            }
            Verdict::Drop
        }
        fn advance(&mut self, _now: Timestamp) {}
        fn stats(&self) -> FilterStats {
            self.stats
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn drop_probability(&self, _now: Timestamp) -> f64 {
            1.0
        }
        fn name(&self) -> &str {
            "dropall"
        }
    }

    #[test]
    fn outbound_drop_votes_are_forced_to_pass_and_counted() {
        let mut table: SubscriberTable<DropAll> = SubscriberTable::with_filters();
        table
            .add_subscriber_filter("10.1.0.0/16".parse().unwrap(), DropAll::default())
            .unwrap();
        let out = pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0);
        assert_eq!(table.process_packet(&out), Verdict::Pass);
        assert_eq!(table.outbound_drop_anomalies(), 1);
        // Inbound drops are legitimate and pass through unchanged.
        let inb = pkt("198.51.100.9:80", "10.1.0.5:4000", 1.1);
        assert_eq!(table.process_packet(&inb), Verdict::Drop);
        assert_eq!(table.outbound_drop_anomalies(), 1);
        // The batched path enforces the same structural guarantee.
        let mut verdicts = Vec::new();
        table.process_batch(
            &[(out, Direction::Inbound), (inb, Direction::Inbound)],
            &mut verdicts,
        );
        assert_eq!(verdicts, vec![Verdict::Pass, Verdict::Drop]);
        assert_eq!(table.outbound_drop_anomalies(), 2);
    }

    #[test]
    fn batch_dispatch_matches_sequential() {
        let mut batched = two_tenant_table();
        let mut sequential = two_tenant_table();
        let packets: Vec<(Packet, Direction)> = [
            pkt("10.1.0.5:4000", "198.51.100.9:80", 1.00),
            pkt("10.2.0.6:4001", "198.51.100.9:80", 1.01),
            pkt("192.0.2.1:53", "198.51.100.2:53", 1.02),
            pkt("198.51.100.9:80", "10.1.0.5:4000", 1.03),
            pkt("198.51.100.9:80", "10.2.0.6:4001", 1.04),
            pkt("203.0.113.7:6881", "10.1.0.9:6881", 1.05),
            pkt("10.1.0.5:4000", "10.2.0.6:4001", 1.06),
            pkt("203.0.113.7:6881", "10.2.0.9:6881", 1.07),
        ]
        .into_iter()
        .map(|p| (p, Direction::Inbound))
        .collect();
        let mut got = Vec::new();
        batched.process_batch(&packets, &mut got);
        let want: Vec<Verdict> = packets
            .iter()
            .map(|(p, _)| sequential.process_packet(p))
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            batched.per_subscriber_stats(),
            sequential.per_subscriber_stats()
        );
        assert_eq!(
            batched.outbound_drop_anomalies(),
            sequential.outbound_drop_anomalies()
        );
    }

    #[test]
    fn full_snapshot_round_trips_active_parked_and_dormant() {
        let mut table = two_tenant_table();
        table
            .add_subscriber("10.3.0.0/16".parse().unwrap(), small_config(7))
            .unwrap();
        table.evict_idle_after(TimeDelta::from_secs(5.0));
        table.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        table.process_packet(&pkt("10.2.0.6:4001", "198.51.100.9:80", 9.0));
        table.advance(Timestamp::from_secs(10.0)); // parks tenant 0
        assert_eq!(table.subscriber_state(0), Some(SubscriberState::Parked));

        let now = Timestamp::from_secs(10.0);
        let bytes = table.snapshot_bytes(now);
        let mut restored = two_tenant_table();
        restored
            .add_subscriber("10.3.0.0/16".parse().unwrap(), small_config(7))
            .unwrap();
        restored.evict_idle_after(TimeDelta::from_secs(5.0));
        let outcome = restored
            .restore_bytes(
                &bytes,
                Timestamp::from_secs(10.5),
                TimeDelta::from_secs(60.0),
            )
            .unwrap();
        assert_eq!(outcome, RestoreOutcome::Warm);
        assert_eq!(restored.subscriber_state(0), Some(SubscriberState::Parked));
        assert_eq!(restored.subscriber_state(1), Some(SubscriberState::Active));
        assert_eq!(restored.subscriber_state(2), Some(SubscriberState::Dormant));
        assert_eq!(
            restored.per_subscriber_stats(),
            table.per_subscriber_stats()
        );
        assert_eq!(restored.checkpoint_seq(), table.checkpoint_seq());
        assert_eq!(restored.dirty_subscribers(), 0);
        // Both instances keep agreeing after the restore.
        let reply = pkt("198.51.100.9:80", "10.2.0.6:4001", 10.6);
        assert_eq!(
            restored.process_packet(&reply),
            table.process_packet(&reply)
        );
    }

    #[test]
    fn delta_checkpoint_reserializes_only_dirty_tenants() {
        let mut primary = two_tenant_table();
        primary
            .add_subscriber("10.3.0.0/16".parse().unwrap(), small_config(7))
            .unwrap();
        for i in 1..=3u32 {
            let src = format!("10.{i}.0.5:4000");
            primary.process_packet(&pkt(&src, "198.51.100.9:80", 1.0));
        }
        let full = primary.snapshot_bytes(Timestamp::from_secs(1.5));
        assert_eq!(primary.last_checkpoint_tenants(), 3);
        let mut standby = two_tenant_table();
        standby
            .add_subscriber("10.3.0.0/16".parse().unwrap(), small_config(7))
            .unwrap();
        standby
            .restore_bytes(&full, Timestamp::from_secs(2.0), TimeDelta::from_secs(60.0))
            .unwrap();

        // Only tenant 1 is touched between checkpoints.
        primary.process_packet(&pkt("10.2.0.6:4001", "198.51.100.9:80", 2.5));
        assert_eq!(primary.dirty_subscribers(), 1);
        let delta = primary.delta_bytes(Timestamp::from_secs(3.0));
        assert_eq!(primary.last_checkpoint_tenants(), 1);
        assert_eq!(primary.dirty_subscribers(), 0);
        assert!(
            delta.len() * 2 < full.len(),
            "delta ({}) should be far smaller than full ({})",
            delta.len(),
            full.len()
        );
        let outcome = standby
            .restore_delta_bytes(
                &delta,
                Timestamp::from_secs(3.5),
                TimeDelta::from_secs(60.0),
            )
            .unwrap();
        assert_eq!(outcome, RestoreOutcome::Warm);
        assert_eq!(
            standby.per_subscriber_stats(),
            primary.per_subscriber_stats()
        );
        assert_eq!(standby.checkpoint_seq(), primary.checkpoint_seq());
    }

    #[test]
    fn delta_with_mismatched_base_sequence_is_rejected() {
        let mut primary = two_tenant_table();
        primary.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        let full = primary.snapshot_bytes(Timestamp::from_secs(1.5));
        let mut standby = two_tenant_table();
        standby
            .restore_bytes(&full, Timestamp::from_secs(2.0), TimeDelta::from_secs(60.0))
            .unwrap();
        primary.process_packet(&pkt("10.2.0.6:4001", "198.51.100.9:80", 2.5));
        let delta = primary.delta_bytes(Timestamp::from_secs(3.0));
        standby
            .restore_delta_bytes(
                &delta,
                Timestamp::from_secs(3.5),
                TimeDelta::from_secs(60.0),
            )
            .unwrap();
        // Replaying the same delta breaks the chain.
        let err = standby
            .restore_delta_bytes(
                &delta,
                Timestamp::from_secs(4.0),
                TimeDelta::from_secs(60.0),
            )
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)));
    }

    #[test]
    fn stale_delta_restores_cold() {
        let mut primary = two_tenant_table();
        primary.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        let full = primary.snapshot_bytes(Timestamp::from_secs(1.5));
        let mut standby = two_tenant_table();
        standby
            .restore_bytes(&full, Timestamp::from_secs(2.0), TimeDelta::from_secs(60.0))
            .unwrap();
        primary.process_packet(&pkt("10.1.0.5:4001", "198.51.100.9:80", 2.5));
        let delta = primary.delta_bytes(Timestamp::from_secs(3.0));
        let outcome = standby
            .restore_delta_bytes(
                &delta,
                Timestamp::from_secs(500.0),
                TimeDelta::from_secs(60.0),
            )
            .unwrap();
        assert_eq!(outcome, RestoreOutcome::Cold);
        // Statistics survive a cold restore.
        assert_eq!(standby.subscriber_stats(0).unwrap().outbound_packets, 2);
    }

    #[test]
    fn telemetry_publishes_per_subscriber_series() {
        let mut table = two_tenant_table();
        table.process_packet(&pkt("10.1.0.5:4000", "198.51.100.9:80", 1.0));
        table.process_packet(&pkt("203.0.113.7:6881", "10.1.0.9:6881", 1.1));
        let mut telemetry = SubscriberTelemetry::new(Registry::new());
        telemetry.publish(&table);
        telemetry.publish(&table); // idempotent for cumulative counters
        let snapshot = telemetry.registry().snapshot();
        let sample = |name: &str, label: &str| {
            snapshot
                .samples
                .iter()
                .find(|s| s.name == name && s.labels.iter().any(|(_, v)| v == label))
                .map(|s| s.value.clone())
        };
        assert_eq!(
            sample(
                "upbound_core_subscriber_outbound_packets_total",
                "10.1.0.0/16"
            ),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            sample(
                "upbound_core_subscriber_inbound_packets_total",
                "10.1.0.0/16"
            ),
            Some(MetricValue::Counter(1))
        );
        // The dormant tenant exports no series.
        assert_eq!(
            sample(
                "upbound_core_subscriber_outbound_packets_total",
                "10.2.0.0/16"
            ),
            None
        );
        assert_eq!(
            snapshot.gauge("upbound_core_subscribers_provisioned"),
            Some(2.0)
        );
    }
}
