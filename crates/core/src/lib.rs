//! The **bitmap filter** — the primary contribution of *Bounding
//! Peer-to-Peer Upload Traffic in Client Networks* (Huang & Lei,
//! DSN 2007).
//!
//! # How it works
//!
//! A client network's traffic is overwhelmingly bi-directional with short
//! out-in packet delays, and P2P upload is overwhelmingly triggered by
//! *unsolicited inbound* connection attempts. The bitmap filter therefore
//! keeps an approximate, constant-space memory of which five-tuples
//! recently sent an **outbound** packet:
//!
//! * a `{k × N}`-bitmap: `k` Bloom-filter bit vectors of `N = 2^n` bits
//!   sharing `m` hash functions ([`Bitmap`]);
//! * outbound packets **mark** their [`FilterKey`] in *all* `k` vectors
//!   (paper Algorithm 2);
//! * inbound packets **look up** only the *current* vector; a miss means
//!   the packet is unsolicited and is dropped with probability `P_d`;
//! * every `Δt` seconds [`Bitmap::rotate`] advances the current vector
//!   and zeroes the vector it left (paper Algorithm 1), expiring marks
//!   after `T_e ≈ k·Δt` without per-flow timers.
//!
//! `P_d` follows the RED-style rule of the paper's Equation 1
//! ([`DropPolicy`]): zero below an uplink-throughput threshold `L`,
//! rising linearly to one at `H`. The uplink estimate comes from a
//! windowed [`ThroughputMonitor`].
//!
//! [`params`] implements the paper's §5.1 analysis: penetration
//! probability (Eq. 2–3), the optimal hash count `m = N/(e·c)` (Eq. 5)
//! and the capacity bound `c/N ≤ −1/(e·ln p)` (Eq. 6).
//!
//! # Examples
//!
//! ```
//! use upbound_core::{BitmapFilter, BitmapFilterConfig, Verdict};
//! use upbound_net::{FiveTuple, Protocol, Timestamp};
//!
//! // The paper's evaluation configuration: a 512 KiB {4 × 2^20} bitmap
//! // rotated every 5 s (T_e = 20 s) with 3 hash functions.
//! let mut filter = BitmapFilter::new(BitmapFilterConfig::paper_evaluation());
//!
//! let conn = FiveTuple::new(
//!     Protocol::Tcp,
//!     "10.0.0.7:51000".parse()?,
//!     "203.0.113.4:6881".parse()?,
//! );
//! let t = Timestamp::from_secs(3.0);
//! filter.observe_outbound(&conn, t);
//!
//! // The response is recognized...
//! assert_eq!(filter.check_inbound(&conn.inverse(), t, 1.0), Verdict::Pass);
//! // ...an unsolicited inbound request is not (P_d = 1 → drop).
//! let stranger = FiveTuple::new(
//!     Protocol::Tcp,
//!     "198.51.100.9:40000".parse()?,
//!     "10.0.0.7:6881".parse()?,
//! );
//! assert_eq!(filter.check_inbound(&stranger, t, 1.0), Verdict::Drop);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod amortized;
mod atomic_bitmap;
mod atomic_bitvec;
mod bitmap;
mod bitvec;
mod bloom;
mod config;
mod engine;
mod filter;
mod hash;
pub mod observe;
pub mod overload;
pub mod params;
mod pfilter;
mod red;
mod runtime;
mod sharded;
mod shared_engine;
pub mod snapshot;
mod subscriber;
mod throughput;

pub use amortized::{AmortizedBitmap, DEFAULT_CLEAR_CHUNK_WORDS};
pub use atomic_bitmap::{AtomicBitmap, BitmapProbe};
pub use atomic_bitvec::AtomicBitVec;
pub use bitmap::Bitmap;
pub use bitvec::BitVec;
pub use bloom::BloomFilter;
pub use config::{BitmapFilterConfig, BitmapFilterConfigBuilder, ConfigError, FailMode};
pub use engine::FilterEngine;
pub use filter::{BitmapFilter, FilterStats, Verdict};
pub use hash::HashFamily;
pub use observe::{
    FilterObserver, InboundDecision, NoopObserver, RotationEvent, TelemetryObserver,
};
pub use overload::{
    OverloadEvent, OverloadLadder, OverloadPolicy, OverloadPolicyError, OverloadState,
};
pub use pfilter::{MergeStats, PacketFilter};
pub use red::DropPolicy;
pub use runtime::{ConfigCell, RuntimeOverrides};
pub use sharded::{FlowHash, ShardIndexError, ShardedFilter, ShardedFilterBuilder};
pub use snapshot::{
    ByteReader, ByteWriter, RestoreMode, RestoreOutcome, SnapshotError, Snapshottable,
};
pub use subscriber::{
    LpmTrie, SubscriberClassifier, SubscriberError, SubscriberState, SubscriberTable,
    SubscriberTelemetry, SUBSCRIBER_DELTA_KIND,
};
pub use throughput::ThroughputMonitor;

pub use upbound_net::FilterKey;
