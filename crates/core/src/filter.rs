//! The complete bitmap filter: bitmap + timer + throughput-driven `P_d`.

use crate::config::FailMode;
use crate::observe::{FilterObserver, InboundDecision, NoopObserver, RotationEvent};
use crate::overload::{OverloadLadder, OverloadPolicy, OverloadState};
use crate::pfilter::{MergeStats, PacketFilter};
use crate::runtime::RuntimeOverrides;
use crate::shared_engine::SharedEngine;
use crate::snapshot::{self, ByteReader, ByteWriter, RestoreMode, SnapshotError, Snapshottable};
use crate::{AtomicBitVec, AtomicBitmap, BitmapFilterConfig, DropPolicy, ThroughputMonitor};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use upbound_net::{Direction, FiveTuple, Packet, Timestamp};

/// Sentinel for "clock not anchored" in the atomic warm-up fields.
const UNSET: u64 = u64::MAX;

/// The decision of a filter for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Forward the packet.
    Pass,
    /// Discard the packet.
    Drop,
}

/// Running counters of a [`BitmapFilter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Outbound packets observed (always passed).
    pub outbound_packets: u64,
    /// Inbound packets checked.
    pub inbound_packets: u64,
    /// Inbound packets whose key was found in the current vector.
    pub inbound_hits: u64,
    /// Inbound packets whose key was not (fully) found.
    pub inbound_misses: u64,
    /// Inbound packets dropped.
    pub dropped: u64,
    /// Would-be drops passed because the filter was inside its warm-up
    /// grace period ([`FailMode::Open`], not yet armed).
    pub fail_open_passes: u64,
    /// Bitmap rotations performed by the timer.
    pub rotations: u64,
}

impl FilterStats {
    /// Folds the counters of `other` into `self`.
    ///
    /// Packet counters are additive; `rotations` merges as the
    /// **maximum**, because the shards of a
    /// [`ShardedFilter`](crate::ShardedFilter) each advance lazily to
    /// the last timestamp they saw — the furthest-advanced shard has
    /// performed exactly the rotations a single sequential filter would
    /// have.
    pub fn merge(&mut self, other: &FilterStats) {
        self.outbound_packets += other.outbound_packets;
        self.inbound_packets += other.inbound_packets;
        self.inbound_hits += other.inbound_hits;
        self.inbound_misses += other.inbound_misses;
        self.dropped += other.dropped;
        self.fail_open_passes += other.fail_open_passes;
        self.rotations = self.rotations.max(other.rotations);
    }
}

impl MergeStats for FilterStats {
    fn merge(&mut self, other: &Self) {
        FilterStats::merge(self, other);
    }
}

/// The atomic backing store of [`FilterStats`], so concurrent decision
/// paths count through `&self`. Counters are `Relaxed`: each is
/// independently monotone and only ever read as a snapshot.
#[derive(Debug, Default)]
struct SharedStats {
    outbound_packets: AtomicU64,
    inbound_packets: AtomicU64,
    inbound_hits: AtomicU64,
    inbound_misses: AtomicU64,
    dropped: AtomicU64,
    fail_open_passes: AtomicU64,
    rotations: AtomicU64,
}

impl SharedStats {
    fn load(&self) -> FilterStats {
        FilterStats {
            outbound_packets: self.outbound_packets.load(Ordering::Relaxed),
            inbound_packets: self.inbound_packets.load(Ordering::Relaxed),
            inbound_hits: self.inbound_hits.load(Ordering::Relaxed),
            inbound_misses: self.inbound_misses.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            fail_open_passes: self.fail_open_passes.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
        }
    }

    fn store(&mut self, s: FilterStats) {
        *self.outbound_packets.get_mut() = s.outbound_packets;
        *self.inbound_packets.get_mut() = s.inbound_packets;
        *self.inbound_hits.get_mut() = s.inbound_hits;
        *self.inbound_misses.get_mut() = s.inbound_misses;
        *self.dropped.get_mut() = s.dropped;
        *self.fail_open_passes.get_mut() = s.fail_open_passes;
        *self.rotations.get_mut() = s.rotations;
    }
}

impl Clone for SharedStats {
    fn clone(&self) -> Self {
        let s = self.load();
        let mut out = Self::default();
        out.store(s);
        out
    }
}

/// The warm-up clock in atomic form, so anchoring and arming queries run
/// through `&self`. Timestamps are stored as microseconds with
/// [`UNSET`] (`u64::MAX`) standing in for `None`; anchoring is a
/// compare-exchange from `UNSET`, so exactly one thread wins a racing
/// first-packet anchor and the anchored value never moves afterwards —
/// the same "pure function of `(arm_at, now)`" arming the exclusive
/// filter had.
#[derive(Debug)]
struct WarmupClock {
    /// Trace time at which drops arm (fail-open), `UNSET` until
    /// anchored.
    arm_at: AtomicU64,
    /// End of the warm-up window (telemetry only), `UNSET` until
    /// anchored.
    warm_until: AtomicU64,
    /// Whether the one-shot armed notification fired (telemetry only).
    arm_notified: AtomicBool,
}

impl Default for WarmupClock {
    fn default() -> Self {
        Self {
            arm_at: AtomicU64::new(UNSET),
            warm_until: AtomicU64::new(UNSET),
            arm_notified: AtomicBool::new(false),
        }
    }
}

impl WarmupClock {
    fn arm_at(&self) -> Option<Timestamp> {
        match self.arm_at.load(Ordering::Acquire) {
            UNSET => None,
            micros => Some(Timestamp::from_micros(micros)),
        }
    }

    fn warm_until(&self) -> Option<Timestamp> {
        match self.warm_until.load(Ordering::Acquire) {
            UNSET => None,
            micros => Some(Timestamp::from_micros(micros)),
        }
    }

    /// Exclusive overwrite (restore / reset paths).
    fn set(&mut self, arm_at: Option<Timestamp>, warm_until: Option<Timestamp>, notified: bool) {
        *self.arm_at.get_mut() = arm_at.map_or(UNSET, Timestamp::as_micros);
        *self.warm_until.get_mut() = warm_until.map_or(UNSET, Timestamp::as_micros);
        *self.arm_notified.get_mut() = notified;
    }
}

impl Clone for WarmupClock {
    fn clone(&self) -> Self {
        Self {
            arm_at: AtomicU64::new(self.arm_at.load(Ordering::Acquire)),
            warm_until: AtomicU64::new(self.warm_until.load(Ordering::Acquire)),
            arm_notified: AtomicBool::new(self.arm_notified.load(Ordering::Acquire)),
        }
    }
}

/// The bitmap filter of the paper's Section 4: constant-space,
/// constant-time bounding of unsolicited inbound (and therefore
/// peer-to-peer upload) traffic.
///
/// Drive it either at the packet level with
/// [`process_packet`](Self::process_packet) — which maintains the uplink
/// [`ThroughputMonitor`] and derives `P_d` from the configured
/// [`DropPolicy`] automatically — or at the tuple level with
/// [`observe_outbound`](Self::observe_outbound) /
/// [`check_inbound`](Self::check_inbound) and an explicit `P_d`.
///
/// Time is driven by packet timestamps: every entry point first applies
/// any rotations that came due, so no external timer thread is needed in
/// simulation. For live deployments,
/// [`ShardedFilter`](crate::ShardedFilter) partitions the five-tuple
/// space across independently locked shards and merges their statistics;
/// see its docs.
///
/// The filter is generic over a [`FilterObserver`] called on every
/// packet decision and rotation. The default [`NoopObserver`]
/// monomorphizes to nothing, so uninstrumented filters pay no cost;
/// [`with_observer`](Self::with_observer) installs a real one (e.g.
/// [`TelemetryObserver`](crate::TelemetryObserver)).
///
/// # Concurrency
///
/// All state except the observer is atomic: the bitmap is an
/// [`AtomicBitmap`], counters and the warm-up clock are atomics, and the
/// tick scheduler is the crate-internal `SharedEngine`. An unobserved
/// filter (`O = NoopObserver`, [`PacketFilter::CONCURRENT`]) can
/// therefore be driven through `&self` from many threads at once via
/// [`process_packet_shared`](Self::process_packet_shared) /
/// [`advance_shared`](Self::advance_shared) with verdicts and statistics
/// identical to the exclusive path — which is what lets
/// [`ShardedFilter`](crate::ShardedFilter) decide packets under a shard
/// *read* lock. Observed filters serialize through `&mut` as before, so
/// observers never need to be `Sync`.
#[derive(Debug)]
pub struct BitmapFilter<O: FilterObserver = NoopObserver> {
    config: BitmapFilterConfig,
    bitmap: AtomicBitmap,
    engine: SharedEngine,
    observer: O,
    stats: SharedStats,
    /// The warm-up clock. `arm_at`: under [`FailMode::Open`], the trace
    /// time at which drops arm (one expiry window past the cold start),
    /// unset until anchored — by
    /// [`start_cold_at`](Snapshottable::start_cold_at), a warm restore,
    /// or lazily by the first packet.
    ///
    /// Arming is a *pure function* of `(arm_at, now)` — there is no
    /// sticky armed flag — so verdicts stay independent of packet
    /// interleaving and a [`ShardedFilter`](crate::ShardedFilter) whose
    /// shards share one `arm_at` anchor matches a sequential run.
    ///
    /// `warm_until`: end of the warm-up window after a cold start,
    /// tracked for *both* fail modes (telemetry only; never affects
    /// verdicts). Under fail-closed this lets observers attribute early
    /// drops to empty post-restart state
    /// ([`ForensicReason::FailClosedWarmup`]
    /// (upbound_telemetry::ForensicReason::FailClosedWarmup)) instead
    /// of genuinely unsolicited traffic. `Some(Timestamp::ZERO)` marks
    /// a warm restore: the window is considered already elapsed.
    warmup: WarmupClock,
    /// The saturation sentinel and degradation ladder (see
    /// [`crate::overload`]). Defaults to [`OverloadPolicy::off`], which
    /// keeps every decision bit-identical to the paper's algorithm.
    /// Ladder state is derived from the bitmap fill, so it is not part
    /// of the snapshot format: a restored filter re-derives it from the
    /// restored bitmap on its first packet.
    overload: OverloadLadder,
}

impl<O: FilterObserver + Clone> Clone for BitmapFilter<O> {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            bitmap: self.bitmap.clone(),
            engine: self.engine.clone(),
            observer: self.observer.clone(),
            stats: self.stats.clone(),
            warmup: self.warmup.clone(),
            overload: self.overload.clone(),
        }
    }
}

impl BitmapFilter {
    /// Creates an unobserved filter from a validated configuration.
    pub fn new(config: BitmapFilterConfig) -> Self {
        BitmapFilter::with_observer(config, NoopObserver)
    }

    /// Creates a *parked* filter: engine, monitor and statistics are all
    /// live, but the bitmap has no bit storage yet. Used by
    /// [`SubscriberTable`](crate::SubscriberTable), whose arena attaches
    /// zeroed word buffers via [`unpark_storage`](Self::unpark_storage)
    /// on the tenant's first packet. Until then the filter must not
    /// decide packets; rotation ([`advance`](Self::advance)) is safe (a
    /// parked vector clears as a no-op).
    pub(crate) fn new_parked(config: BitmapFilterConfig) -> Self {
        let bitmap = AtomicBitmap::new_parked(
            config.vectors(),
            config.vector_bits(),
            config.hash_functions(),
        );
        let engine = SharedEngine::new(
            config.rotate_every(),
            config.uplink_monitor(),
            config.drop_policy(),
            config.rng_seed(),
        );
        Self {
            bitmap,
            engine,
            observer: NoopObserver,
            config,
            stats: SharedStats::default(),
            warmup: WarmupClock::default(),
            overload: OverloadLadder::new(OverloadPolicy::off()),
        }
    }
}

impl<O: FilterObserver> BitmapFilter<O> {
    /// Creates a filter that reports decisions and rotations to
    /// `observer`.
    pub fn with_observer(config: BitmapFilterConfig, observer: O) -> Self {
        let bitmap = AtomicBitmap::new(config.vectors, config.vector_bits, config.hash_functions);
        let engine = SharedEngine::new(
            config.rotate_every,
            config.uplink_monitor(),
            config.drop_policy,
            config.rng_seed,
        );
        Self {
            bitmap,
            engine,
            observer,
            config,
            stats: SharedStats::default(),
            warmup: WarmupClock::default(),
            overload: OverloadLadder::new(OverloadPolicy::off()),
        }
    }

    /// Rebinds the uplink measurement to a monitor shared with sibling
    /// shards, so `P_d` derives from the aggregate upload rate of the
    /// whole client network. Used by
    /// [`ShardedFilter`](crate::ShardedFilter).
    pub fn with_shared_uplink(mut self, uplink: Arc<ThroughputMonitor>) -> Self {
        self.engine.share_uplink(uplink);
        self
    }

    /// Installs an overload policy (see [`crate::overload`]). The
    /// default is [`OverloadPolicy::off`]: the ladder never engages and
    /// verdicts match the paper's algorithm exactly.
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload = OverloadLadder::new(policy);
        self
    }

    /// Applies the filter-relevant fields of a [`RuntimeOverrides`]:
    /// the `P_d` thresholds, the fail mode, and the overload policy.
    /// `batch_size` is a dataplane-loop property and is ignored here.
    ///
    /// Exclusive access makes the swap atomic with respect to verdicts —
    /// a control plane applies this between batches, at a rotation
    /// boundary, so no packet is decided under a mixed configuration.
    /// Bitmap contents, tick phase, stats and the ladder's rung all
    /// survive: only the policy knobs change.
    pub fn apply_overrides(&mut self, overrides: &RuntimeOverrides) {
        if let Some(policy) = overrides.drop_policy {
            self.config.drop_policy = policy;
            self.engine.set_drop_policy(policy);
        }
        if let Some(mode) = overrides.fail_mode {
            self.config.fail_mode = mode;
        }
        if let Some(policy) = &overrides.overload {
            self.overload.set_policy(policy.clone());
        }
    }

    /// The saturation sentinel / degradation ladder.
    pub fn overload(&self) -> &OverloadLadder {
        &self.overload
    }

    /// The ladder's current rung ([`OverloadState::Normal`] whenever the
    /// policy is off).
    pub fn overload_state(&self) -> OverloadState {
        self.overload.state()
    }

    /// The installed observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The installed observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The configuration the filter was built with.
    pub fn config(&self) -> &BitmapFilterConfig {
        &self.config
    }

    /// The underlying `{k × N}` bitmap.
    pub fn bitmap(&self) -> &AtomicBitmap {
        &self.bitmap
    }

    /// The uplink throughput monitor (owned, or shared with sibling
    /// shards).
    pub fn monitor(&self) -> &ThroughputMonitor {
        self.engine.monitor()
    }

    /// Running counters.
    pub fn stats(&self) -> FilterStats {
        self.stats.load()
    }

    /// Total memory of the bit storage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bitmap.memory_bytes()
    }

    /// Applies every rotation due at or before `now` (the `b.rotate`
    /// timer, paper Algorithm 1).
    pub fn advance(&mut self, now: Timestamp) {
        if !self.engine.tick_due(now) {
            return;
        }
        let BitmapFilter {
            engine,
            bitmap,
            stats,
            observer,
            overload,
            ..
        } = self;
        engine.advance(now, |at, ticks| {
            bitmap.rotate();
            stats.rotations.fetch_add(1, Ordering::Relaxed);
            // Graceful degradation: a Saturated ladder sheds marks at
            // twice the configured rate — one extra rotation per tick,
            // never more, so the ⌊(k−1)/2⌋·Δt mark-survival floor the
            // overload docs promise stays intact.
            if overload.wants_early_rotation() {
                bitmap.rotate();
                stats.rotations.fetch_add(1, Ordering::Relaxed);
                overload.note_early_rotation();
            }
            // Ticks are rare (once per Δt), so the operating point is
            // computed eagerly for the observer.
            let monitor = engine.monitor();
            let p_d = engine.drop_policy().drop_probability(monitor.rate_bps(at));
            observer.on_rotation(&RotationEvent {
                now: at,
                rotations: ticks,
                monitor,
                p_d,
            });
            // Rotations shed marks, so the ladder may de-escalate here
            // rather than waiting for the next inbound packet.
            if let Some(event) = overload.evaluate(bitmap, at) {
                observer.on_overload(&event);
            }
        });
    }

    /// Lock-free twin of [`advance`](Self::advance), skipping observer
    /// dispatch — callers guarantee `O` is [`NoopObserver`]
    /// ([`FilterObserver::IS_NOOP`]), so nothing observable is skipped.
    pub fn advance_shared(&self, now: Timestamp) {
        debug_assert!(O::IS_NOOP, "advance_shared requires a no-op observer");
        self.engine.advance(now, |at, _ticks| {
            self.bitmap.rotate();
            self.stats.rotations.fetch_add(1, Ordering::Relaxed);
            if self.overload.wants_early_rotation() {
                self.bitmap.rotate();
                self.stats.rotations.fetch_add(1, Ordering::Relaxed);
                self.overload.note_early_rotation();
            }
            self.overload.evaluate(&self.bitmap, at);
        });
    }

    /// `true` when drop verdicts apply at `now`. Always `true` under
    /// [`FailMode::Closed`]; under [`FailMode::Open`] only once the
    /// warm-up clock has been anchored *and* `now` has reached it.
    pub fn is_armed(&self, now: Timestamp) -> bool {
        match self.config.fail_mode() {
            FailMode::Closed => true,
            FailMode::Open => self.warmup.arm_at().is_some_and(|at| now >= at),
        }
    }

    /// The trace time at which drops arm, once the warm-up clock has
    /// been anchored. `None` for a fail-open filter that has seen no
    /// packet and no explicit cold start yet.
    pub fn armed_at(&self) -> Option<Timestamp> {
        self.warmup.arm_at()
    }

    /// Anchors the warm-up clock lazily at the first packet a fail-open
    /// filter sees, then fires the cold-start notification if this call
    /// won the anchor. Standalone fallback only: a sharded deployment
    /// must anchor every shard uniformly (via
    /// [`start_cold_at`](Snapshottable::start_cold_at) at the first
    /// packet's timestamp) or shard verdicts diverge from a sequential
    /// run during warm-up.
    fn anchor_warmup(&mut self, now: Timestamp) {
        if let Some(armed_at) = self.anchor_warmup_shared(now) {
            self.observer.on_cold_start(now, armed_at);
        }
    }

    /// The anchoring itself, through `&self`: compare-exchange from the
    /// unset sentinel, so racing first packets anchor exactly once.
    /// Returns the arming time when *this call* won the fail-open
    /// anchor (the `&mut` wrapper fires the observer then).
    fn anchor_warmup_shared(&self, now: Timestamp) -> Option<Timestamp> {
        // Telemetry-only warm-window anchor, kept for both fail modes.
        let until = (now + self.config.expiry_timer()).as_micros();
        let _ = self.warmup.warm_until.compare_exchange(
            UNSET,
            until,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
        if self.config.fail_mode() == FailMode::Open
            && self.warmup.arm_at.load(Ordering::Acquire) == UNSET
        {
            let armed_at = now + self.config.expiry_timer();
            if self
                .warmup
                .arm_at
                .compare_exchange(
                    UNSET,
                    armed_at.as_micros(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.warmup.arm_notified.store(false, Ordering::Release);
                return Some(armed_at);
            }
        }
        None
    }

    /// `true` while `now` is inside the warm-up window after a cold
    /// start (telemetry only; never affects verdicts).
    pub fn is_warming(&self, now: Timestamp) -> bool {
        self.warmup.warm_until().is_some_and(|until| now < until)
    }

    /// Fires the one-shot armed notification when warm-up has elapsed.
    fn maybe_notify_armed(&mut self, now: Timestamp) {
        if !*self.warmup.arm_notified.get_mut()
            && self.config.fail_mode() == FailMode::Open
            && self.warmup.arm_at().is_some_and(|at| now >= at)
        {
            *self.warmup.arm_notified.get_mut() = true;
            self.observer.on_armed(now);
        }
    }

    /// Records an outbound packet's tuple: marks its key in all bit
    /// vectors. Outbound packets are always passed (Algorithm 2).
    pub fn observe_outbound(&mut self, tuple: &FiveTuple, now: Timestamp) {
        self.advance(now);
        self.anchor_warmup(now);
        self.maybe_notify_armed(now);
        self.stats.outbound_packets.fetch_add(1, Ordering::Relaxed);
        let key = tuple.outbound_key(self.config.hole_punching());
        self.bitmap.mark(&key.to_bytes());
        self.observer.on_outbound(tuple, now);
        // Outbound marks are what raise the fill (a SYN flood's elicited
        // RSTs arrive here), so the sentinel samples after each mark.
        if let Some(event) = self.overload.evaluate(&self.bitmap, now) {
            self.observer.on_overload(&event);
        }
    }

    /// Checks an inbound packet's tuple against the current bit vector
    /// and decides with explicit drop probability `p_d`.
    ///
    /// Faithful to Algorithm 2: each of the `m` hashed bits that is
    /// *unmarked* gives an independent chance `p_d` to drop, so the
    /// overall drop probability of a fully unknown key is
    /// `1 − (1 − p_d)^m`. The draws are deterministic functions of
    /// `(seed, key, timestamp, draw index)` — see
    /// [`FilterEngine`](crate::FilterEngine) — so replays and sharded
    /// runs reproduce exactly.
    pub fn check_inbound(&mut self, tuple: &FiveTuple, now: Timestamp, p_d: f64) -> Verdict {
        self.advance(now);
        self.anchor_warmup(now);
        self.maybe_notify_armed(now);
        if let Some(event) = self.overload.evaluate(&self.bitmap, now) {
            self.observer.on_overload(&event);
        }
        // Degradation clamp: while the ladder is engaged, unmarked
        // inbound packets face at least the rung's P_d. Applied before
        // the probe, but structurally inert for marked (solicited)
        // flows — `decide_inbound_core` passes known tuples before any
        // drop draw consults `p_d`.
        let p_d = p_d.max(self.overload.clamp(self.config.fail_mode()));
        self.stats.inbound_packets.fetch_add(1, Ordering::Relaxed);
        let key = tuple.inbound_key(self.config.hole_punching());
        let key_bytes = key.to_bytes();
        let (verdict, known, drop_draws, fail_open) =
            self.decide_inbound_core(&key_bytes, now, p_d);
        let warming = self.is_warming(now);
        self.observer.on_inbound(&InboundDecision {
            now,
            verdict,
            p_d,
            known,
            drop_draws,
            fail_open,
            warming,
            key: &key_bytes,
            rotation_epoch: self.engine.ticks(),
            monitor: self.engine.monitor(),
        });
        verdict
    }

    /// The verdict logic shared by the exclusive and concurrent inbound
    /// paths: one seqlock-consistent bitmap probe, then the per-bit drop
    /// draws of Algorithm 2 (lines 9–13) — every unmarked hashed bit
    /// gives an independent chance `p_d` to drop. Returns
    /// `(verdict, known, drop_draws, fail_open)`.
    fn decide_inbound_core(
        &self,
        key_bytes: &[u8],
        now: Timestamp,
        p_d: f64,
    ) -> (Verdict, bool, usize, bool) {
        let probe = self.bitmap.probe(key_bytes);
        if probe.known {
            self.stats.inbound_hits.fetch_add(1, Ordering::Relaxed);
            return (Verdict::Pass, true, 0, false);
        }
        self.stats.inbound_misses.fetch_add(1, Ordering::Relaxed);
        let unmarked = probe.unmarked;
        let mut would_drop = false;
        for draw in 0..unmarked {
            if self.engine.drop_draw(key_bytes, now, draw as u32, p_d) {
                would_drop = true;
                break;
            }
        }
        if would_drop && self.is_armed(now) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            (Verdict::Drop, false, unmarked, false)
        } else if would_drop {
            // Warm-up grace: the draws said drop, but the filter's
            // memory is too cold to trust — pass, and account the
            // override so degradation stays observable.
            self.stats.fail_open_passes.fetch_add(1, Ordering::Relaxed);
            (Verdict::Pass, false, unmarked, true)
        } else {
            (Verdict::Pass, false, unmarked, false)
        }
    }

    /// The drop probability Equation 1 yields for the current measured
    /// uplink throughput.
    pub fn drop_probability(&self, now: Timestamp) -> f64 {
        self.engine.drop_probability(now)
    }

    /// Full per-packet pipeline: outbound packets are marked, counted
    /// toward uplink throughput, and passed; inbound packets are checked
    /// with `P_d` derived from the measured throughput.
    pub fn process_packet(&mut self, packet: &Packet, direction: Direction) -> Verdict {
        let now = packet.ts();
        match direction {
            Direction::Outbound => {
                self.observe_outbound(&packet.tuple(), now);
                self.engine.record_uplink(now, packet.wire_len() as u64);
                Verdict::Pass
            }
            Direction::Inbound => {
                let p_d = self.drop_probability(now);
                self.check_inbound(&packet.tuple(), now, p_d)
            }
        }
    }

    /// Lock-free twin of [`process_packet`](Self::process_packet): the
    /// full per-packet pipeline through `&self`, verdict- and
    /// stats-identical to the exclusive path. Callers guarantee `O` is
    /// [`NoopObserver`] ([`FilterObserver::IS_NOOP`]) — with no hooks to
    /// serialize, skipping observer dispatch changes nothing observable.
    ///
    /// [`ShardedFilter`](crate::ShardedFilter) drives this under a shard
    /// *read* lock, so any number of workers decide packets on the same
    /// shard concurrently.
    pub fn process_packet_shared(&self, packet: &Packet, direction: Direction) -> Verdict {
        debug_assert!(
            O::IS_NOOP,
            "process_packet_shared requires a no-op observer"
        );
        let now = packet.ts();
        match direction {
            Direction::Outbound => {
                self.advance_shared(now);
                self.anchor_warmup_shared(now);
                self.stats.outbound_packets.fetch_add(1, Ordering::Relaxed);
                let key = packet.tuple().outbound_key(self.config.hole_punching());
                self.bitmap.mark(&key.to_bytes());
                self.engine.record_uplink(now, packet.wire_len() as u64);
                self.overload.evaluate(&self.bitmap, now);
                Verdict::Pass
            }
            Direction::Inbound => {
                // `P_d` is sampled before rotations are applied, exactly
                // like the exclusive path (`process_packet` derives it
                // before `check_inbound` advances the clock).
                let p_d = self.drop_probability(now);
                self.advance_shared(now);
                self.anchor_warmup_shared(now);
                self.overload.evaluate(&self.bitmap, now);
                let p_d = p_d.max(self.overload.clamp(self.config.fail_mode()));
                self.stats.inbound_packets.fetch_add(1, Ordering::Relaxed);
                let key = packet.tuple().inbound_key(self.config.hole_punching());
                self.decide_inbound_core(&key.to_bytes(), now, p_d).0
            }
        }
    }

    /// The drop policy in force.
    pub fn drop_policy(&self) -> DropPolicy {
        self.engine.drop_policy()
    }

    /// Detaches and returns the bitmap's word buffers, leaving the
    /// filter parked (engine, monitor and statistics stay live; rotation
    /// remains safe). The buffers are returned as-is — the arena zeroes
    /// them before reuse.
    pub(crate) fn park_storage(&mut self) -> Vec<Vec<u64>> {
        self.bitmap.park()
    }

    /// Re-attaches **zeroed** word buffers to a parked filter's bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the filter is not parked or the buffer geometry does not
    /// match the configuration.
    pub(crate) fn unpark_storage(&mut self, buffers: Vec<Vec<u64>>) {
        self.bitmap.unpark(buffers);
    }

    /// `true` when the bitmap currently has no bit storage.
    pub(crate) fn is_parked(&self) -> bool {
        self.bitmap.is_parked()
    }

    /// Clears bitmap, monitor, statistics, and timer phase.
    ///
    /// With a [shared uplink](Self::with_shared_uplink) this also clears
    /// the aggregate measurement for every sibling shard.
    pub fn reset(&mut self) {
        self.bitmap.reset();
        self.stats.store(FilterStats::default());
        self.engine.reset();
        self.warmup.set(None, None, false);
        self.overload.reset();
    }
}

impl<O: FilterObserver> Snapshottable for BitmapFilter<O> {
    const SNAPSHOT_KIND: u32 = 1;

    fn encode_snapshot(&self, w: &mut ByteWriter) {
        // Configuration guard: a snapshot only restores into a filter
        // whose geometry, clock, and seed produce identical behavior.
        // `fail_mode` is deliberately not guarded — an operator may
        // restart with a different --fail-mode.
        w.put_u32(self.config.vector_bits());
        w.put_u32(self.config.vectors() as u32);
        w.put_u32(self.config.hash_functions() as u32);
        w.put_u64(self.config.rotate_every().as_micros());
        w.put_bool(self.config.hole_punching());
        w.put_u64(self.config.rng_seed());
        // Engine tick phase.
        let (ticks, next_tick) = self.engine.tick_phase();
        w.put_u64(ticks);
        w.put_u64(next_tick.as_micros());
        // Uplink measurement window.
        snapshot::encode_monitor(self.engine.monitor(), w);
        // Bitmap: rotation clock plus every vector's backing words, as
        // one seqlock-consistent copy (parked vectors encode zero
        // words).
        let (vectors, idx, rotations) = self.bitmap.snapshot_words();
        w.put_u32(idx as u32);
        w.put_u64(rotations);
        for words in vectors {
            w.put_u64(words.len() as u64);
            for word in words {
                w.put_u64(word);
            }
        }
        // Running statistics.
        let stats = self.stats.load();
        w.put_u64(stats.outbound_packets);
        w.put_u64(stats.inbound_packets);
        w.put_u64(stats.inbound_hits);
        w.put_u64(stats.inbound_misses);
        w.put_u64(stats.dropped);
        w.put_u64(stats.fail_open_passes);
        w.put_u64(stats.rotations);
        // Warm-up clock.
        match self.warmup.arm_at() {
            Some(at) => {
                w.put_bool(true);
                w.put_u64(at.as_micros());
            }
            None => {
                w.put_bool(false);
                w.put_u64(0);
            }
        }
    }

    fn restore_snapshot(
        &mut self,
        r: &mut ByteReader<'_>,
        mode: RestoreMode,
    ) -> Result<(), SnapshotError> {
        if r.u32()? != self.config.vector_bits() {
            return Err(SnapshotError::ConfigMismatch("vector_bits"));
        }
        if r.u32()? != self.config.vectors() as u32 {
            return Err(SnapshotError::ConfigMismatch("vectors"));
        }
        if r.u32()? != self.config.hash_functions() as u32 {
            return Err(SnapshotError::ConfigMismatch("hash_functions"));
        }
        if r.u64()? != self.config.rotate_every().as_micros() {
            return Err(SnapshotError::ConfigMismatch("rotate_every"));
        }
        if r.bool()? != self.config.hole_punching() {
            return Err(SnapshotError::ConfigMismatch("hole_punching"));
        }
        if r.u64()? != self.config.rng_seed() {
            return Err(SnapshotError::ConfigMismatch("rng_seed"));
        }
        let ticks = r.u64()?;
        let next_tick = Timestamp::from_micros(r.u64()?);
        self.engine.restore_tick_phase(ticks, next_tick);
        snapshot::restore_monitor(self.engine.monitor(), r)?;
        let idx = r.u32()? as usize;
        let rotations = r.u64()?;
        let k = self.config.vectors();
        let expected_words = self.bitmap.vector_len().div_ceil(64);
        let mut vectors = Vec::with_capacity(if mode == RestoreMode::Full { k } else { 0 });
        let mut parked_vectors = 0usize;
        for _ in 0..k {
            let word_count = r.u64()? as usize;
            if word_count == 0 {
                // A parked filter (storage evicted to a
                // [`SubscriberTable`](crate::SubscriberTable) arena)
                // snapshots without words; its bits are semantically
                // all-zero.
                parked_vectors += 1;
                continue;
            }
            if word_count != expected_words {
                return Err(SnapshotError::Malformed("bit-vector word count"));
            }
            if mode == RestoreMode::Full {
                let mut words = Vec::with_capacity(word_count);
                for _ in 0..word_count {
                    words.push(r.u64()?);
                }
                vectors.push(
                    AtomicBitVec::from_words(self.bitmap.vector_len(), words)
                        .ok_or(SnapshotError::Malformed("bit-vector contents"))?,
                );
            } else {
                // Stale snapshot: the bits expired with it; parse past
                // them (the layout is checksummed whole) and discard.
                for _ in 0..word_count {
                    r.u64()?;
                }
            }
        }
        if parked_vectors != 0 && parked_vectors != k {
            return Err(SnapshotError::Malformed("mixed parked bit vectors"));
        }
        if mode == RestoreMode::Full {
            if parked_vectors == k {
                // All bits were zero: clear whatever storage this filter
                // has (a no-op when it is itself parked) and adopt the
                // snapshot's rotation clock.
                self.bitmap.reset();
                if !self.bitmap.set_clock(idx, rotations) {
                    return Err(SnapshotError::Malformed("bitmap geometry"));
                }
            } else if !self.bitmap.restore_fields(vectors, idx, rotations) {
                return Err(SnapshotError::Malformed("bitmap geometry"));
            }
        }
        self.stats.store(FilterStats {
            outbound_packets: r.u64()?,
            inbound_packets: r.u64()?,
            inbound_hits: r.u64()?,
            inbound_misses: r.u64()?,
            dropped: r.u64()?,
            fail_open_passes: r.u64()?,
            rotations: r.u64()?,
        });
        let arm_set = r.bool()?;
        let arm_micros = r.u64()?;
        if mode == RestoreMode::Full {
            let arm_at = arm_set.then(|| Timestamp::from_micros(arm_micros));
            // Re-fire the armed notification on the restored process if
            // warm-up has not provably completed (telemetry only). A
            // warm restore carries real filter state: treat the warm
            // window as elapsed unless the restored arm clock says
            // otherwise.
            self.warmup.set(
                arm_at,
                Some(arm_at.unwrap_or(Timestamp::ZERO)),
                arm_at.is_none(),
            );
        }
        Ok(())
    }

    fn start_cold_at(&mut self, epoch: Timestamp) {
        self.bitmap.reset();
        // Derived state: an empty bitmap is by definition Normal.
        self.overload.reset();
        let armed_at = epoch + self.config.expiry_timer();
        self.warmup.set(Some(armed_at), Some(armed_at), false);
        self.observer.on_cold_start(epoch, armed_at);
    }
}

impl<O: FilterObserver> PacketFilter for BitmapFilter<O> {
    type Stats = FilterStats;

    /// Concurrent exactly when the observer is a no-op: with no hooks to
    /// serialize, the atomic bitmap/counters make `&self` decisions
    /// verdict-identical to `&mut` ones.
    const CONCURRENT: bool = O::IS_NOOP;

    fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict {
        self.process_packet(packet, direction)
    }

    fn decide_shared(&self, packet: &Packet, direction: Direction) -> Verdict {
        self.process_packet_shared(packet, direction)
    }

    fn advance_shared(&self, now: Timestamp) {
        BitmapFilter::advance_shared(self, now);
    }

    fn decide_batch(&mut self, packets: &[(Packet, Direction)], verdicts: &mut Vec<Verdict>) {
        // Rotation checks are amortized by `FilterEngine::tick_due`: the
        // per-packet `advance` inside `process_packet` reduces to one
        // timestamp comparison between ticks, so the batch loop carries
        // no duplicated timer arithmetic. Everything else (warm-up
        // anchoring, drop draws) is a pure function of the packet
        // timestamp and must run per packet for verdict identity.
        verdicts.reserve(packets.len());
        for (packet, direction) in packets {
            verdicts.push(self.process_packet(packet, *direction));
        }
    }

    fn advance(&mut self, now: Timestamp) {
        BitmapFilter::advance(self, now);
    }

    fn stats(&self) -> FilterStats {
        BitmapFilter::stats(self)
    }

    fn memory_bytes(&self) -> usize {
        BitmapFilter::memory_bytes(self)
    }

    fn drop_probability(&self, now: Timestamp) -> f64 {
        BitmapFilter::drop_probability(self, now)
    }

    fn name(&self) -> &str {
        "bitmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upbound_net::{Protocol, TcpFlags, TimeDelta};

    fn out_tuple(port: u16) -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            format!("10.0.0.5:{port}").parse().unwrap(),
            "203.0.113.9:80".parse().unwrap(),
        )
    }

    fn unsolicited(port: u16) -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            format!("198.51.100.2:{port}").parse().unwrap(),
            "10.0.0.5:6881".parse().unwrap(),
        )
    }

    fn filter() -> BitmapFilter {
        BitmapFilter::new(BitmapFilterConfig::paper_evaluation())
    }

    #[test]
    fn response_to_outbound_passes() {
        let mut f = filter();
        let t = Timestamp::from_secs(1.0);
        let conn = out_tuple(40000);
        f.observe_outbound(&conn, t);
        assert_eq!(f.check_inbound(&conn.inverse(), t, 1.0), Verdict::Pass);
        assert_eq!(f.stats().inbound_hits, 1);
    }

    #[test]
    fn unsolicited_inbound_drops_with_pd_one() {
        let mut f = filter();
        let t = Timestamp::from_secs(1.0);
        assert_eq!(f.check_inbound(&unsolicited(50000), t, 1.0), Verdict::Drop);
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.stats().inbound_misses, 1);
    }

    #[test]
    fn unsolicited_inbound_passes_with_pd_zero() {
        let mut f = filter();
        let t = Timestamp::from_secs(1.0);
        assert_eq!(f.check_inbound(&unsolicited(50001), t, 0.0), Verdict::Pass);
        assert_eq!(f.stats().dropped, 0);
    }

    #[test]
    fn marks_expire_after_expiry_timer() {
        let mut f = filter();
        let conn = out_tuple(41000);
        f.observe_outbound(&conn, Timestamp::from_secs(0.1));
        // Within T_e − Δt the response is still recognized.
        assert_eq!(
            f.check_inbound(&conn.inverse(), Timestamp::from_secs(14.9), 1.0),
            Verdict::Pass
        );
        // Well past T_e = 20 s the mark is gone.
        assert_eq!(
            f.check_inbound(&conn.inverse(), Timestamp::from_secs(25.0), 1.0),
            Verdict::Drop
        );
    }

    #[test]
    fn rotations_follow_packet_time() {
        let mut f = filter();
        f.advance(Timestamp::from_secs(17.0));
        assert_eq!(f.stats().rotations, 3); // at 5, 10, 15 s
        f.advance(Timestamp::from_secs(17.0));
        assert_eq!(f.stats().rotations, 3); // idempotent
        f.advance(Timestamp::from_secs(20.0));
        assert_eq!(f.stats().rotations, 4);
    }

    #[test]
    fn partial_pd_drops_at_expected_rate() {
        let mut f = filter();
        let t = Timestamp::from_secs(0.0);
        let trials = 20_000;
        let mut drops = 0;
        for i in 0..trials {
            if f.check_inbound(&unsolicited(1024 + (i % 40000) as u16), t, 0.3) == Verdict::Drop {
                drops += 1;
            }
        }
        // Per Algorithm 2: P(drop) = 1 − (1 − 0.3)^3 = 0.657 for 3 fully
        // unmarked bits (bitmap is nearly empty, so misses have 3 zero bits).
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.657).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn process_packet_pipeline_limits_when_loaded() {
        // Build a filter with very low thresholds so modest traffic
        // saturates the policy.
        let config = BitmapFilterConfig::builder()
            .drop_policy(DropPolicy::new(1_000.0, 10_000.0).unwrap())
            .rng_seed(7)
            .build()
            .unwrap();
        let mut f = BitmapFilter::new(config);
        // Outbound chatter to drive throughput above H.
        for i in 0..200u32 {
            let t = Timestamp::from_micros(i as u64 * 10_000);
            let pkt = Packet::tcp(t, out_tuple(42000), TcpFlags::ACK, vec![0u8; 1000]);
            assert_eq!(f.process_packet(&pkt, Direction::Outbound), Verdict::Pass);
        }
        let now = Timestamp::from_secs(2.0);
        assert!(f.drop_probability(now) > 0.99, "policy should saturate");
        let pkt = Packet::tcp(now, unsolicited(51000), TcpFlags::SYN, &[][..]);
        assert_eq!(f.process_packet(&pkt, Direction::Inbound), Verdict::Drop);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| {
            let config = BitmapFilterConfig::builder()
                .rng_seed(seed)
                .build()
                .unwrap();
            let mut f = BitmapFilter::new(config);
            (0..200u16)
                .map(|i| f.check_inbound(&unsolicited(1024 + i), Timestamp::ZERO, 0.5))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2)); // different seed, different draws
    }

    #[test]
    fn draws_do_not_depend_on_interleaved_flows() {
        // The same unsolicited packet must get the same verdict whether
        // or not unrelated flows were checked before it — the property
        // that makes sharded runs equal sequential runs.
        let config = || BitmapFilterConfig::builder().rng_seed(11).build().unwrap();
        let t = Timestamp::from_secs(1.0);
        let mut alone = BitmapFilter::new(config());
        let expected: Vec<Verdict> = (0..100u16)
            .map(|i| alone.check_inbound(&unsolicited(2000 + i), t, 0.5))
            .collect();
        let mut interleaved = BitmapFilter::new(config());
        let got: Vec<Verdict> = (0..100u16)
            .map(|i| {
                // Unrelated flow checked in between must not shift draws.
                interleaved.check_inbound(&unsolicited(30000 + i), t, 0.5);
                interleaved.check_inbound(&unsolicited(2000 + i), t, 0.5)
            })
            .collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn hole_punching_admits_other_remote_port() {
        let config = BitmapFilterConfig::builder()
            .hole_punching(true)
            .build()
            .unwrap();
        let mut f = BitmapFilter::new(config);
        let t = Timestamp::from_secs(0.0);
        // Client 10.0.0.5:40000 talked to 203.0.113.9:80 …
        f.observe_outbound(&out_tuple(40000), t);
        // … so an inbound packet from 203.0.113.9 from ANY source port to
        // that client endpoint is admitted.
        let from_other_port = FiveTuple::new(
            Protocol::Tcp,
            "203.0.113.9:9999".parse().unwrap(),
            "10.0.0.5:40000".parse().unwrap(),
        );
        assert_eq!(f.check_inbound(&from_other_port, t, 1.0), Verdict::Pass);

        // Without hole punching the same packet is dropped.
        let mut strict = filter();
        strict.observe_outbound(&out_tuple(40000), t);
        assert_eq!(
            strict.check_inbound(&from_other_port, t, 1.0),
            Verdict::Drop
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut f = filter();
        let t = Timestamp::from_secs(1.0);
        f.observe_outbound(&out_tuple(40000), t);
        f.check_inbound(&unsolicited(50000), t, 1.0);
        f.reset();
        assert_eq!(f.stats(), FilterStats::default());
        assert_eq!(
            f.check_inbound(&out_tuple(40000).inverse(), t, 1.0),
            Verdict::Drop
        );
    }

    #[test]
    fn stats_count_each_path() {
        let mut f = filter();
        let t = Timestamp::from_secs(0.0);
        f.observe_outbound(&out_tuple(1), t);
        f.check_inbound(&out_tuple(1).inverse(), t, 1.0); // hit
        f.check_inbound(&unsolicited(2), t, 1.0); // miss + drop
        f.check_inbound(&unsolicited(3), t, 0.0); // miss + pass
        let s = f.stats();
        assert_eq!(s.outbound_packets, 1);
        assert_eq!(s.inbound_packets, 3);
        assert_eq!(s.inbound_hits, 1);
        assert_eq!(s.inbound_misses, 2);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn merge_sums_packets_and_maxes_rotations() {
        let mut a = FilterStats {
            outbound_packets: 10,
            inbound_packets: 5,
            inbound_hits: 3,
            inbound_misses: 2,
            dropped: 1,
            fail_open_passes: 1,
            rotations: 4,
        };
        let b = FilterStats {
            outbound_packets: 1,
            inbound_packets: 7,
            inbound_hits: 4,
            inbound_misses: 3,
            dropped: 2,
            fail_open_passes: 2,
            rotations: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FilterStats {
                outbound_packets: 11,
                inbound_packets: 12,
                inbound_hits: 7,
                inbound_misses: 5,
                dropped: 3,
                fail_open_passes: 3,
                rotations: 4,
            }
        );
    }

    #[test]
    fn fail_open_passes_everything_until_armed() {
        let config = BitmapFilterConfig::builder()
            .fail_mode(FailMode::Open)
            .build()
            .unwrap();
        let mut f = BitmapFilter::new(config);
        // First packet at t=1 anchors warm-up: arms at 1 + T_e = 21 s.
        assert_eq!(
            f.check_inbound(&unsolicited(50000), Timestamp::from_secs(1.0), 1.0),
            Verdict::Pass
        );
        assert_eq!(f.armed_at(), Some(Timestamp::from_secs(21.0)));
        assert!(!f.is_armed(Timestamp::from_secs(20.9)));
        assert_eq!(
            f.check_inbound(&unsolicited(50001), Timestamp::from_secs(20.9), 1.0),
            Verdict::Pass
        );
        assert_eq!(f.stats().fail_open_passes, 2);
        assert_eq!(f.stats().dropped, 0);
        // Past the arming time the same traffic drops.
        assert!(f.is_armed(Timestamp::from_secs(21.0)));
        assert_eq!(
            f.check_inbound(&unsolicited(50002), Timestamp::from_secs(21.5), 1.0),
            Verdict::Drop
        );
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.stats().fail_open_passes, 2);
    }

    #[test]
    fn fail_closed_is_armed_immediately() {
        let mut f = filter();
        assert!(f.is_armed(Timestamp::ZERO));
        assert_eq!(
            f.check_inbound(&unsolicited(50000), Timestamp::ZERO, 1.0),
            Verdict::Drop
        );
        assert_eq!(f.stats().fail_open_passes, 0);
    }

    #[test]
    fn snapshot_restores_exact_state() {
        let mut f = filter();
        let t = Timestamp::from_secs(1.0);
        f.observe_outbound(&out_tuple(40000), t);
        f.check_inbound(&unsolicited(50000), t, 1.0);
        f.advance(Timestamp::from_secs(6.0));
        let watermark = Timestamp::from_secs(6.0);
        let bytes = f.snapshot_bytes(watermark);

        let mut restored = filter();
        let outcome = restored
            .restore_bytes(&bytes, watermark, f.config().expiry_timer())
            .unwrap();
        assert_eq!(outcome, crate::RestoreOutcome::Warm);
        assert_eq!(restored.stats(), f.stats());
        assert_eq!(restored.bitmap(), f.bitmap());
        // The restored filter recognizes the pre-crash flow.
        assert_eq!(
            restored.check_inbound(&out_tuple(40000).inverse(), watermark, 1.0),
            Verdict::Pass
        );
    }

    #[test]
    fn stale_snapshot_restores_stats_but_goes_cold() {
        let config = BitmapFilterConfig::builder()
            .fail_mode(FailMode::Open)
            .build()
            .unwrap();
        let mut f = BitmapFilter::new(config.clone());
        let t = Timestamp::from_secs(1.0);
        f.observe_outbound(&out_tuple(40000), t);
        let bytes = f.snapshot_bytes(t);

        // Restore far beyond T_e = 20 s: marks would all have expired.
        let late = Timestamp::from_secs(300.0);
        let mut restored = BitmapFilter::new(config);
        let outcome = restored
            .restore_bytes(&bytes, late, restored.config().expiry_timer())
            .unwrap();
        assert_eq!(outcome, crate::RestoreOutcome::Cold);
        // Stats survived; bitmap memory did not.
        assert_eq!(restored.stats().outbound_packets, 1);
        assert_eq!(restored.bitmap().utilization(), 0.0);
        // Warm-up grace re-anchored at the restore time.
        assert_eq!(
            restored.armed_at(),
            Some(late + restored.config().expiry_timer())
        );
        assert_eq!(
            restored.check_inbound(&unsolicited(50000), late, 1.0),
            Verdict::Pass
        );
    }

    #[test]
    fn snapshot_rejects_mismatched_config() {
        let f = filter();
        let bytes = f.snapshot_bytes(Timestamp::ZERO);
        let other = BitmapFilterConfig::builder().rng_seed(1).build().unwrap();
        let mut restored = BitmapFilter::new(other);
        assert!(matches!(
            restored.restore_bytes(&bytes, Timestamp::ZERO, TimeDelta::from_secs(20.0)),
            Err(SnapshotError::ConfigMismatch("rng_seed"))
        ));
    }

    #[test]
    fn snapshot_rejects_wrong_kind_and_corruption() {
        let f = filter();
        let watermark = Timestamp::ZERO;
        let mut bytes = f.snapshot_bytes(watermark);
        // Corrupt one payload byte.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let mut restored = filter();
        assert!(restored
            .restore_bytes(&bytes, watermark, TimeDelta::from_secs(20.0))
            .is_err());
    }

    #[test]
    fn restored_filter_produces_identical_verdicts() {
        // The bar for warm restart: post-restore verdicts must be
        // bit-for-bit the verdicts the uninterrupted filter produces.
        let mut live = filter();
        for i in 0..50u16 {
            live.observe_outbound(&out_tuple(30000 + i), Timestamp::from_secs(i as f64 * 0.1));
        }
        let watermark = Timestamp::from_secs(5.0);
        live.advance(watermark);
        let bytes = live.snapshot_bytes(watermark);
        let mut restored = filter();
        restored
            .restore_bytes(&bytes, watermark, TimeDelta::from_secs(20.0))
            .unwrap();
        for i in 0..200u16 {
            let t = Timestamp::from_secs(5.0 + i as f64 * 0.05);
            let probe = if i % 3 == 0 {
                out_tuple(30000 + (i % 50)).inverse()
            } else {
                unsolicited(1024 + i)
            };
            assert_eq!(
                live.check_inbound(&probe, t, 0.5),
                restored.check_inbound(&probe, t, 0.5),
                "diverged at probe {i}"
            );
        }
        assert_eq!(live.stats(), restored.stats());
    }

    fn tiny_overload_filter(vector_bits: u32, policy: crate::OverloadPolicy) -> BitmapFilter {
        let config = BitmapFilterConfig::builder()
            .vector_bits(vector_bits)
            .build()
            .unwrap();
        BitmapFilter::new(config).with_overload_policy(policy)
    }

    #[test]
    fn overload_ladder_escalates_from_outbound_marks() {
        use crate::{OverloadPolicy, OverloadState};
        // 2^4 = 16-bit vectors saturate after a handful of marks.
        let mut f = tiny_overload_filter(4, OverloadPolicy::balanced());
        assert_eq!(f.overload_state(), OverloadState::Normal);
        let t = Timestamp::from_secs(1.0);
        for i in 0..50u16 {
            f.observe_outbound(&out_tuple(30000 + i), t);
        }
        assert_eq!(f.overload_state(), OverloadState::Saturated);
        assert!(f.overload().transitions() >= 1);
        // A marked flow still passes while saturated (structural: the
        // probe hit returns before any drop draw).
        assert_eq!(
            f.check_inbound(&out_tuple(30000).inverse(), t, 1.0),
            Verdict::Pass
        );
    }

    #[test]
    fn saturated_ladder_doubles_rotation_rate() {
        use crate::{OverloadPolicy, OverloadState};
        let mut f = tiny_overload_filter(4, OverloadPolicy::balanced());
        let t = Timestamp::from_secs(1.0);
        for i in 0..50u16 {
            f.observe_outbound(&out_tuple(30000 + i), t);
        }
        assert_eq!(f.overload_state(), OverloadState::Saturated);
        // One scheduled tick at 5 s performs the scheduled rotation plus
        // one early rotation.
        f.advance(Timestamp::from_secs(5.5));
        assert_eq!(f.stats().rotations, 2);
        assert_eq!(f.overload().early_rotations(), 1);
    }

    #[test]
    fn pressure_clamp_drops_unmarked_at_pd_zero() {
        use crate::OverloadPolicy;
        // Raise the Saturated threshold out of reach so the ladder holds
        // at Pressure (clamp 0.5) for a ~0.9 fill.
        let policy = OverloadPolicy::parse("balanced,saturated=0.99").unwrap();
        let mut armed = tiny_overload_filter(8, policy);
        let mut off = tiny_overload_filter(8, OverloadPolicy::off());
        let t = Timestamp::from_secs(1.0);
        for i in 0..200u16 {
            armed.observe_outbound(&out_tuple(20000 + i), t);
            off.observe_outbound(&out_tuple(20000 + i), t);
        }
        assert_eq!(armed.overload_state(), crate::OverloadState::Pressure);
        let mut armed_drops = 0;
        let mut off_drops = 0;
        for i in 0..500u16 {
            // P_d = 0: absent the ladder, every miss passes.
            if armed.check_inbound(&unsolicited(1024 + i), t, 0.0) == Verdict::Drop {
                armed_drops += 1;
            }
            if off.check_inbound(&unsolicited(1024 + i), t, 0.0) == Verdict::Drop {
                off_drops += 1;
            }
        }
        assert_eq!(off_drops, 0, "no clamp without the ladder");
        assert!(armed_drops > 0, "Pressure clamp must shed unmarked flows");
    }

    #[test]
    fn reset_returns_ladder_to_normal() {
        use crate::{OverloadPolicy, OverloadState};
        let mut f = tiny_overload_filter(4, OverloadPolicy::balanced());
        let t = Timestamp::from_secs(1.0);
        for i in 0..50u16 {
            f.observe_outbound(&out_tuple(30000 + i), t);
        }
        assert_eq!(f.overload_state(), OverloadState::Saturated);
        f.reset();
        assert_eq!(f.overload_state(), OverloadState::Normal);
        assert_eq!(f.overload().transitions(), 0);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let s = FilterStats {
            outbound_packets: 2,
            inbound_packets: 3,
            inbound_hits: 1,
            inbound_misses: 2,
            dropped: 1,
            fail_open_passes: 1,
            rotations: 9,
        };
        let mut merged = s;
        merged.merge(&FilterStats::default());
        assert_eq!(merged, s);
        let mut from_default = FilterStats::default();
        from_default.merge(&s);
        assert_eq!(from_default, s);
    }
}
