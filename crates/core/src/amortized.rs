//! Amortized rotation: O(1) worst-case per-packet latency.
//!
//! The paper notes that `b.rotate` — zeroing an entire `N`-bit vector —
//! is "the most time consuming operation" (§5.2). On a software router a
//! 2^24-bit vector is a 2 MiB memset executed inline every `Δt`, a
//! latency spike in the forwarding path.
//!
//! [`AmortizedBitmap`] removes the spike with one spare vector (`k+1`
//! physical vectors, `k` active): at rotation the pre-cleared spare
//! *swaps in* for the expiring vector in O(1), and the expired vector
//! becomes the new spare, zeroed incrementally — a bounded chunk per
//! packet — during the following interval. Because a freshly cleared
//! vector and a freshly swapped-in empty vector are indistinguishable,
//! the verdict semantics are **bit-for-bit identical** to [`Bitmap`]
//! (property-tested in `tests/proptest_core.rs`), at the cost of `N/8`
//! extra bytes.
//!
//! [`Bitmap`]: crate::Bitmap

use crate::{BitVec, HashFamily};
use serde::{Deserialize, Serialize};

/// Words zeroed per [`AmortizedBitmap::clear_some`] call by default —
/// 4 KiB per packet, far more than needed at any realistic packet rate.
pub const DEFAULT_CLEAR_CHUNK_WORDS: usize = 512;

/// A `{k × N}` bitmap with O(1)-worst-case rotation.
///
/// Drop-in equivalent of [`Bitmap`](crate::Bitmap): `mark`, `lookup`,
/// and `rotate` have identical observable behaviour; the O(N) clearing
/// work happens in the background via [`clear_some`](Self::clear_some)
/// (called automatically by `mark`). If the spare is still dirty when
/// the next rotation arrives — possible only at extremely low packet
/// rates — the remaining words are cleared synchronously at that
/// rotation, which is never worse than the plain bitmap.
///
/// # Examples
///
/// ```
/// use upbound_core::AmortizedBitmap;
///
/// let mut bm = AmortizedBitmap::new(4, 12, 3);
/// bm.mark(b"conn");
/// assert!(bm.lookup(b"conn"));
/// for _ in 0..4 {
///     bm.rotate();
/// }
/// assert!(!bm.lookup(b"conn"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmortizedBitmap {
    /// `k` active vectors followed by the spare at index `k`.
    vectors: Vec<BitVec>,
    /// Permutation: `slot[i]` is the physical index of ring position `i`;
    /// `slot[k]` is the spare.
    slot: Vec<usize>,
    hashes: HashFamily,
    idx: usize,
    rotations: u64,
    /// Next word of the spare to zero; `spare_words` when fully clean.
    clear_watermark: usize,
    chunk_words: usize,
}

impl AmortizedBitmap {
    /// Creates a `{k × 2^n_bits}` amortized bitmap with `m` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or on [`HashFamily::new`] bounds.
    pub fn new(k: usize, n_bits: u32, m: usize) -> Self {
        Self::with_chunk_words(k, n_bits, m, DEFAULT_CLEAR_CHUNK_WORDS)
    }

    /// Creates the bitmap with an explicit background-clearing chunk
    /// size (words per `clear_some` call).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `chunk_words == 0`, or on hash-family bounds.
    pub fn with_chunk_words(k: usize, n_bits: u32, m: usize, chunk_words: usize) -> Self {
        assert!(k >= 2, "need at least two bit vectors, got {k}");
        assert!(chunk_words > 0, "chunk must clear at least one word");
        let hashes = HashFamily::new(m, n_bits);
        let n = hashes.table_size();
        Self {
            vectors: (0..=k).map(|_| BitVec::new(n)).collect(),
            slot: (0..=k).collect(),
            hashes,
            idx: 0,
            rotations: 0,
            clear_watermark: n.div_ceil(64), // spare starts clean
            chunk_words,
        }
    }

    /// Number of active bit vectors `k`.
    pub fn k(&self) -> usize {
        self.vectors.len() - 1
    }

    /// Bits per vector `N`.
    pub fn vector_len(&self) -> usize {
        self.vectors[0].len()
    }

    /// Total rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// `true` when the spare still has unzeroed words.
    pub fn spare_dirty(&self) -> bool {
        self.clear_watermark < self.spare_words()
    }

    fn spare_words(&self) -> usize {
        self.vector_len().div_ceil(64)
    }

    /// Memory of the bit storage: `((k+1) × N)/8` bytes — one vector more
    /// than the plain bitmap.
    pub fn memory_bytes(&self) -> usize {
        self.vectors.iter().map(BitVec::memory_bytes).sum()
    }

    /// Marks `key` in all `k` **active** vectors, then performs one
    /// background-clearing chunk on the spare.
    pub fn mark(&mut self, key: &[u8]) {
        for bit in self.hashes.indexes(key) {
            for ring in 0..self.k() {
                let phys = self.slot[ring];
                self.vectors[phys].set(bit);
            }
        }
        self.clear_some(self.chunk_words);
    }

    /// Looks `key` up in the current active vector only.
    pub fn lookup(&self, key: &[u8]) -> bool {
        let current = &self.vectors[self.slot[self.idx]];
        self.hashes.indexes(key).all(|bit| current.get(bit))
    }

    /// Zeroes up to `words` words of the spare; returns how many were
    /// actually cleared. O(words), called automatically by `mark`.
    pub fn clear_some(&mut self, words: usize) -> usize {
        let spare_phys = self.slot[self.k()];
        let total = self.spare_words();
        let end = (self.clear_watermark + words).min(total);
        let cleared = end - self.clear_watermark;
        if cleared > 0 {
            self.vectors[spare_phys].clear_words(self.clear_watermark, end);
            self.clear_watermark = end;
        }
        cleared
    }

    /// O(1) rotation: finishes any leftover spare clearing (normally a
    /// no-op), swaps the clean spare in for the expiring vector, and
    /// schedules the expired vector for background zeroing. Returns the
    /// new current ring index.
    pub fn rotate(&mut self) -> usize {
        // Force-complete if the interval had too few packets to finish.
        let remaining = self.spare_words() - self.clear_watermark;
        if remaining > 0 {
            self.clear_some(remaining);
        }
        let last = self.idx;
        self.idx = (self.idx + 1) % self.k();
        let k = self.k();
        self.slot.swap(last, k);
        // The vector now sitting in the spare slot is dirty.
        // NOTE: BitVec tracks its own ones-count, but the swapped-out
        // vector's count reflects real marks; clearing resets it.
        self.clear_watermark = 0;
        self.rotations += 1;
        self.idx
    }

    /// Utilization of the current active vector.
    pub fn utilization(&self) -> f64 {
        self.vectors[self.slot[self.idx]].utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bitmap;

    #[test]
    fn behaves_like_plain_bitmap_on_a_fixed_script() {
        let mut plain = Bitmap::new(4, 10, 3);
        let mut fast = AmortizedBitmap::new(4, 10, 3);
        let keys: Vec<[u8; 4]> = (0..200u32).map(|i| i.to_le_bytes()).collect();
        for (step, key) in keys.iter().enumerate() {
            plain.mark(key);
            fast.mark(key);
            if step % 17 == 16 {
                plain.rotate();
                fast.rotate();
            }
            // Every key's visibility matches at every step.
            for probe in &keys {
                assert_eq!(
                    plain.lookup(probe),
                    fast.lookup(probe),
                    "step {step} probe {probe:?}"
                );
            }
        }
    }

    #[test]
    fn mark_survives_k_minus_one_rotations() {
        let mut bm = AmortizedBitmap::new(4, 12, 3);
        bm.mark(b"conn");
        for r in 1..4 {
            bm.rotate();
            assert!(bm.lookup(b"conn"), "lost after {r}");
        }
        bm.rotate();
        assert!(!bm.lookup(b"conn"));
    }

    #[test]
    fn background_clearing_progresses_with_marks() {
        // Small chunk so progress is observable.
        let mut bm = AmortizedBitmap::with_chunk_words(2, 12, 2, 1);
        bm.mark(b"a");
        bm.rotate(); // spare (just-expired vector) is now dirty
        assert!(bm.spare_dirty());
        let total_words = (1usize << 12) / 64;
        for _ in 0..total_words {
            bm.mark(b"b"); // each mark clears one word
        }
        assert!(!bm.spare_dirty());
    }

    #[test]
    fn rotation_with_dirty_spare_force_completes() {
        let mut bm = AmortizedBitmap::with_chunk_words(3, 12, 2, 1);
        bm.mark(b"x");
        bm.rotate(); // dirty spare, no marks afterward
        assert!(bm.spare_dirty());
        bm.rotate(); // must force-complete the clear
        bm.mark(b"y");
        assert!(bm.lookup(b"y"));
        // "x" marked before 2 rotations with k=3: still visible.
        assert!(bm.lookup(b"x"));
        bm.rotate();
        assert!(!bm.lookup(b"x"));
    }

    #[test]
    fn stale_bits_never_leak_from_the_spare() {
        // Fill a vector heavily, expire it, let it rest dirty, then bring
        // it back: nothing from before the expiry may be visible.
        let mut bm = AmortizedBitmap::with_chunk_words(2, 10, 2, 4);
        let old_keys: Vec<[u8; 4]> = (0..300u32).map(|i| i.to_le_bytes()).collect();
        for k in &old_keys {
            bm.mark(k);
        }
        bm.rotate(); // current vector expires into the spare
        bm.rotate(); // spare force-cleared, swaps back in; also clears all old state (k=2)
        for k in &old_keys {
            assert!(!bm.lookup(k), "stale key {k:?} leaked");
        }
    }

    #[test]
    fn memory_is_one_extra_vector() {
        let plain = Bitmap::new(4, 20, 3);
        let fast = AmortizedBitmap::new(4, 20, 3);
        assert_eq!(
            fast.memory_bytes(),
            plain.memory_bytes() + plain.memory_bytes() / 4
        );
        assert_eq!(fast.k(), 4);
        assert_eq!(fast.vector_len(), 1 << 20);
    }

    #[test]
    fn utilization_tracks_current_vector() {
        let mut bm = AmortizedBitmap::new(4, 10, 2);
        assert_eq!(bm.utilization(), 0.0);
        bm.mark(b"k");
        assert!(bm.utilization() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two bit vectors")]
    fn single_vector_rejected() {
        let _ = AmortizedBitmap::new(1, 8, 1);
    }
}
