//! The `&self` twin of [`FilterEngine`](crate::FilterEngine): tick
//! scheduling, uplink bookkeeping, `P_d` derivation and drop draws with
//! atomic state, so concurrent deciders never take a lock between ticks.
//!
//! [`BitmapFilter`](crate::BitmapFilter) embeds a [`SharedEngine`]; the
//! SPI baseline (whose flow table is inherently `&mut`) keeps the
//! original [`FilterEngine`](crate::FilterEngine). Observer dispatch
//! stays with the filter — the engine here is pure clockwork, which is
//! what lets every method take `&self`.

use crate::engine::{unit_draw, Uplink, MAX_TICK_CATCHUP};
use crate::red::DropPolicy;
use crate::ThroughputMonitor;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use upbound_net::{TimeDelta, Timestamp};

/// Tick scheduling, uplink throughput bookkeeping, `P_d` derivation and
/// deterministic drop draws — all through `&self`.
///
/// The tick phase lives in two atomics (`ticks`, `next_tick`) guarded by
/// a mutex that only the thread *performing* a due tick takes; the
/// packet-rate fast path is a single `Acquire` load comparing `now`
/// against `next_tick`. Ticks come once per `Δt` (seconds) while
/// packets come millions per second, so the lock is uncontended in any
/// sane configuration and absent from the hot path entirely.
#[derive(Debug)]
pub(crate) struct SharedEngine {
    drop_policy: DropPolicy,
    seed: u64,
    tick_every: TimeDelta,
    /// Microseconds of the next due tick.
    next_tick: AtomicU64,
    /// Ticks performed (the rotation epoch reported to observers).
    ticks: AtomicU64,
    /// Serializes tick execution; never taken between ticks.
    tick_lock: Mutex<()>,
    uplink: Uplink,
}

impl SharedEngine {
    /// Creates an engine ticking every `tick_every`, measuring uplink
    /// throughput with `monitor`, deriving `P_d` from `drop_policy`, and
    /// seeding drop draws with `seed`.
    pub(crate) fn new(
        tick_every: TimeDelta,
        monitor: ThroughputMonitor,
        drop_policy: DropPolicy,
        seed: u64,
    ) -> Self {
        Self {
            drop_policy,
            seed,
            tick_every,
            next_tick: AtomicU64::new((Timestamp::ZERO + tick_every).as_micros()),
            ticks: AtomicU64::new(0),
            tick_lock: Mutex::new(()),
            uplink: Uplink::Local(monitor),
        }
    }

    /// Rebinds the uplink measurement to a monitor shared with sibling
    /// shards (see [`FilterEngine::share_uplink`](crate::FilterEngine::share_uplink)).
    pub(crate) fn share_uplink(&mut self, uplink: Arc<ThroughputMonitor>) {
        self.uplink = Uplink::Shared(uplink);
    }

    /// The uplink throughput monitor (owned or shared).
    pub(crate) fn monitor(&self) -> &ThroughputMonitor {
        self.uplink.monitor()
    }

    /// Ticks performed so far.
    pub(crate) fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }

    /// The drop policy in force.
    pub(crate) fn drop_policy(&self) -> DropPolicy {
        self.drop_policy
    }

    /// Replaces the drop policy (runtime reconfiguration). Exclusive
    /// access guarantees no decider reads a half-swapped policy; the
    /// dataplane applies this between batches at a rotation boundary.
    pub(crate) fn set_drop_policy(&mut self, policy: DropPolicy) {
        self.drop_policy = policy;
    }

    /// `true` when at least one tick is due at or before `now` — the
    /// single-load guard the per-packet path pays between ticks.
    #[inline]
    pub(crate) fn tick_due(&self, now: Timestamp) -> bool {
        now.as_micros() >= self.next_tick.load(Ordering::Acquire)
    }

    /// Records `bytes` of uplink traffic at time `now`.
    pub(crate) fn record_uplink(&self, now: Timestamp, bytes: u64) {
        self.uplink.monitor().record(now, bytes);
    }

    /// The drop probability Equation 1 yields for the currently measured
    /// uplink throughput.
    pub(crate) fn drop_probability(&self, now: Timestamp) -> f64 {
        self.drop_policy
            .drop_probability(self.uplink.monitor().rate_bps(now))
    }

    /// Applies every tick due at or before `now`, calling
    /// `on_tick(at, ticks_after)` with the tick's scheduled timestamp
    /// and the tick count *including* that tick — the same values
    /// [`FilterEngine::advance`](crate::FilterEngine::advance) exposes.
    ///
    /// Concurrent callers race benignly: one thread takes the tick lock
    /// and performs the due ticks, the rest re-check under the lock and
    /// find nothing due. Backward timestamps never tick, and far-future
    /// arrears beyond `MAX_TICK_CATCHUP` are skipped in O(1) exactly
    /// like the exclusive engine.
    pub(crate) fn advance(&self, now: Timestamp, mut on_tick: impl FnMut(Timestamp, u64)) {
        if !self.tick_due(now) {
            return;
        }
        let _guard = self.tick_lock.lock();
        let every = self.tick_every.as_micros();
        let mut next = self.next_tick.load(Ordering::Acquire);
        if now.as_micros() >= next {
            let due = (now.as_micros() - next) / every + 1;
            if due > MAX_TICK_CATCHUP {
                let skipped = due - MAX_TICK_CATCHUP;
                self.ticks.fetch_add(skipped, Ordering::Relaxed);
                next += every * skipped;
            }
        }
        while now.as_micros() >= next {
            let at = Timestamp::from_micros(next);
            let ticks_after = self.ticks.load(Ordering::Relaxed) + 1;
            on_tick(at, ticks_after);
            self.ticks.store(ticks_after, Ordering::Release);
            next += every;
            self.next_tick.store(next, Ordering::Release);
        }
    }

    /// One deterministic drop draw (see
    /// [`FilterEngine::drop_draw`](crate::FilterEngine::drop_draw) — the
    /// function is identical, so sharded, concurrent and sequential runs
    /// stay verdict-for-verdict equal).
    pub(crate) fn drop_draw(&self, key_bytes: &[u8], now: Timestamp, draw: u32, p_d: f64) -> bool {
        if p_d <= 0.0 {
            return false;
        }
        if p_d >= 1.0 {
            return true;
        }
        unit_draw(self.seed, key_bytes, now, draw) < p_d
    }

    /// Exports the tick phase `(ticks, next_tick)` for snapshot encoding.
    pub(crate) fn tick_phase(&self) -> (u64, Timestamp) {
        let _guard = self.tick_lock.lock();
        (
            self.ticks.load(Ordering::Relaxed),
            Timestamp::from_micros(self.next_tick.load(Ordering::Relaxed)),
        )
    }

    /// Restores a tick phase captured by [`tick_phase`](Self::tick_phase).
    pub(crate) fn restore_tick_phase(&mut self, ticks: u64, next_tick: Timestamp) {
        *self.ticks.get_mut() = ticks;
        *self.next_tick.get_mut() = next_tick.as_micros();
    }

    /// Clears tick phase and the uplink monitor (shared-uplink caveat as
    /// in [`FilterEngine::reset`](crate::FilterEngine::reset)).
    pub(crate) fn reset(&mut self) {
        *self.ticks.get_mut() = 0;
        *self.next_tick.get_mut() = (Timestamp::ZERO + self.tick_every).as_micros();
        self.uplink.monitor().reset();
    }
}

impl Clone for SharedEngine {
    fn clone(&self) -> Self {
        let (ticks, next_tick) = self.tick_phase();
        Self {
            drop_policy: self.drop_policy,
            seed: self.seed,
            tick_every: self.tick_every,
            next_tick: AtomicU64::new(next_tick.as_micros()),
            ticks: AtomicU64::new(ticks),
            tick_lock: Mutex::new(()),
            uplink: self.uplink.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(seed: u64) -> SharedEngine {
        SharedEngine::new(
            TimeDelta::from_secs(5.0),
            ThroughputMonitor::new(TimeDelta::from_secs(1.0), 20),
            DropPolicy::drop_all(),
            seed,
        )
    }

    #[test]
    fn advance_matches_exclusive_engine_semantics() {
        let e = engine(0);
        let mut fired = Vec::new();
        e.advance(Timestamp::from_secs(17.0), |at, ticks| {
            fired.push((at, ticks));
        });
        assert_eq!(
            fired,
            vec![
                (Timestamp::from_secs(5.0), 1),
                (Timestamp::from_secs(10.0), 2),
                (Timestamp::from_secs(15.0), 3),
            ]
        );
        assert_eq!(e.ticks(), 3);
        e.advance(Timestamp::from_secs(17.0), |_, _| panic!("no tick due"));
        e.advance(Timestamp::from_secs(3.0), |_, _| {
            panic!("backward time must not tick")
        });
    }

    #[test]
    fn far_future_advance_is_bounded() {
        let e = engine(0);
        let mut fired = 0u64;
        e.advance(Timestamp::from_secs(1e8), |_, _| fired += 1);
        assert_eq!(fired, MAX_TICK_CATCHUP);
        assert_eq!(e.ticks(), 20_000_000);
        e.advance(Timestamp::from_secs(1e8), |_, _| panic!("no tick due"));
    }

    #[test]
    fn concurrent_advance_ticks_exactly_once() {
        use std::sync::atomic::AtomicU64 as Counter;
        let e = engine(0);
        let fired = Counter::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (e, fired) = (&e, &fired);
                scope.spawn(move || {
                    for s in 1..=40u64 {
                        e.advance(Timestamp::from_secs(s as f64), |_, _| {
                            fired.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // 40 s / 5 s = 8 due ticks, each performed by exactly one thread.
        assert_eq!(fired.load(Ordering::Relaxed), 8);
        assert_eq!(e.ticks(), 8);
    }

    #[test]
    fn draws_match_the_exclusive_engine() {
        use crate::observe::NoopObserver;
        let shared = engine(42);
        let exclusive = crate::FilterEngine::new(
            TimeDelta::from_secs(5.0),
            ThroughputMonitor::new(TimeDelta::from_secs(1.0), 20),
            DropPolicy::drop_all(),
            42,
            NoopObserver,
        );
        let now = Timestamp::from_secs(3.0);
        for i in 0..256u32 {
            let key = i.to_le_bytes();
            assert_eq!(
                shared.drop_draw(&key, now, i % 3, 0.5),
                exclusive.drop_draw(&key, now, i % 3, 0.5),
            );
        }
    }

    #[test]
    fn tick_phase_roundtrips() {
        let mut e = engine(0);
        e.advance(Timestamp::from_secs(12.0), |_, _| {});
        let (ticks, next) = e.tick_phase();
        assert_eq!(ticks, 2);
        let mut restored = engine(0);
        restored.restore_tick_phase(ticks, next);
        assert_eq!(restored.ticks(), 2);
        restored.advance(Timestamp::from_secs(12.0), |_, _| panic!("caught up"));
        e.reset();
        assert_eq!(e.ticks(), 0);
    }
}
