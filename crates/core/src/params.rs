//! Parameter analysis of the paper's §5.1: penetration probability,
//! optimal hash count, and capacity bounds.
//!
//! With `c` active connections in one expiry window, `m` hash functions,
//! and vectors of `N` bits:
//!
//! * Eq. 2: `p = U^m` where `U = b/N` is the current-vector utilization;
//! * Eq. 3: `p ≈ (c·m/N)^m` assuming few hash collisions at low load;
//! * Eq. 5: `m* = N/(e·c)` minimizes Eq. 3;
//! * Eq. 6: at `m*`, reaching penetration `p` requires
//!   `c/N ≤ −1/(e·ln p)`.
//!
//! The worked example of §5.1: `N = 2^20`, `k = 4`, `Δt = 5 s`,
//! `T_e = 20 s` — penetration targets 10%, 5%, 1% admit at most ≈167 K,
//! ≈125 K, ≈83 K active connections, far above the trace's ~15 K; `m = 3`
//! and memory is 512 KiB.

use std::f64::consts::E;

/// Approximate penetration probability of Eq. 3: `(c·m/N)^m`.
///
/// Values above 1 are clamped to 1 (the approximation breaks down once
/// `c·m > N`, where the filter is saturated anyway).
///
/// # Examples
///
/// ```
/// use upbound_core::params::penetration_probability;
///
/// let p = penetration_probability(15_000.0, 1 << 20, 3);
/// assert!(p < 0.001); // the paper's trace load barely dents a 2^20 bitmap
/// ```
pub fn penetration_probability(connections: f64, vector_bits_n: usize, m: usize) -> f64 {
    assert!(connections >= 0.0, "connection count must be >= 0");
    assert!(vector_bits_n > 0 && m > 0, "N and m must be positive");
    ((connections * m as f64) / vector_bits_n as f64)
        .powi(m as i32)
        .min(1.0)
}

/// Exact Bloom false-positive probability
/// `(1 − (1 − 1/N)^(c·m))^m` for comparison with the approximation.
pub fn exact_false_positive(connections: f64, vector_bits_n: usize, m: usize) -> f64 {
    assert!(connections >= 0.0, "connection count must be >= 0");
    assert!(vector_bits_n > 0 && m > 0, "N and m must be positive");
    let n = vector_bits_n as f64;
    (1.0 - (1.0 - 1.0 / n).powf(connections * m as f64)).powi(m as i32)
}

/// The real-valued optimal hash count of Eq. 5: `m* = N/(e·c)`.
///
/// Round to a positive integer for deployment (and clamp to ≥ 1).
///
/// # Panics
///
/// Panics if `connections <= 0`.
pub fn optimal_hash_count(connections: f64, vector_bits_n: usize) -> f64 {
    assert!(connections > 0.0, "need a positive connection count");
    vector_bits_n as f64 / (E * connections)
}

/// The capacity bound of Eq. 6: the maximum number of active connections
/// `c` (within one expiry window) for which penetration probability `p`
/// is achievable at the optimal `m`: `c ≤ −N/(e·ln p)`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn max_connections(p: f64, vector_bits_n: usize) -> f64 {
    assert!(p > 0.0 && p < 1.0, "penetration target must be in (0,1)");
    -(vector_bits_n as f64) / (E * p.ln())
}

/// Expected false-negative bound from the out-in-delay distribution:
/// the fraction of legitimate inbound packets arriving more than `T_e`
/// after their outbound packet. The paper measures 99% of delays under
/// 2.8 s, so any `T_e ≥ 3.61 s` keeps false negatives below 1% (§5.1).
///
/// Given an empirical delay CDF evaluated at `t_e_secs` (fraction of
/// delays ≤ `T_e`), the false-negative rate is simply its complement.
pub fn false_negative_rate(cdf_at_te: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&cdf_at_te),
        "CDF value must be in [0,1]"
    );
    1.0 - cdf_at_te
}

#[cfg(test)]
mod tests {
    use super::*;

    const N20: usize = 1 << 20;

    #[test]
    fn paper_worked_example_capacities() {
        // §5.1: p = 10%, 5%, 1% → c ≤ ~167K, ~125K, ~83K for N = 2^20.
        let c10 = max_connections(0.10, N20);
        let c05 = max_connections(0.05, N20);
        let c01 = max_connections(0.01, N20);
        assert!((c10 / 1000.0 - 167.0).abs() < 1.0, "c10 = {c10}");
        assert!((c05 / 1000.0 - 128.0).abs() < 4.0, "c05 = {c05}");
        assert!((c01 / 1000.0 - 83.0).abs() < 1.0, "c01 = {c01}");
    }

    #[test]
    fn optimal_m_for_paper_trace_is_small() {
        // ~15K active connections in a T_e window, N = 2^20:
        // m* = 2^20/(e·15000) ≈ 25.7 — but at the *capacity* loads the
        // paper sizes for (~125K), m* ≈ 3, matching the paper's choice.
        let m_at_capacity = optimal_hash_count(125_000.0, N20);
        assert!((m_at_capacity - 3.0).abs() < 0.2, "m* = {m_at_capacity}");
    }

    #[test]
    fn penetration_is_monotone_in_connections() {
        let mut prev = 0.0;
        for c in [0.0, 1_000.0, 10_000.0, 100_000.0, 300_000.0] {
            let p = penetration_probability(c, N20, 3);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn penetration_clamps_to_one() {
        assert_eq!(penetration_probability(1e9, 1024, 4), 1.0);
    }

    #[test]
    fn approximation_tracks_exact_formula_at_low_load() {
        for &c in &[1_000.0, 5_000.0, 15_000.0] {
            let approx = penetration_probability(c, N20, 3);
            let exact = exact_false_positive(c, N20, 3);
            // Eq. 3 ignores hash collisions, so it slightly overestimates;
            // at these loads the two agree to within ~10%.
            let rel = (approx - exact).abs() / exact.max(1e-300);
            assert!(rel < 0.10, "c={c}: approx {approx:e} vs exact {exact:e}");
            assert!(approx >= exact, "approximation should be an upper bound");
        }
    }

    #[test]
    fn optimal_m_minimizes_penetration() {
        let c = 100_000.0;
        let m_star = optimal_hash_count(c, N20).round() as usize;
        let p_star = penetration_probability(c, N20, m_star);
        for m in [m_star.saturating_sub(1).max(1), m_star + 1] {
            if m != m_star {
                assert!(
                    penetration_probability(c, N20, m) >= p_star,
                    "m={m} beats m*={m_star}"
                );
            }
        }
    }

    #[test]
    fn capacity_bound_is_consistent_with_penetration() {
        // At c = max_connections(p), using the optimal m, the achieved
        // penetration equals p (within rounding of m to a real number).
        let p_target = 0.05;
        let c = max_connections(p_target, N20);
        let m = optimal_hash_count(c, N20);
        let achieved = ((c * m) / N20 as f64).powf(m);
        assert!((achieved - p_target).abs() / p_target < 0.02);
    }

    #[test]
    fn false_negative_matches_paper_bound() {
        // 99% of delays under the expiry timer → <1% false negatives.
        assert!((false_negative_rate(0.99) - 0.01).abs() < 1e-12);
        assert_eq!(false_negative_rate(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "penetration target must be in (0,1)")]
    fn capacity_rejects_bad_target() {
        let _ = max_connections(1.5, N20);
    }
}
