//! Filter observation hooks.
//!
//! [`BitmapFilter`](crate::BitmapFilter) (and the SPI filter in
//! `upbound-spi`) is generic over a [`FilterObserver`] that gets called
//! on every packet decision and every rotation. The default observer is
//! [`NoopObserver`], whose empty inline methods monomorphize away — the
//! uninstrumented hot path pays nothing for the hook (verified by the
//! `filter_perf` benchmark's `noop_observer_overhead` group).
//!
//! [`TelemetryObserver`] is the standard production observer: it
//! publishes counters and gauges into an
//! [`upbound_telemetry::Registry`] and appends structured
//! [`FilterEvent`]s to a fixed-capacity ring-buffer journal.

use crate::overload::{OverloadEvent, OverloadState};
use crate::{ThroughputMonitor, Verdict};
use std::sync::Arc;
use upbound_net::{FiveTuple, Timestamp};
use upbound_telemetry::{
    flow_hash, Counter, DropForensics, DropReason, DumpTrigger, EventJournal, FilterEvent,
    FilterEventKind, FlightRecorder, ForensicReason, Gauge, Registry,
};

/// Context handed to [`FilterObserver::on_inbound`] for every inbound
/// packet decision.
///
/// The throughput monitor is passed by reference rather than as a
/// precomputed rate so that observers which ignore it (the common case
/// for sampling observers, and always for [`NoopObserver`]) never pay
/// for the rate computation.
#[derive(Debug)]
pub struct InboundDecision<'a> {
    /// Packet timestamp.
    pub now: Timestamp,
    /// The verdict reached.
    pub verdict: Verdict,
    /// The drop probability `P_d` that was in force.
    pub p_d: f64,
    /// `true` when the tuple was found in filter state (bitmap hit or
    /// flow-table hit); such packets always pass.
    pub known: bool,
    /// Number of independent drop draws the packet was exposed to: the
    /// unmarked hashed bits for the bitmap filter (Algorithm 2), or 1
    /// for an SPI table miss. Zero for hits.
    pub drop_draws: usize,
    /// `true` when the draws said *drop* but the packet passed anyway
    /// because the filter was inside its warm-up grace period
    /// ([`FailMode::Open`](crate::FailMode), not yet armed).
    pub fail_open: bool,
    /// `true` while the filter is inside its warm-up window after a
    /// cold start (either fail mode). Under fail-closed this tags
    /// drops whose real cause is empty post-restart state rather than
    /// genuinely unsolicited traffic.
    pub warming: bool,
    /// The filter key the decision hashed (borrowed; observers that
    /// ignore it pay nothing, forensic observers hash it on drops).
    pub key: &'a [u8],
    /// Bitmap rotation epoch (engine tick count) at decision time.
    pub rotation_epoch: u64,
    /// The filter's uplink throughput monitor.
    pub monitor: &'a ThroughputMonitor,
}

impl InboundDecision<'_> {
    /// Classifies a drop: a hard-limit drop (`P_d >= 1`, the packet is
    /// unsolicited and the policy is saturated) versus a probabilistic
    /// RED-style early drop (`0 < P_d < 1`). `None` for passes.
    pub fn drop_reason(&self) -> Option<DropReason> {
        match self.verdict {
            Verdict::Pass => None,
            Verdict::Drop if self.p_d >= 1.0 => Some(DropReason::UnsolicitedMiss),
            Verdict::Drop => Some(DropReason::RandomEarlyDrop),
        }
    }

    /// Forensics-grade attribution: why this decision is worth a
    /// [`DropForensics`] record. `None` for plain passes.
    ///
    /// Drops during the warm-up window are attributed to
    /// [`ForensicReason::FailClosedWarmup`] (empty post-restart state,
    /// only reachable under fail-closed policy — fail-open passes
    /// instead); would-be drops passed inside a fail-open grace window
    /// are recorded as [`ForensicReason::QuarantineFailOpen`] so the
    /// degraded window stays auditable.
    pub fn forensic_reason(&self) -> Option<ForensicReason> {
        match self.verdict {
            // A hard-limit drop during the warm window is attributable
            // to empty post-restart state; a RED draw is still the
            // draw's doing regardless of warm-up.
            Verdict::Drop if self.p_d >= 1.0 && self.warming => {
                Some(ForensicReason::FailClosedWarmup)
            }
            Verdict::Drop if self.p_d >= 1.0 => Some(ForensicReason::BitmapMiss),
            Verdict::Drop => Some(ForensicReason::PdDraw),
            Verdict::Pass if self.fail_open => Some(ForensicReason::QuarantineFailOpen),
            Verdict::Pass => None,
        }
    }
}

/// Context handed to [`FilterObserver::on_rotation`] when the rotation
/// timer (bitmap) or purge timer (SPI) fires.
#[derive(Debug)]
pub struct RotationEvent<'a> {
    /// The scheduled time of this rotation (not the packet time that
    /// triggered catching up).
    pub now: Timestamp,
    /// Total rotations (or purge sweeps) performed so far, this one
    /// included.
    pub rotations: u64,
    /// The filter's uplink throughput monitor.
    pub monitor: &'a ThroughputMonitor,
    /// The drop probability `P_d` in force at rotation time.
    pub p_d: f64,
}

/// Observation hooks called by the filters.
///
/// All methods have empty default bodies, so an observer only
/// implements what it cares about.
pub trait FilterObserver {
    /// `true` only for [`NoopObserver`]: every hook is a no-op, so the
    /// filter may take concurrent (`&self`) decision paths that skip
    /// observer dispatch entirely. Observers with real hooks keep the
    /// default `false` and are driven exclusively through `&mut` entry
    /// points.
    const IS_NOOP: bool = false;

    /// An outbound packet was observed (always passed).
    #[inline]
    fn on_outbound(&mut self, tuple: &FiveTuple, now: Timestamp) {
        let _ = (tuple, now);
    }

    /// An inbound packet was checked.
    #[inline]
    fn on_inbound(&mut self, decision: &InboundDecision<'_>) {
        let _ = decision;
    }

    /// The rotation (or purge) timer fired.
    #[inline]
    fn on_rotation(&mut self, rotation: &RotationEvent<'_>) {
        let _ = rotation;
    }

    /// The filter (re)started with empty memory at `now`; under
    /// fail-open it suppresses drops until `armed_at`.
    #[inline]
    fn on_cold_start(&mut self, now: Timestamp, armed_at: Timestamp) {
        let _ = (now, armed_at);
    }

    /// The warm-up grace period ended at `now`; drops are armed.
    #[inline]
    fn on_armed(&mut self, now: Timestamp) {
        let _ = now;
    }

    /// The overload ladder changed rung (see [`crate::overload`]).
    #[inline]
    fn on_overload(&mut self, event: &OverloadEvent) {
        let _ = event;
    }
}

/// The zero-cost default observer: every hook is an empty `#[inline]`
/// method, so `BitmapFilter<NoopObserver>` compiles to the same code as
/// a filter without hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl FilterObserver for NoopObserver {
    const IS_NOOP: bool = true;
}

/// Bridges filter events into `upbound-telemetry`: registry-backed
/// counters/gauges plus a ring-buffer journal of [`FilterEvent`]s.
///
/// Metric names follow `upbound_<scope>_<name>`, where `scope` is given
/// at construction (`"core"` for the bitmap filter, `"spi"` for the SPI
/// comparison filter).
#[derive(Debug, Clone)]
pub struct TelemetryObserver {
    journal: EventJournal<FilterEvent>,
    forensics: EventJournal<DropForensics>,
    flight: Option<FlightRecorder>,
    outbound_total: Arc<Counter>,
    inbound_pass_total: Arc<Counter>,
    drops_unsolicited_total: Arc<Counter>,
    drops_red_total: Arc<Counter>,
    rotations_total: Arc<Counter>,
    fail_open_passes_total: Arc<Counter>,
    cold_starts_total: Arc<Counter>,
    warmup_armed_total: Arc<Counter>,
    overload_transitions_total: Arc<Counter>,
    drop_probability: Arc<Gauge>,
    uplink_bps: Arc<Gauge>,
    overload_state: Arc<Gauge>,
}

/// Default number of events the journal retains.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

impl TelemetryObserver {
    /// Registers this observer's metrics under
    /// `upbound_<scope>_*` in `registry` and sizes the event journal.
    ///
    /// # Panics
    ///
    /// Panics if `scope` is not lowercase snake_case, if a metric of
    /// the same name was already registered with a different type, or
    /// if `journal_capacity` is zero.
    pub fn new(registry: &Registry, scope: &str, journal_capacity: usize) -> Self {
        let name = |metric: &str| format!("upbound_{scope}_{metric}");
        TelemetryObserver {
            journal: EventJournal::with_capacity(journal_capacity),
            forensics: EventJournal::with_capacity(journal_capacity),
            flight: None,
            outbound_total: registry.counter(
                &name("outbound_packets_total"),
                "Outbound packets observed (marked and passed)",
            ),
            inbound_pass_total: registry
                .counter(&name("inbound_pass_total"), "Inbound packets passed"),
            drops_unsolicited_total: registry.counter(
                &name("drops_unsolicited_total"),
                "Inbound drops at the hard limit (P_d >= 1): unsolicited misses",
            ),
            drops_red_total: registry.counter(
                &name("drops_red_total"),
                "Inbound drops from random early drop (0 < P_d < 1)",
            ),
            rotations_total: registry.counter(
                &name("rotations_total"),
                "Bitmap rotations (or SPI purge sweeps) performed",
            ),
            fail_open_passes_total: registry.counter(
                &name("fail_open_passes_total"),
                "Would-be drops passed because the filter was in warm-up grace (fail-open)",
            ),
            cold_starts_total: registry.counter(
                &name("cold_starts_total"),
                "Cold starts: fresh or stale-snapshot restarts with empty filter memory",
            ),
            warmup_armed_total: registry.counter(
                &name("warmup_armed_total"),
                "Warm-up grace periods that ended (filter armed)",
            ),
            overload_transitions_total: registry.counter(
                &name("overload_transitions_total"),
                "Overload-ladder rung transitions (saturation sentinel)",
            ),
            drop_probability: registry.gauge(
                &name("drop_probability"),
                "Live drop probability P_d derived from measured uplink throughput",
            ),
            uplink_bps: registry.gauge(
                &name("uplink_bps"),
                "Estimated uplink throughput over the monitor window, bits/second",
            ),
            overload_state: registry.gauge(
                &name("overload_state"),
                "Overload-ladder rung (0 = normal, 1 = pressure, 2 = saturated)",
            ),
        }
    }

    /// Same as [`TelemetryObserver::new`] with the default journal size.
    pub fn with_default_journal(registry: &Registry, scope: &str) -> Self {
        TelemetryObserver::new(registry, scope, DEFAULT_JOURNAL_CAPACITY)
    }

    /// Tees every journaled event and forensics record into `flight`,
    /// so the black box sees the same history this observer retains.
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = Some(flight);
        self
    }

    /// The recorded event journal (oldest → newest).
    pub fn journal(&self) -> &EventJournal<FilterEvent> {
        &self.journal
    }

    /// The recorded drop-forensics journal (oldest → newest).
    pub fn forensics(&self) -> &EventJournal<DropForensics> {
        &self.forensics
    }

    fn journal_event(&mut self, event: FilterEvent) {
        if let Some(flight) = &self.flight {
            flight.record_event(event);
        }
        self.journal.record(event);
    }
}

impl FilterObserver for TelemetryObserver {
    fn on_outbound(&mut self, _tuple: &FiveTuple, _now: Timestamp) {
        self.outbound_total.inc();
    }

    fn on_inbound(&mut self, decision: &InboundDecision<'_>) {
        let uplink = decision.monitor.rate_bps(decision.now);
        self.drop_probability.set(decision.p_d);
        self.uplink_bps.set(uplink);
        if decision.fail_open {
            self.fail_open_passes_total.inc();
        }
        let kind = match decision.drop_reason() {
            None => {
                self.inbound_pass_total.inc();
                FilterEventKind::Pass
            }
            Some(reason) => {
                match reason {
                    DropReason::UnsolicitedMiss => self.drops_unsolicited_total.inc(),
                    DropReason::RandomEarlyDrop => self.drops_red_total.inc(),
                }
                FilterEventKind::Drop { reason }
            }
        };
        // Passes are high-volume and carry no more information than the
        // counters; the journal keeps the decisions worth replaying —
        // drops — plus rotations (recorded below).
        if !matches!(kind, FilterEventKind::Pass) {
            self.journal_event(FilterEvent {
                at_micros: decision.now.as_micros(),
                kind,
                drop_probability: decision.p_d,
                uplink_bps: uplink,
            });
        }
        // Forensics: drops plus fail-open would-be drops. The flow key
        // is hashed only here, so the common pass path never pays.
        if let Some(reason) = decision.forensic_reason() {
            let record = DropForensics {
                at_micros: decision.now.as_micros(),
                flow_hash: flow_hash(decision.key),
                inbound: true,
                reason,
                drop_probability: decision.p_d,
                rotation_epoch: decision.rotation_epoch,
                uplink_bps: uplink,
            };
            if let Some(flight) = &self.flight {
                flight.record_forensics(record);
            }
            self.forensics.record(record);
        }
    }

    fn on_rotation(&mut self, rotation: &RotationEvent<'_>) {
        self.rotations_total.inc();
        let uplink = rotation.monitor.rate_bps(rotation.now);
        self.drop_probability.set(rotation.p_d);
        self.uplink_bps.set(uplink);
        self.journal_event(FilterEvent {
            at_micros: rotation.now.as_micros(),
            kind: FilterEventKind::Rotation {
                rotations: rotation.rotations,
            },
            drop_probability: rotation.p_d,
            uplink_bps: uplink,
        });
    }

    fn on_cold_start(&mut self, now: Timestamp, armed_at: Timestamp) {
        self.cold_starts_total.inc();
        self.journal_event(FilterEvent {
            at_micros: now.as_micros(),
            kind: FilterEventKind::ColdStart {
                armed_at_micros: armed_at.as_micros(),
            },
            drop_probability: 0.0,
            uplink_bps: 0.0,
        });
    }

    fn on_armed(&mut self, now: Timestamp) {
        self.warmup_armed_total.inc();
        self.journal_event(FilterEvent {
            at_micros: now.as_micros(),
            kind: FilterEventKind::Armed,
            drop_probability: 0.0,
            uplink_bps: 0.0,
        });
    }

    fn on_overload(&mut self, event: &OverloadEvent) {
        self.overload_transitions_total.inc();
        self.overload_state.set(f64::from(event.to.as_u8()));
        self.journal_event(FilterEvent {
            at_micros: event.now.as_micros(),
            kind: FilterEventKind::Overload {
                from_state: event.from.as_u8(),
                to_state: event.to.as_u8(),
                fill: event.fill,
                projected_fp: event.projected_fp,
            },
            drop_probability: 0.0,
            uplink_bps: 0.0,
        });
        // Entering Saturated is the black-box moment: capture the
        // recent history while it still shows the onset of the flood.
        if event.to == OverloadState::Saturated {
            if let Some(flight) = &self.flight {
                let _ = flight.dump_now(DumpTrigger::Overload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitmapFilter, BitmapFilterConfig};
    use upbound_net::Protocol;

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            format!("10.0.0.2:{port}").parse().unwrap(),
            "203.0.113.1:80".parse().unwrap(),
        )
    }

    fn stranger(port: u16) -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            format!("198.51.100.3:{port}").parse().unwrap(),
            "10.0.0.2:6881".parse().unwrap(),
        )
    }

    #[test]
    fn telemetry_observer_counts_and_journals() {
        let registry = Registry::new();
        let observer = TelemetryObserver::new(&registry, "core", 16);
        let mut filter =
            BitmapFilter::with_observer(BitmapFilterConfig::paper_evaluation(), observer);
        let t = Timestamp::from_secs(1.0);
        filter.observe_outbound(&tuple(40000), t);
        assert_eq!(
            filter.check_inbound(&tuple(40000).inverse(), t, 1.0),
            Verdict::Pass
        );
        assert_eq!(
            filter.check_inbound(&stranger(50000), t, 1.0),
            Verdict::Drop
        );
        // Trigger rotations at 5 and 10 s.
        filter.advance(Timestamp::from_secs(11.0));

        let snap = registry.snapshot();
        assert_eq!(snap.counter("upbound_core_outbound_packets_total"), Some(1));
        assert_eq!(snap.counter("upbound_core_inbound_pass_total"), Some(1));
        assert_eq!(
            snap.counter("upbound_core_drops_unsolicited_total"),
            Some(1)
        );
        assert_eq!(snap.counter("upbound_core_drops_red_total"), Some(0));
        assert_eq!(snap.counter("upbound_core_rotations_total"), Some(2));
        assert_eq!(snap.gauge("upbound_core_drop_probability"), Some(1.0));

        let journal = filter.observer().journal();
        let kinds: Vec<_> = journal.iter().map(|e| e.kind).collect();
        assert_eq!(kinds.len(), 3, "drop + two rotations: {kinds:?}");
        assert!(matches!(
            kinds[0],
            FilterEventKind::Drop {
                reason: DropReason::UnsolicitedMiss
            }
        ));
        assert!(matches!(
            kinds[1],
            FilterEventKind::Rotation { rotations: 1 }
        ));
        assert!(matches!(
            kinds[2],
            FilterEventKind::Rotation { rotations: 2 }
        ));
    }

    #[test]
    fn red_drops_classified_separately() {
        let registry = Registry::new();
        let observer = TelemetryObserver::new(&registry, "core", 64);
        let mut filter =
            BitmapFilter::with_observer(BitmapFilterConfig::paper_evaluation(), observer);
        let t = Timestamp::ZERO;
        let mut dropped = 0;
        for port in 0..400u16 {
            if filter.check_inbound(&stranger(1024 + port), t, 0.5) == Verdict::Drop {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "some RED drops expected at P_d = 0.5");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("upbound_core_drops_red_total"), Some(dropped));
        assert_eq!(
            snap.counter("upbound_core_drops_unsolicited_total"),
            Some(0)
        );
        assert!(filter.observer().journal().iter().all(|e| matches!(
            e.kind,
            FilterEventKind::Drop {
                reason: DropReason::RandomEarlyDrop
            }
        )));
    }

    #[test]
    fn forensics_attribute_drops_and_tee_into_flight_recorder() {
        use upbound_telemetry::{FlightRecorder, ForensicReason};

        let registry = Registry::new();
        let flight = FlightRecorder::new(16, 16);
        let observer =
            TelemetryObserver::new(&registry, "core", 16).with_flight_recorder(flight.clone());
        let mut filter =
            BitmapFilter::with_observer(BitmapFilterConfig::paper_evaluation(), observer);
        let t0 = Timestamp::from_secs(1.0);
        // First packet anchors the warm window; the paper config is
        // fail-closed, so this hard drop attributes to warm-up.
        assert_eq!(
            filter.check_inbound(&stranger(50000), t0, 1.0),
            Verdict::Drop
        );
        // Well past the warm window: a plain bitmap miss.
        let later = Timestamp::from_secs(120.0);
        assert_eq!(
            filter.check_inbound(&stranger(50001), later, 1.0),
            Verdict::Drop
        );

        let records: Vec<_> = filter.observer().forensics().iter().copied().collect();
        assert_eq!(records.len(), 2, "{records:?}");
        assert_eq!(records[0].reason, ForensicReason::FailClosedWarmup);
        assert_eq!(records[1].reason, ForensicReason::BitmapMiss);
        assert!(records[1].rotation_epoch > 0, "rotations due by t=120s");
        assert_ne!(records[0].flow_hash, records[1].flow_hash);
        assert!(records.iter().all(|r| r.inbound));
        // The flight recorder saw the same history.
        assert_eq!(flight.forensics_recorded(), 2);
        assert!(flight.events_recorded() >= 2, "drop events teed");
    }

    #[test]
    fn noop_observer_filter_is_default_type() {
        // `BitmapFilter::new` must keep returning the plain type so all
        // existing call sites compile unchanged.
        let filter: BitmapFilter = BitmapFilter::new(BitmapFilterConfig::paper_evaluation());
        let _ = filter;
    }
}
