//! A classic Bloom filter — one column of the bitmap plus its hash family.

use crate::{BitVec, HashFamily};
use serde::{Deserialize, Serialize};

/// A standard Bloom filter (Bloom, 1970) over byte-string keys.
///
/// The `{k × N}`-bitmap is "a composite of k bloom filters of equal size
/// N = 2^n bits" (paper §4.2); this type is that building block, also
/// usable standalone.
///
/// # Examples
///
/// ```
/// use upbound_core::BloomFilter;
///
/// let mut bloom = BloomFilter::new(16, 4); // 2^16 bits, 4 hashes
/// bloom.insert(b"alpha");
/// assert!(bloom.contains(b"alpha"));      // never a false negative
/// assert!(!bloom.contains(b"beta"));      // almost surely
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: BitVec,
    hashes: HashFamily,
    insertions: u64,
}

impl BloomFilter {
    /// Creates a Bloom filter with `2^n_bits` bits and `m` hash functions.
    ///
    /// # Panics
    ///
    /// Panics on the same bounds as [`HashFamily::new`].
    pub fn new(n_bits: u32, m: usize) -> Self {
        let hashes = HashFamily::new(m, n_bits);
        Self {
            bits: BitVec::new(hashes.table_size()),
            hashes,
            insertions: 0,
        }
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &[u8]) {
        for idx in self.hashes.indexes(key) {
            self.bits.set(idx);
        }
        self.insertions += 1;
    }

    /// Tests membership; false positives possible, false negatives not.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.hashes.indexes(key).all(|idx| self.bits.get(idx))
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.insertions = 0;
    }

    /// Number of `insert` calls since creation/clear (counts duplicates).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Fraction of bits set (`U = b/N`, paper Eq. 2).
    pub fn utilization(&self) -> f64 {
        self.bits.utilization()
    }

    /// The expected probability that a random absent key reports present,
    /// given the current utilization: `U^m` (paper Eq. 2).
    pub fn expected_false_positive_rate(&self) -> f64 {
        self.utilization().powi(self.hashes.m() as i32)
    }

    /// The underlying bit vector.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// The hash family shared with the rest of the bitmap.
    pub fn hash_family(&self) -> HashFamily {
        self.hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(12, 3);
        let keys: Vec<[u8; 4]> = (0..500u32).map(|i| i.to_le_bytes()).collect();
        for k in &keys {
            b.insert(k);
        }
        assert!(keys.iter().all(|k| b.contains(k)));
    }

    #[test]
    fn false_positive_rate_is_low_when_underloaded() {
        let mut b = BloomFilter::new(16, 4); // 65536 bits
        for i in 0..1000u32 {
            b.insert(&i.to_le_bytes());
        }
        // Probe disjoint keys.
        let fp = (1_000_000u32..1_002_000)
            .filter(|i| b.contains(&i.to_le_bytes()))
            .count();
        // Expected ≈ (1000*4/65536)^4 ≈ 1.4e-5 → ~0 of 2000.
        assert!(fp <= 2, "false positives too high: {fp}/2000");
    }

    #[test]
    fn measured_fp_tracks_expected_fp() {
        let mut b = BloomFilter::new(12, 2); // 4096 bits, deliberately loaded
        for i in 0..800u32 {
            b.insert(&i.to_le_bytes());
        }
        let probes = 4000;
        let fp = (1_000_000u32..1_000_000 + probes)
            .filter(|i| b.contains(&i.to_le_bytes()))
            .count() as f64
            / probes as f64;
        let expected = b.expected_false_positive_rate();
        assert!(
            (fp - expected).abs() < 0.05,
            "measured {fp:.4} vs expected {expected:.4}"
        );
    }

    #[test]
    fn clear_empties_filter() {
        let mut b = BloomFilter::new(10, 3);
        b.insert(b"x");
        assert_eq!(b.insertions(), 1);
        b.clear();
        assert!(!b.contains(b"x"));
        assert_eq!(b.insertions(), 0);
        assert_eq!(b.utilization(), 0.0);
    }

    #[test]
    fn utilization_grows_with_insertions() {
        let mut b = BloomFilter::new(10, 3);
        let u0 = b.utilization();
        for i in 0..50u32 {
            b.insert(&i.to_le_bytes());
        }
        assert!(b.utilization() > u0);
        assert!(b.utilization() <= 1.0);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let b = BloomFilter::new(8, 2);
        assert!(!b.contains(b"anything"));
        assert_eq!(b.expected_false_positive_rate(), 0.0);
    }
}
