//! Runtime reconfiguration: atomic config cells for a live dataplane.
//!
//! A deployed filter cannot restart to change `P_d` thresholds or its
//! fail mode — the uplink keeps carrying traffic. This module is the
//! seam between a control plane (e.g. `upbound serve`'s `POST /config`)
//! and the dataplane: the control side **stages** a [`RuntimeOverrides`]
//! into a [`ConfigCell`]; the dataplane polls the cell's generation (one
//! atomic load per batch — nothing on the per-packet path) and applies
//! the staged overrides *between batches, at the next rotation-period
//! boundary*. Applying at a rotation boundary means no batch is ever
//! decided under a mixed configuration, and the swap lands at the same
//! place in trace time where the filter already mutates itself (vector
//! rotation), so snapshots and verdict accounting stay coherent.
//!
//! The cell itself is tiny: a generation counter plus a mutex-guarded
//! staging slot. The mutex is only ever taken by the control plane and
//! by the dataplane *after* the generation load says something changed,
//! so steady-state cost on the hot loop is one `Acquire` load.

use crate::{DropPolicy, FailMode, OverloadPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sparse set of configuration fields to override at runtime.
///
/// `None` fields are left untouched, so a control plane can swap the
/// `P_d` curve without knowing (or racing on) the current fail mode.
/// `batch_size` is a dataplane-loop property rather than a filter
/// property; [`BitmapFilter::apply_overrides`](crate::BitmapFilter::apply_overrides)
/// ignores it and the loop that owns batching applies it itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeOverrides {
    /// New RED thresholds for Equation 1 (`L`/`H`).
    pub drop_policy: Option<DropPolicy>,
    /// New fail mode (`open`/`closed`).
    pub fail_mode: Option<FailMode>,
    /// New overload/degradation policy.
    pub overload: Option<OverloadPolicy>,
    /// New dataplane batch size (packets per `decide_batch` call).
    pub batch_size: Option<usize>,
}

impl RuntimeOverrides {
    /// `true` when no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == RuntimeOverrides::default()
    }

    /// Overlays `other` on top of `self`: fields set in `other` win.
    pub fn merge(&mut self, other: RuntimeOverrides) {
        if other.drop_policy.is_some() {
            self.drop_policy = other.drop_policy;
        }
        if other.fail_mode.is_some() {
            self.fail_mode = other.fail_mode;
        }
        if other.overload.is_some() {
            self.overload = other.overload;
        }
        if other.batch_size.is_some() {
            self.batch_size = other.batch_size;
        }
    }
}

/// The shared cell a control plane stages overrides into and a
/// dataplane polls. Cloning shares the cell.
///
/// # Examples
///
/// ```
/// use upbound_core::{ConfigCell, DropPolicy, RuntimeOverrides};
///
/// let cell = ConfigCell::new();
/// let mut seen = cell.generation();
///
/// // Control plane stages a P_d swap…
/// cell.stage(RuntimeOverrides {
///     drop_policy: Some(DropPolicy::new(1e6, 2e6)?),
///     ..RuntimeOverrides::default()
/// });
///
/// // …the dataplane notices on its next batch boundary.
/// let (gen, staged) = cell.poll(seen).expect("a change is pending");
/// seen = gen;
/// assert!(staged.drop_policy.is_some());
/// assert!(cell.poll(seen).is_none(), "no further change pending");
/// # Ok::<(), upbound_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConfigCell {
    inner: Arc<CellInner>,
}

#[derive(Debug, Default)]
struct CellInner {
    /// Bumped after each stage; dataplanes compare against their last
    /// seen value with one `Acquire` load.
    generation: AtomicU64,
    /// The accumulated override set — the *desired* state, so a
    /// dataplane that starts late still converges to it.
    staged: Mutex<RuntimeOverrides>,
}

impl ConfigCell {
    /// A cell with nothing staged (generation 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current generation. Generation 0 means nothing was ever
    /// staged.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Merges `overrides` into the staged set and bumps the generation.
    /// Returns the new generation.
    pub fn stage(&self, overrides: RuntimeOverrides) -> u64 {
        let mut staged = self.lock();
        staged.merge(overrides);
        drop(staged);
        self.inner.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// Returns the staged overrides if anything changed since `seen`,
    /// along with the generation to remember. Cheap when nothing
    /// changed: a single atomic load, no lock.
    pub fn poll(&self, seen: u64) -> Option<(u64, RuntimeOverrides)> {
        let generation = self.generation();
        if generation == seen {
            return None;
        }
        Some((generation, self.lock().clone()))
    }

    /// A snapshot of the accumulated override set, regardless of
    /// generation (control-plane introspection).
    pub fn snapshot(&self) -> RuntimeOverrides {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RuntimeOverrides> {
        self.inner.staged.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_has_nothing_pending() {
        let cell = ConfigCell::new();
        assert_eq!(cell.generation(), 0);
        assert!(cell.poll(0).is_none());
        assert!(cell.snapshot().is_empty());
    }

    #[test]
    fn stage_bumps_generation_and_poll_drains_once() {
        let cell = ConfigCell::new();
        let g1 = cell.stage(RuntimeOverrides {
            batch_size: Some(128),
            ..RuntimeOverrides::default()
        });
        assert_eq!(g1, 1);
        let (gen, staged) = cell.poll(0).expect("pending");
        assert_eq!(gen, 1);
        assert_eq!(staged.batch_size, Some(128));
        assert!(cell.poll(gen).is_none());
    }

    #[test]
    fn later_stages_overlay_earlier_fields() {
        let cell = ConfigCell::new();
        cell.stage(RuntimeOverrides {
            drop_policy: Some(DropPolicy::drop_all()),
            batch_size: Some(32),
            ..RuntimeOverrides::default()
        });
        cell.stage(RuntimeOverrides {
            batch_size: Some(64),
            ..RuntimeOverrides::default()
        });
        let (gen, staged) = cell.poll(0).expect("pending");
        assert_eq!(gen, 2);
        // The untouched field survives, the restaged one is replaced.
        assert_eq!(staged.drop_policy, Some(DropPolicy::drop_all()));
        assert_eq!(staged.batch_size, Some(64));
    }

    #[test]
    fn clones_share_the_cell() {
        let cell = ConfigCell::new();
        let control = cell.clone();
        control.stage(RuntimeOverrides {
            fail_mode: Some(FailMode::Open),
            ..RuntimeOverrides::default()
        });
        let (_, staged) = cell.poll(0).expect("pending via clone");
        assert_eq!(staged.fail_mode, Some(FailMode::Open));
    }
}
