//! Windowed uplink-throughput measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use upbound_net::{TimeDelta, Timestamp};

/// Sentinel slot id for "never written".
const EMPTY_SLOT: u64 = u64::MAX;

/// Measures throughput over a sliding window of fixed-width slots.
///
/// "Computing the P_d requires only the knowledge of current bandwidth
/// throughput, which is an essential component in off-the-shelf network
/// devices" (paper §5.2). This monitor is that component: bytes are
/// recorded per slot; the rate is the byte total over the most recent
/// full slots divided by the window span. Storage is O(#slots).
///
/// The counters are interior-mutable atomics, so one monitor can be
/// shared (behind an [`Arc`](std::sync::Arc)) by the shards of a
/// [`ShardedFilter`](crate::ShardedFilter) to measure the *aggregate*
/// uplink rate of a client network. Single-threaded use is exact; under
/// concurrent recording, a slot that is being recycled may briefly
/// absorb or shed a racing record, which is acceptable for a windowed
/// rate estimate.
///
/// # Examples
///
/// ```
/// use upbound_core::ThroughputMonitor;
/// use upbound_net::{TimeDelta, Timestamp};
///
/// let mon = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4);
/// mon.record(Timestamp::from_secs(0.5), 125_000); // 1 Mbit in slot 0
/// let rate = mon.rate_bps(Timestamp::from_secs(1.5));
/// assert!(rate > 0.0);
/// ```
#[derive(Debug)]
pub struct ThroughputMonitor {
    slot_width: TimeDelta,
    /// Ring of byte counters; `slots[i]` holds bytes of the absolute
    /// slot number currently stored in `slot_ids[i]`.
    slots: Vec<AtomicU64>,
    /// Absolute slot number each ring entry currently represents.
    slot_ids: Vec<AtomicU64>,
    /// Smallest absolute slot number ever recorded ([`EMPTY_SLOT`] until
    /// the first record). Bounds the measurement span during warm-up so
    /// the first seconds of a trace are not averaged over slots that
    /// never existed.
    first_slot: AtomicU64,
    total_bytes: AtomicU64,
}

impl Clone for ThroughputMonitor {
    fn clone(&self) -> Self {
        Self {
            slot_width: self.slot_width,
            slots: self
                .slots
                .iter()
                .map(|s| AtomicU64::new(s.load(Ordering::Relaxed)))
                .collect(),
            slot_ids: self
                .slot_ids
                .iter()
                .map(|s| AtomicU64::new(s.load(Ordering::Relaxed)))
                .collect(),
            first_slot: AtomicU64::new(self.first_slot.load(Ordering::Relaxed)),
            total_bytes: AtomicU64::new(self.total_bytes.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for ThroughputMonitor {
    fn eq(&self, other: &Self) -> bool {
        let load =
            |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|s| s.load(Ordering::Relaxed)).collect() };
        self.slot_width == other.slot_width
            && load(&self.slots) == load(&other.slots)
            && load(&self.slot_ids) == load(&other.slot_ids)
            && self.first_slot.load(Ordering::Relaxed) == other.first_slot.load(Ordering::Relaxed)
            && self.total_bytes.load(Ordering::Relaxed) == other.total_bytes.load(Ordering::Relaxed)
    }
}

impl ThroughputMonitor {
    /// Creates a monitor with `n_slots` slots of `slot_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `slot_width` is zero or `n_slots == 0`.
    pub fn new(slot_width: TimeDelta, n_slots: usize) -> Self {
        assert!(!slot_width.is_zero(), "slot width must be positive");
        assert!(n_slots > 0, "need at least one slot");
        Self {
            slot_width,
            slots: (0..n_slots).map(|_| AtomicU64::new(0)).collect(),
            slot_ids: (0..n_slots).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            first_slot: AtomicU64::new(EMPTY_SLOT),
            total_bytes: AtomicU64::new(0),
        }
    }

    fn slot_number(&self, ts: Timestamp) -> u64 {
        ts.as_micros() / self.slot_width.as_micros()
    }

    /// Records `bytes` sent at time `ts`.
    pub fn record(&self, ts: Timestamp, bytes: u64) {
        let slot = self.slot_number(ts);
        let idx = (slot % self.slots.len() as u64) as usize;
        let id = self.slot_ids[idx].load(Ordering::Acquire);
        if id != slot
            && self.slot_ids[idx]
                .compare_exchange(id, slot, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            // This thread won the recycling race: clear the stale count.
            self.slots[idx].store(0, Ordering::Release);
        }
        self.slots[idx].fetch_add(bytes, Ordering::AcqRel);
        self.first_slot.fetch_min(slot, Ordering::AcqRel);
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// The measured throughput in bits per second at time `now`: the sum
    /// of bytes in the window's still-valid slots (excluding slots that
    /// have aged out) over the measurement span.
    ///
    /// During warm-up — before a full window has elapsed since the first
    /// record — the span is the slots elapsed so far, not the whole
    /// window, so early-trace rates are not diluted by slots that never
    /// existed. Far-future or backward `now` values are safe: stale slots
    /// age out (the validity test is overflow-free) and the span never
    /// collapses below one slot.
    pub fn rate_bps(&self, now: Timestamp) -> f64 {
        let current = self.slot_number(now);
        let n = self.slots.len() as u64;
        let window_bytes: u64 = self
            .slot_ids
            .iter()
            .zip(&self.slots)
            .filter(|(id, _)| {
                let id = id.load(Ordering::Acquire);
                id != EMPTY_SLOT && id <= current && current - id < n
            })
            .map(|(_, b)| b.load(Ordering::Acquire))
            .sum();
        let first = self.first_slot.load(Ordering::Acquire);
        let span_slots = if first == EMPTY_SLOT || first >= current {
            1
        } else {
            (current - first + 1).min(n)
        };
        let window_secs = self.slot_width.as_secs_f64() * span_slots as f64;
        (window_bytes as f64 * 8.0) / window_secs
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// The window span covered by the monitor.
    pub fn window(&self) -> TimeDelta {
        self.slot_width.times(self.slots.len() as u64)
    }

    /// Exports the full counter state for snapshot encoding:
    /// `(slot_width, slots, slot_ids, first_slot, total_bytes)`.
    pub(crate) fn snapshot_fields(&self) -> (TimeDelta, Vec<u64>, Vec<u64>, u64, u64) {
        let load =
            |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|s| s.load(Ordering::Acquire)).collect() };
        (
            self.slot_width,
            load(&self.slots),
            load(&self.slot_ids),
            self.first_slot.load(Ordering::Acquire),
            self.total_bytes.load(Ordering::Acquire),
        )
    }

    /// Overwrites the counter state from snapshot fields. Interior
    /// mutability means a monitor shared behind an `Arc` restores in
    /// place for every holder. Callers must have validated that the slot
    /// vectors match this monitor's geometry.
    pub(crate) fn restore_fields(
        &self,
        slots: &[u64],
        slot_ids: &[u64],
        first_slot: u64,
        total_bytes: u64,
    ) {
        debug_assert_eq!(slots.len(), self.slots.len());
        debug_assert_eq!(slot_ids.len(), self.slot_ids.len());
        for (dst, src) in self.slots.iter().zip(slots) {
            dst.store(*src, Ordering::Release);
        }
        for (dst, src) in self.slot_ids.iter().zip(slot_ids) {
            dst.store(*src, Ordering::Release);
        }
        self.first_slot.store(first_slot, Ordering::Release);
        self.total_bytes.store(total_bytes, Ordering::Release);
    }

    /// Clears all recorded history.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.store(0, Ordering::Release);
        }
        for id in &self.slot_ids {
            id.store(EMPTY_SLOT, Ordering::Release);
        }
        self.first_slot.store(EMPTY_SLOT, Ordering::Release);
        self.total_bytes.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> ThroughputMonitor {
        ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4)
    }

    #[test]
    fn rate_reflects_recent_bytes() {
        let m = monitor();
        // 4 Mbit spread over the window → 1 Mbps over 4 s.
        for s in 0..4 {
            m.record(Timestamp::from_secs(s as f64 + 0.5), 125_000);
        }
        let rate = m.rate_bps(Timestamp::from_secs(3.9));
        assert!((rate - 1e6).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn old_slots_age_out() {
        let m = monitor();
        m.record(Timestamp::from_secs(0.5), 1_000_000);
        // Much later, the burst has left the window entirely.
        assert_eq!(m.rate_bps(Timestamp::from_secs(100.0)), 0.0);
    }

    #[test]
    fn slot_reuse_overwrites_stale_counts() {
        let m = monitor();
        m.record(Timestamp::from_secs(0.5), 1000);
        // Slot index 0 is reused at t≈4–5 s; stale data must not leak.
        m.record(Timestamp::from_secs(4.5), 500);
        let current = m.rate_bps(Timestamp::from_secs(4.6));
        let expected = 500.0 * 8.0 / 4.0;
        assert!((current - expected).abs() < 1e-9, "rate {current}");
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let m = monitor();
        assert_eq!(m.rate_bps(Timestamp::from_secs(10.0)), 0.0);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn total_bytes_accumulates() {
        let m = monitor();
        m.record(Timestamp::from_secs(0.0), 100);
        m.record(Timestamp::from_secs(9.0), 200);
        assert_eq!(m.total_bytes(), 300);
    }

    #[test]
    fn window_span_is_slots_times_width() {
        assert_eq!(monitor().window(), TimeDelta::from_secs(4.0));
    }

    #[test]
    fn reset_clears_state() {
        let m = monitor();
        m.record(Timestamp::from_secs(0.5), 1000);
        m.reset();
        assert_eq!(m.rate_bps(Timestamp::from_secs(0.6)), 0.0);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn clone_snapshots_state() {
        let m = monitor();
        m.record(Timestamp::from_secs(0.5), 1000);
        let snap = m.clone();
        assert_eq!(snap, m);
        m.record(Timestamp::from_secs(0.6), 1000);
        assert_ne!(snap, m);
        assert_eq!(snap.total_bytes(), 1000);
    }

    #[test]
    fn shared_monitor_aggregates_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(ThroughputMonitor::new(TimeDelta::from_secs(1.0), 8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        m.record(Timestamp::from_secs((i % 4) as f64 + 0.1), 10);
                    }
                });
            }
        });
        assert_eq!(m.total_bytes(), 4 * 1000 * 10);
        // All records landed in slots 0..4; at t = 4.0 only five slots
        // have elapsed, so the warm-up span is 5 s, not the full 8 s.
        let rate = m.rate_bps(Timestamp::from_secs(4.0));
        assert!((rate - (40_000.0 * 8.0 / 5.0)).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn warm_up_rate_is_not_diluted_by_unelapsed_slots() {
        let m = monitor();
        // 1 Mbit in the first second of a 4 s window.
        m.record(Timestamp::from_secs(0.5), 125_000);
        // Still inside slot 0: the span is one slot, so the rate is the
        // full 1 Mbps, not 1/4 of it.
        let rate = m.rate_bps(Timestamp::from_secs(0.9));
        assert!((rate - 1e6).abs() < 1e-6, "rate {rate}");
        // One more second elapsed: averaged over 2 s.
        let rate = m.rate_bps(Timestamp::from_secs(1.5));
        assert!((rate - 5e5).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn far_future_now_is_overflow_safe() {
        // One-microsecond slots make absolute slot numbers huge, so a
        // far-future timestamp exercises the `id + n` overflow that the
        // old validity check performed.
        let m = ThroughputMonitor::new(TimeDelta::from_micros(1), 4);
        let late = Timestamp::from_micros(u64::MAX - 10);
        m.record(late, 1000);
        assert!(m.rate_bps(late) > 0.0);
        // A later probe ages the slot out without panicking.
        assert_eq!(m.rate_bps(Timestamp::from_micros(u64::MAX)), 0.0);
    }

    #[test]
    fn backward_now_does_not_poison_rate() {
        let m = monitor();
        m.record(Timestamp::from_secs(2.5), 125_000);
        // A probe earlier than every record sees no valid slots and a
        // floor span of one slot: zero rate, no panic, no division hazard.
        assert_eq!(m.rate_bps(Timestamp::from_secs(0.5)), 0.0);
        // Probing at the recorded time still works afterwards.
        assert!(m.rate_bps(Timestamp::from_secs(2.9)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn zero_slot_width_panics() {
        let _ = ThroughputMonitor::new(TimeDelta::ZERO, 4);
    }
}
