//! Windowed uplink-throughput measurement.

use serde::{Deserialize, Serialize};
use upbound_net::{TimeDelta, Timestamp};

/// Measures throughput over a sliding window of fixed-width slots.
///
/// "Computing the P_d requires only the knowledge of current bandwidth
/// throughput, which is an essential component in off-the-shelf network
/// devices" (paper §5.2). This monitor is that component: bytes are
/// recorded per slot; the rate is the byte total over the most recent
/// full slots divided by the window span. Storage is O(#slots).
///
/// # Examples
///
/// ```
/// use upbound_core::ThroughputMonitor;
/// use upbound_net::{TimeDelta, Timestamp};
///
/// let mut mon = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4);
/// mon.record(Timestamp::from_secs(0.5), 125_000); // 1 Mbit in slot 0
/// let rate = mon.rate_bps(Timestamp::from_secs(1.5));
/// assert!(rate > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMonitor {
    slot_width: TimeDelta,
    /// Ring of byte counters; `slots[i]` holds bytes of absolute slot
    /// number `slot_base + offset` — tracked via `slot_of` modular index.
    slots: Vec<u64>,
    /// Absolute slot number each ring entry currently represents.
    slot_ids: Vec<u64>,
    total_bytes: u64,
}

impl ThroughputMonitor {
    /// Creates a monitor with `n_slots` slots of `slot_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `slot_width` is zero or `n_slots == 0`.
    pub fn new(slot_width: TimeDelta, n_slots: usize) -> Self {
        assert!(!slot_width.is_zero(), "slot width must be positive");
        assert!(n_slots > 0, "need at least one slot");
        Self {
            slot_width,
            slots: vec![0; n_slots],
            slot_ids: vec![u64::MAX; n_slots],
            total_bytes: 0,
        }
    }

    fn slot_number(&self, ts: Timestamp) -> u64 {
        ts.as_micros() / self.slot_width.as_micros()
    }

    /// Records `bytes` sent at time `ts`.
    pub fn record(&mut self, ts: Timestamp, bytes: u64) {
        let slot = self.slot_number(ts);
        let idx = (slot % self.slots.len() as u64) as usize;
        if self.slot_ids[idx] != slot {
            self.slot_ids[idx] = slot;
            self.slots[idx] = 0;
        }
        self.slots[idx] += bytes;
        self.total_bytes += bytes;
    }

    /// The measured throughput in bits per second at time `now`: the sum
    /// of bytes in the window's still-valid slots (excluding slots that
    /// have aged out) over the window span.
    pub fn rate_bps(&self, now: Timestamp) -> f64 {
        let current = self.slot_number(now);
        let n = self.slots.len() as u64;
        let window_bytes: u64 = self
            .slot_ids
            .iter()
            .zip(&self.slots)
            .filter(|(&id, _)| id != u64::MAX && id + n > current && id <= current)
            .map(|(_, &b)| b)
            .sum();
        let window_secs = self.slot_width.as_secs_f64() * self.slots.len() as f64;
        (window_bytes as f64 * 8.0) / window_secs
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The window span covered by the monitor.
    pub fn window(&self) -> TimeDelta {
        self.slot_width.times(self.slots.len() as u64)
    }

    /// Clears all recorded history.
    pub fn reset(&mut self) {
        self.slots.fill(0);
        self.slot_ids.fill(u64::MAX);
        self.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> ThroughputMonitor {
        ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4)
    }

    #[test]
    fn rate_reflects_recent_bytes() {
        let mut m = monitor();
        // 4 Mbit spread over the window → 1 Mbps over 4 s.
        for s in 0..4 {
            m.record(Timestamp::from_secs(s as f64 + 0.5), 125_000);
        }
        let rate = m.rate_bps(Timestamp::from_secs(3.9));
        assert!((rate - 1e6).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn old_slots_age_out() {
        let mut m = monitor();
        m.record(Timestamp::from_secs(0.5), 1_000_000);
        // Much later, the burst has left the window entirely.
        assert_eq!(m.rate_bps(Timestamp::from_secs(100.0)), 0.0);
    }

    #[test]
    fn slot_reuse_overwrites_stale_counts() {
        let mut m = monitor();
        m.record(Timestamp::from_secs(0.5), 1000);
        // Slot index 0 is reused at t≈4–5 s; stale data must not leak.
        m.record(Timestamp::from_secs(4.5), 500);
        let current = m.rate_bps(Timestamp::from_secs(4.6));
        let expected = 500.0 * 8.0 / 4.0;
        assert!((current - expected).abs() < 1e-9, "rate {current}");
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let m = monitor();
        assert_eq!(m.rate_bps(Timestamp::from_secs(10.0)), 0.0);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn total_bytes_accumulates() {
        let mut m = monitor();
        m.record(Timestamp::from_secs(0.0), 100);
        m.record(Timestamp::from_secs(9.0), 200);
        assert_eq!(m.total_bytes(), 300);
    }

    #[test]
    fn window_span_is_slots_times_width() {
        assert_eq!(monitor().window(), TimeDelta::from_secs(4.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut m = monitor();
        m.record(Timestamp::from_secs(0.5), 1000);
        m.reset();
        assert_eq!(m.rate_bps(Timestamp::from_secs(0.6)), 0.0);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn zero_slot_width_panics() {
        let _ = ThroughputMonitor::new(TimeDelta::ZERO, 4);
    }
}
