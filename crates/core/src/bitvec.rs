//! A fixed-size bit vector backed by `u64` words.

use serde::{Deserialize, Serialize};

/// A fixed-size vector of bits — one column of the `{k × N}` bitmap.
///
/// All hot-path operations (set, get) are O(1); [`BitVec::clear`] is
/// O(N/64) over a contiguous word array, which is the whole cost of the
/// paper's `b.rotate` timer handler.
///
/// # Examples
///
/// ```
/// use upbound_core::BitVec;
///
/// let mut v = BitVec::new(1024);
/// v.set(17);
/// assert!(v.get(17));
/// assert_eq!(v.count_ones(), 1);
/// v.clear();
/// assert!(!v.get(17));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitVec {
    /// Creates a zeroed bit vector with `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "bit vector must have at least one bit");
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has no bits (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to one.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.ones += 1;
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Zeroes every bit (the `b.rotate` clean-up step).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Zeroes the words in `[start_word, end_word)` — the incremental
    /// clearing primitive used by
    /// [`AmortizedBitmap`](crate::AmortizedBitmap). The ones-count is
    /// decremented by the bits actually cleared.
    ///
    /// # Panics
    ///
    /// Panics if `end_word` exceeds the word count or `start_word >
    /// end_word`.
    pub fn clear_words(&mut self, start_word: usize, end_word: usize) {
        assert!(start_word <= end_word && end_word <= self.words.len());
        for w in &mut self.words[start_word..end_word] {
            self.ones -= w.count_ones() as usize;
            *w = 0;
        }
    }

    /// Number of set bits, maintained incrementally (O(1)).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Fraction of bits set — the utilization `U = b/N` of the paper's
    /// Equation 2.
    pub fn utilization(&self) -> f64 {
        self.ones as f64 / self.len as f64
    }

    /// Memory consumed by the bit storage, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The backing word array (snapshot encoding).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a vector of `len` bits from a backing word array, as
    /// captured by [`words`](Self::words). Returns `None` when the word
    /// count does not match `len` or a bit beyond `len` is set — both
    /// impossible for data this type produced, so a mismatch means the
    /// input is corrupt. The ones-count is recomputed from the words.
    pub fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if len == 0 || words.len() != len.div_ceil(64) {
            return None;
        }
        let tail_bits = len % 64;
        if tail_bits != 0 {
            let stray = words[words.len() - 1] & !((1u64 << tail_bits) - 1);
            if stray != 0 {
                return None;
            }
        }
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Some(Self { words, len, ones })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_start_clear() {
        let v = BitVec::new(100);
        assert_eq!(v.len(), 100);
        assert!((0..100).all(|i| !v.get(i)));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let mut v = BitVec::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i);
            assert!(v.get(i), "bit {i}");
        }
        assert_eq!(v.count_ones(), 8);
        assert!(!v.get(2));
    }

    #[test]
    fn double_set_counts_once() {
        let mut v = BitVec::new(10);
        v.set(3);
        v.set(3);
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut v = BitVec::new(200);
        for i in (0..200).step_by(7) {
            v.set(i);
        }
        v.clear();
        assert_eq!(v.count_ones(), 0);
        assert!((0..200).all(|i| !v.get(i)));
    }

    #[test]
    fn utilization_is_fraction_of_ones() {
        let mut v = BitVec::new(64);
        for i in 0..16 {
            v.set(i);
        }
        assert!((v.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_rounds_up_to_words() {
        assert_eq!(BitVec::new(1).memory_bytes(), 8);
        assert_eq!(BitVec::new(64).memory_bytes(), 8);
        assert_eq!(BitVec::new(65).memory_bytes(), 16);
        // The paper's 2^20-bit vector is 128 KiB.
        assert_eq!(BitVec::new(1 << 20).memory_bytes(), 128 * 1024);
    }

    #[test]
    fn clear_words_clears_ranges_and_counts() {
        let mut v = BitVec::new(256);
        for i in (0..256).step_by(3) {
            v.set(i);
        }
        let before = v.count_ones();
        v.clear_words(1, 2); // bits 64..128
        assert!((64..128).all(|i| !v.get(i)));
        assert!(v.get(0) && v.get(255));
        // Exactly the bits ≡ 0 (mod 3) inside [64, 128) were removed.
        let removed = (64..128).filter(|i| i % 3 == 0).count();
        assert_eq!(v.count_ones(), before - removed);
        // Clearing an empty range is a no-op.
        v.clear_words(2, 2);
        assert_eq!(v.count_ones(), before - removed);
        // Clearing everything matches clear().
        v.clear_words(0, 4);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    #[should_panic]
    fn clear_words_rejects_bad_range() {
        let mut v = BitVec::new(64);
        v.clear_words(0, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BitVec::new(8);
        let _ = v.get(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut v = BitVec::new(8);
        v.set(9);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_vector_panics() {
        let _ = BitVec::new(0);
    }

    #[test]
    fn from_words_roundtrips() {
        let mut v = BitVec::new(130);
        for i in [0, 64, 129] {
            v.set(i);
        }
        let rebuilt = BitVec::from_words(130, v.words().to_vec()).unwrap();
        assert_eq!(rebuilt, v);
        assert_eq!(rebuilt.count_ones(), 3);
    }

    #[test]
    fn from_words_rejects_corrupt_input() {
        // Wrong word count.
        assert!(BitVec::from_words(130, vec![0; 2]).is_none());
        // Stray bit beyond len.
        assert!(BitVec::from_words(130, vec![0, 0, 1 << 2]).is_none());
        // Zero length.
        assert!(BitVec::from_words(0, vec![]).is_none());
        // Exact word multiple has no tail mask to trip on.
        assert!(BitVec::from_words(128, vec![u64::MAX, u64::MAX]).is_some());
    }
}
