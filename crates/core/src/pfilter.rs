//! The packet-filter abstraction every deployment surface drives.
//!
//! Hoisted out of the simulator so the replay engine, the sharded
//! concurrent engine, the CLI, benches, and examples all program against
//! one interface instead of special-casing `BitmapFilter` vs the SPI
//! baseline.

use crate::Verdict;
use upbound_net::{Direction, Packet, Timestamp};

/// Aggregate counters that can be folded across filter instances.
///
/// Needed wherever several filters jointly cover one client network:
/// the shards of a [`ShardedFilter`](crate::ShardedFilter) and the
/// per-tenant entries of a
/// [`SubscriberTable`](crate::SubscriberTable).
pub trait MergeStats: Default + Clone {
    /// Folds `other`'s counters into `self`.
    ///
    /// Packet counters are additive. Timer counters (bitmap rotations,
    /// SPI purge sweeps) merge as the **maximum**: sibling shards each
    /// advance lazily to the last timestamp they saw, so the
    /// furthest-advanced shard has performed exactly the ticks one
    /// sequential filter would have.
    fn merge(&mut self, other: &Self);
}

/// Anything that can decide, packet by packet, whether traffic crossing
/// the client-network edge passes or drops.
///
/// Implementations must treat [`decide`](Self::decide) as the full
/// per-packet pipeline: learn from outbound packets, measure uplink
/// throughput, and judge inbound packets. Callers invoke it exactly once
/// per packet, in timestamp order.
pub trait PacketFilter {
    /// The aggregate-counter type this filter reports.
    type Stats: MergeStats;

    /// `true` when [`decide_shared`](Self::decide_shared) /
    /// [`advance_shared`](Self::advance_shared) are implemented and
    /// verdict-identical to their `&mut` twins, so containers like
    /// [`ShardedFilter`](crate::ShardedFilter) may drive the filter
    /// through a shared reference from many threads at once. The
    /// constant is resolved at monomorphization, so the dispatch
    /// branches in those containers fold away.
    ///
    /// `BitmapFilter<NoopObserver>` is concurrent (atomic bitmap, atomic
    /// counters, no observer to serialize); observed filters and the SPI
    /// baseline (whose flow table needs `&mut`) are not.
    const CONCURRENT: bool = false;

    /// Decides the fate of one packet.
    fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict;

    /// Lock-free twin of [`decide`](Self::decide): the full per-packet
    /// pipeline through a shared reference.
    ///
    /// Must be verdict- and stats-identical to [`decide`](Self::decide).
    /// Only callable when [`CONCURRENT`](Self::CONCURRENT) is `true`;
    /// the default body is unreachable because callers dispatch on that
    /// constant.
    fn decide_shared(&self, packet: &Packet, direction: Direction) -> Verdict {
        let _ = (packet, direction);
        unreachable!("decide_shared called on a filter with CONCURRENT == false")
    }

    /// Applies every timer event (rotation, purge sweep) due at or
    /// before `now` without processing a packet.
    fn advance(&mut self, now: Timestamp);

    /// Lock-free twin of [`advance`](Self::advance). Only callable when
    /// [`CONCURRENT`](Self::CONCURRENT) is `true`; see
    /// [`decide_shared`](Self::decide_shared).
    fn advance_shared(&self, now: Timestamp) {
        let _ = now;
        unreachable!("advance_shared called on a filter with CONCURRENT == false")
    }

    /// Decides a batch of packets, appending one verdict per packet to
    /// `verdicts` in input order.
    ///
    /// Semantically identical to calling [`decide`](Self::decide) once
    /// per packet in slice order — the default implementation does
    /// exactly that. Specialized implementations may amortize per-packet
    /// overhead (rotation checks, hashing, locking) but must preserve
    /// byte-identical verdicts and statistics; see
    /// [`ShardedFilter::process_batch`](crate::ShardedFilter::process_batch)
    /// for the lock-amortizing sharded variant.
    fn decide_batch(&mut self, packets: &[(Packet, Direction)], verdicts: &mut Vec<Verdict>) {
        verdicts.reserve(packets.len());
        for (packet, direction) in packets {
            verdicts.push(self.decide(packet, *direction));
        }
    }

    /// A snapshot of the running counters.
    fn stats(&self) -> Self::Stats;

    /// Memory footprint of the filter state in bytes.
    fn memory_bytes(&self) -> usize;

    /// The drop probability the filter's policy yields for its currently
    /// measured uplink throughput.
    fn drop_probability(&self, now: Timestamp) -> f64;

    /// A short display name for reports.
    fn name(&self) -> &str;
}
