//! Flow-hash sharding: the concurrent deployment surface.
//!
//! The paper's filter does O(1) work per packet, but a single filter
//! behind a single lock serializes every packet and caps throughput at
//! one core. [`ShardedFilter`] partitions the five-tuple space by a
//! direction-symmetric [`FlowHash`] across N shards. For concurrent
//! filters ([`PacketFilter::CONCURRENT`], i.e. the unobserved
//! `BitmapFilter` with its atomic bitmap) the per-packet path takes only
//! a shard *read* lock — any number of workers decide packets on any
//! shard simultaneously, and the shard count controls data partitioning
//! rather than lock granularity. Exclusive filters (SPI, observed
//! filters) keep the original one-writer-per-shard locking.
//!
//! Three invariants make the sharded filter behave exactly like one big
//! sequential filter:
//!
//! * **Flow-hash symmetry** — the outbound mark and the inbound lookup
//!   of the same connection hash to the same shard, because
//!   [`FlowHash::key`] hashes the direction-oriented [`FilterKey`]
//!   (`outbound_key` for outbound, `inbound_key` for inbound), and those
//!   are equal for one connection by construction.
//! * **Global `P_d`** — every shard's engine reads one shared
//!   [`ThroughputMonitor`], so the drop probability derives from the
//!   *total* upload rate of the client network, not a shard's slice.
//! * **Deterministic draws** — drop draws are a pure function of
//!   `(seed, key, timestamp, draw index)`; all shards use the same
//!   configured seed, so a packet draws identically no matter which
//!   shard (or a sequential filter) decides it.
//!
//! [`FilterKey`]: upbound_net::FilterKey

use crate::hash::{fnv1a, splitmix64};
use crate::observe::FilterObserver;
use crate::pfilter::{MergeStats, PacketFilter};
use crate::runtime::RuntimeOverrides;
use crate::snapshot::{
    self, ByteReader, ByteWriter, RestoreMode, RestoreOutcome, SnapshotError, Snapshottable,
    SHARDED_KIND_FLAG,
};
use crate::{
    BitmapFilter, BitmapFilterConfig, ConfigError, DropPolicy, OverloadPolicy, ThroughputMonitor,
    Verdict,
};
use parking_lot::RwLock;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use upbound_net::{Direction, FiveTuple, Packet, TimeDelta, Timestamp};

/// Seed for the shard-selection hash; fixed and independent of the
/// filter's draw seed so shard placement never correlates with drop
/// draws.
const FLOW_SEED: u64 = 0x51ab_efc1_37d4_90e3;

/// The direction-symmetric flow hash that assigns packets to shards.
///
/// Both directions of one connection map to the same 64-bit key, so an
/// outbound mark and the inbound lookup for its response always land on
/// the same shard. With hole punching the remote port is omitted (as in
/// the filter keys themselves), keeping hole-punched admits on the shard
/// that holds the mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowHash {
    hole_punching: bool,
}

impl FlowHash {
    /// A flow hash matching the given hole-punching key derivation.
    pub fn new(hole_punching: bool) -> Self {
        Self { hole_punching }
    }

    /// A flow hash over exact five-tuples (no hole punching) — the
    /// right choice for SPI-style filters that track full tuples.
    pub fn exact() -> Self {
        Self::new(false)
    }

    /// Whether the hash omits the remote port.
    pub fn hole_punching(&self) -> bool {
        self.hole_punching
    }

    /// The 64-bit flow key of `tuple` seen from `direction`; equal for
    /// both directions of one connection.
    pub fn key(&self, tuple: &FiveTuple, direction: Direction) -> u64 {
        let key = match direction {
            Direction::Outbound => tuple.outbound_key(self.hole_punching),
            Direction::Inbound => tuple.inbound_key(self.hole_punching),
        };
        splitmix64(fnv1a(FLOW_SEED, &key.to_bytes()))
    }
}

/// Error addressing a shard index that does not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardIndexError {
    /// The requested shard index.
    pub index: usize,
    /// The number of shards in the filter.
    pub shards: usize,
}

impl fmt::Display for ShardIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard index {} out of range for {} shard(s)",
            self.index, self.shards
        )
    }
}

impl std::error::Error for ShardIndexError {}

struct Inner<F> {
    shards: Vec<RwLock<F>>,
    flow: FlowHash,
    uplink: Arc<ThroughputMonitor>,
    /// The RED curve every shard applies, cached here so telemetry reads
    /// of the global `P_d` derive it straight from the aggregate uplink
    /// monitor without touching any shard lock. `None` for
    /// [`ShardedFilter::from_shards`] assemblies, whose shards' policies
    /// the container cannot see — those fall back to asking shard 0.
    /// Behind its own lock (never a shard lock) so runtime
    /// reconfiguration can swap the curve through a shared handle.
    drop_policy: RwLock<Option<DropPolicy>>,
    name: String,
    /// Running-max timestamp (in microseconds) over every packet this
    /// handle has batched, persisted across [`ShardedFilter::process_batch`]
    /// calls so a shard that received no packets in a high-timestamp
    /// batch still advances to the sequential clock on its next packet.
    watermark: AtomicU64,
}

/// N independently locked filter shards jointly bounding one client
/// network — the replacement for the old single-lock shared filter,
/// which survives as the `N = 1` degenerate case.
///
/// The handle is `Clone + Send + Sync`; clones share the same shards, so
/// one handle per worker thread is the intended deployment shape.
/// Packets are routed by [`FlowHash`], statistics merge via
/// [`MergeStats`], and `P_d` derives from the shared aggregate uplink
/// monitor (see DESIGN.md's "Sharding model" section for why verdicts
/// match a sequential run exactly).
///
/// # Examples
///
/// ```
/// use upbound_core::{BitmapFilterConfig, ShardedFilter, Verdict};
/// use upbound_net::{Direction, FiveTuple, Protocol, Timestamp};
///
/// let filter = ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
///     .shards(4)
///     .build()?;
/// let conn = FiveTuple::new(
///     Protocol::Tcp,
///     "10.0.0.7:51000".parse()?,
///     "203.0.113.4:6881".parse()?,
/// );
/// // Mark and lookup land on the same shard by flow-hash symmetry.
/// assert_eq!(
///     filter.shard_of(&conn, Direction::Outbound),
///     filter.shard_of(&conn.inverse(), Direction::Inbound),
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardedFilter<F: PacketFilter + Send + Sync = BitmapFilter> {
    inner: Arc<Inner<F>>,
}

impl<F: PacketFilter + Send + Sync> Clone for ShardedFilter<F> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<F: PacketFilter + Send + Sync> fmt::Debug for ShardedFilter<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedFilter")
            .field("name", &self.inner.name)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl ShardedFilter<BitmapFilter> {
    /// Starts a [`ShardedFilterBuilder`] for bitmap-filter shards built
    /// from one configuration, all sharing a single aggregate uplink
    /// monitor and the configured draw seed. One shard by default.
    pub fn builder(config: BitmapFilterConfig) -> ShardedFilterBuilder {
        ShardedFilterBuilder {
            config,
            shards: 1,
            overload: OverloadPolicy::off(),
        }
    }
}

impl<O: FilterObserver + Send + Sync> ShardedFilter<BitmapFilter<O>> {
    /// Applies a [`RuntimeOverrides`] to every shard (see
    /// [`BitmapFilter::apply_overrides`]) and to the cached telemetry
    /// `P_d` curve, through a shared handle.
    ///
    /// Shards are updated one at a time under their write locks, so a
    /// concurrent decider can observe shard `i` on the new curve while
    /// shard `j` is still on the old one for the duration of this call.
    /// The dataplane avoids even that window by applying overrides
    /// between batches at a rotation boundary, when no decider is
    /// in flight.
    pub fn apply_overrides(&self, overrides: &RuntimeOverrides) {
        if let Some(policy) = overrides.drop_policy {
            let mut cached = self.inner.drop_policy.write();
            // from_shards assemblies keep `None`: the container still
            // cannot vouch for shard construction, but each shard now
            // carries the override, so the shard-0 fallback stays right.
            if cached.is_some() {
                *cached = Some(policy);
            }
        }
        for shard in &self.inner.shards {
            shard.write().apply_overrides(overrides);
        }
    }
}

/// Builder for a bitmap-filter [`ShardedFilter`]; validates the shard
/// count instead of panicking.
///
/// # Examples
///
/// ```
/// use upbound_core::{BitmapFilterConfig, ShardedFilter};
///
/// let filter = ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
///     .shards(4)
///     .build()?;
/// assert_eq!(filter.shards(), 4);
/// # Ok::<(), upbound_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedFilterBuilder {
    config: BitmapFilterConfig,
    shards: usize,
    overload: OverloadPolicy,
}

impl ShardedFilterBuilder {
    /// Sets the number of independently locked shards.
    pub fn shards(&mut self, shards: usize) -> &mut Self {
        self.shards = shards;
        self
    }

    /// Arms the overload ladder on every shard (each shard's sentinel
    /// watches its own bitmap, so a flood hashed across shards degrades
    /// each one independently). Defaults to [`OverloadPolicy::off`].
    pub fn overload_policy(&mut self, policy: OverloadPolicy) -> &mut Self {
        self.overload = policy;
        self
    }

    /// Validates and assembles the sharded filter.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroShards`] when the shard count is zero.
    pub fn build(&self) -> Result<ShardedFilter<BitmapFilter>, ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        let uplink = Arc::new(self.config.uplink_monitor());
        let flow = FlowHash::new(self.config.hole_punching());
        let filters = (0..self.shards)
            .map(|_| {
                BitmapFilter::new(self.config.clone())
                    .with_shared_uplink(Arc::clone(&uplink))
                    .with_overload_policy(self.overload.clone())
            })
            .collect();
        Ok(ShardedFilter::assemble(
            flow,
            uplink,
            Some(self.config.drop_policy()),
            filters,
        ))
    }
}

impl<F: PacketFilter + Send + Sync> ShardedFilter<F> {
    /// Assembles a sharded filter from pre-built shards.
    ///
    /// Every shard should already measure uplink throughput through
    /// `uplink` (e.g. via `BitmapFilter::with_shared_uplink`) so the
    /// drop policy sees the aggregate rate, and all shards should use
    /// the same draw seed so verdicts match a sequential run.
    ///
    /// # Panics
    ///
    /// Panics if `filters` is empty.
    pub fn from_shards(flow: FlowHash, uplink: Arc<ThroughputMonitor>, filters: Vec<F>) -> Self {
        Self::assemble(flow, uplink, None, filters)
    }

    fn assemble(
        flow: FlowHash,
        uplink: Arc<ThroughputMonitor>,
        drop_policy: Option<DropPolicy>,
        filters: Vec<F>,
    ) -> Self {
        assert!(!filters.is_empty(), "need at least one shard");
        let name = format!("sharded-{}x{}", filters[0].name(), filters.len());
        Self {
            inner: Arc::new(Inner {
                shards: filters.into_iter().map(RwLock::new).collect(),
                flow,
                uplink,
                drop_policy: RwLock::new(drop_policy),
                name,
                watermark: AtomicU64::new(0),
            }),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The flow hash used for shard assignment.
    pub fn flow_hash(&self) -> FlowHash {
        self.inner.flow
    }

    /// The shared aggregate uplink monitor.
    pub fn uplink(&self) -> &Arc<ThroughputMonitor> {
        &self.inner.uplink
    }

    /// The shard index `tuple` maps to when seen from `direction`.
    pub fn shard_of(&self, tuple: &FiveTuple, direction: Direction) -> usize {
        (self.inner.flow.key(tuple, direction) % self.inner.shards.len() as u64) as usize
    }

    /// Runs the full per-packet pipeline on the packet's shard. For a
    /// concurrent filter ([`PacketFilter::CONCURRENT`]) this takes only
    /// the shard's *read* lock — the decision itself is lock-free on the
    /// atomic bitmap, so workers on the same shard proceed in parallel;
    /// exclusive filters take the write lock as before. The branch is on
    /// an associated constant, so it folds away at monomorphization.
    pub fn process_packet(&self, packet: &Packet, direction: Direction) -> Verdict {
        let shard = self.shard_of(&packet.tuple(), direction);
        if F::CONCURRENT {
            self.inner.shards[shard]
                .read()
                .decide_shared(packet, direction)
        } else {
            self.inner.shards[shard].write().decide(packet, direction)
        }
    }

    /// Like [`process_packet`](Self::process_packet), but first brings
    /// the packet's shard to the tick phase of `watermark` — the running
    /// *maximum* timestamp the caller has ingested so far.
    ///
    /// On a trace with non-monotonic timestamps, each shard only ever
    /// sees its own packets' clocks, so shard tick phases drift apart
    /// from what a sequential filter (whose phase tracks the running
    /// maximum across *all* packets) would hold, and verdicts diverge.
    /// Passing the ingest-side watermark pins every shard to the
    /// sequential phase: timer state is a pure function of the maximum
    /// timestamp seen, and drop draws are order-independent already.
    pub fn process_packet_at(
        &self,
        packet: &Packet,
        direction: Direction,
        watermark: Timestamp,
    ) -> Verdict {
        let shard = self.shard_of(&packet.tuple(), direction);
        if F::CONCURRENT {
            let guard = self.inner.shards[shard].read();
            guard.advance_shared(watermark);
            guard.decide_shared(packet, direction)
        } else {
            let mut guard = self.inner.shards[shard].write();
            guard.advance(watermark);
            guard.decide(packet, direction)
        }
    }

    /// Runs the full per-packet pipeline on a batch of packets,
    /// appending one verdict per packet to `verdicts` in input order.
    ///
    /// Every shard lock is taken **once per batch** — up front, in
    /// shard-index order (the fixed hierarchy all multi-lock paths
    /// share, so concurrent batches cannot deadlock) — and the batch is
    /// then decided strictly in input order. Concurrent filters
    /// ([`PacketFilter::CONCURRENT`]) take *read* locks, so many worker
    /// handles batch against the same shards simultaneously; exclusive
    /// filters take write locks and serialize per shard. Either way the
    /// amortized lock/dispatch cost keeps verdicts byte-identical to
    /// feeding the same stream through a sequential filter one packet at
    /// a time:
    ///
    /// * packets are decided in input order, so an inbound decision
    ///   observes exactly the uplink bytes recorded by the outbound
    ///   packets that precede it — the live drop-probability read sees
    ///   the same monitor state as the sequential path;
    /// * each packet is decided at the running-*maximum* timestamp
    ///   (watermark) over everything this handle has batched so far —
    ///   persisted across batches — which pins every shard to the
    ///   sequential filter's tick phase even on non-monotonic traces
    ///   (timer state is a pure function of the max timestamp seen);
    /// * drop draws are pure functions of
    ///   `(seed, key, timestamp, draw index)`, so batching cannot
    ///   shift them.
    pub fn process_batch(&self, packets: &[(Packet, Direction)], verdicts: &mut Vec<Verdict>) {
        verdicts.reserve(packets.len());
        let shard_count = self.inner.shards.len();
        let mut wm = self.inner.watermark.load(Ordering::Relaxed);
        if F::CONCURRENT {
            let guards: Vec<_> = self.inner.shards.iter().map(|shard| shard.read()).collect();
            for (packet, direction) in packets {
                wm = wm.max(packet.ts().as_micros());
                let shard = (self.inner.flow.key(&packet.tuple(), *direction) % shard_count as u64)
                    as usize;
                let guard = &guards[shard];
                guard.advance_shared(Timestamp::from_micros(wm));
                verdicts.push(guard.decide_shared(packet, *direction));
            }
        } else {
            let mut guards: Vec<_> = self
                .inner
                .shards
                .iter()
                .map(|shard| shard.write())
                .collect();
            for (packet, direction) in packets {
                wm = wm.max(packet.ts().as_micros());
                let shard = (self.inner.flow.key(&packet.tuple(), *direction) % shard_count as u64)
                    as usize;
                let guard = &mut guards[shard];
                guard.advance(Timestamp::from_micros(wm));
                verdicts.push(guard.decide(packet, *direction));
            }
        }
        self.inner.watermark.fetch_max(wm, Ordering::Relaxed);
    }

    /// Applies every timer event due at or before `now` on **all**
    /// shards, bringing them to a common tick phase (e.g. before reading
    /// [`stats`](Self::stats) at a trace boundary).
    pub fn advance(&self, now: Timestamp) {
        if F::CONCURRENT {
            for shard in &self.inner.shards {
                shard.read().advance_shared(now);
            }
        } else {
            for shard in &self.inner.shards {
                shard.write().advance(now);
            }
        }
    }

    /// Merged statistics across all shards (see [`MergeStats::merge`]
    /// for the fold semantics).
    pub fn stats(&self) -> F::Stats {
        let mut merged = F::Stats::default();
        for shard in &self.inner.shards {
            merged.merge(&shard.read().stats());
        }
        merged
    }

    /// Total memory of all shards' filter state in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().memory_bytes())
            .sum()
    }

    /// The drop probability derived from the shared aggregate uplink
    /// rate — identical for every shard by construction.
    ///
    /// Builder-assembled filters cache the RED curve and apply it to the
    /// shared monitor directly, so this telemetry read touches no shard
    /// lock; [`from_shards`](Self::from_shards) assemblies (whose
    /// policies the container cannot see) fall back to asking shard 0.
    pub fn drop_probability(&self, now: Timestamp) -> f64 {
        match *self.inner.drop_policy.read() {
            Some(policy) => policy.drop_probability(self.inner.uplink.rate_bps(now)),
            None => self.inner.shards[0].read().drop_probability(now),
        }
    }

    /// Runs `f` with exclusive access to shard `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardIndexError`] when `index >= self.shards()`.
    pub fn with_shard<R>(
        &self,
        index: usize,
        f: impl FnOnce(&mut F) -> R,
    ) -> Result<R, ShardIndexError> {
        let shard = self.inner.shards.get(index).ok_or(ShardIndexError {
            index,
            shards: self.inner.shards.len(),
        })?;
        Ok(f(&mut shard.write()))
    }

    /// Swaps shard `index` for `filter`, discarding the old shard state.
    ///
    /// This is the supervisor's quarantine-and-rebuild primitive: when a
    /// shard worker panics mid-decision the shard's internal state is
    /// suspect (parking_lot mutexes do not poison), so the supervisor
    /// installs a fresh, empty replacement — typically one anchored with
    /// [`Snapshottable::start_cold_at`] so it fails open through its own
    /// warm-up while the other shards keep filtering.
    ///
    /// # Errors
    ///
    /// Returns [`ShardIndexError`] when `index >= self.shards()`.
    pub fn replace_shard(&self, index: usize, filter: F) -> Result<(), ShardIndexError> {
        let shard = self.inner.shards.get(index).ok_or(ShardIndexError {
            index,
            shards: self.inner.shards.len(),
        })?;
        *shard.write() = filter;
        Ok(())
    }

    /// A short display name for reports.
    pub fn name(&self) -> &str {
        &self.inner.name
    }
}

impl<F: PacketFilter + Send + Sync + Snapshottable> ShardedFilter<F> {
    /// The container kind a sharded checkpoint of this filter type uses:
    /// the shard kind with [`SHARDED_KIND_FLAG`] set.
    pub fn snapshot_kind() -> u32 {
        F::SNAPSHOT_KIND | SHARDED_KIND_FLAG
    }

    /// Serializes every shard into one container valid at trace time
    /// `watermark`.
    ///
    /// All shard locks are held simultaneously while encoding, and each
    /// shard is first advanced to `watermark`, so the checkpoint is a
    /// *consistent cut*: every shard's timer phase and bitmap state
    /// correspond to the same instant, exactly as a sequential filter
    /// would have been at `watermark`.
    pub fn checkpoint_bytes(&self, watermark: Timestamp) -> Vec<u8> {
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.write()).collect();
        let mut w = ByteWriter::new();
        w.put_u32(guards.len() as u32);
        for guard in &mut guards {
            guard.advance(watermark);
            let mut shard_w = ByteWriter::new();
            guard.encode_snapshot(&mut shard_w);
            let bytes = shard_w.into_bytes();
            w.put_u64(bytes.len() as u64);
            w.put_slice(&bytes);
        }
        snapshot::encode_container(Self::snapshot_kind(), watermark, w.as_slice())
    }

    /// Writes a [`checkpoint_bytes`](Self::checkpoint_bytes) image to
    /// `path` atomically (temp file + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`SnapshotError::Io`].
    pub fn checkpoint_to(&self, path: &Path, watermark: Timestamp) -> Result<(), SnapshotError> {
        snapshot::write_atomic(path, &self.checkpoint_bytes(watermark))
    }

    /// Validates `bytes` and restores every shard from it, holding all
    /// shard locks for the duration. A snapshot whose watermark is more
    /// than `stale_after` behind `now` restores statistics only and
    /// restarts every shard cold at `now` (returning
    /// [`RestoreOutcome::Cold`]).
    ///
    /// # Errors
    ///
    /// Container defects, kind mismatches, shard-count mismatches, and
    /// per-shard configuration mismatches map to the corresponding
    /// [`SnapshotError`]. On error some shards may already hold restored
    /// state; callers should treat the filter as unusable and either
    /// retry with a good snapshot or [`start_cold_at`](Self::start_cold_at).
    pub fn restore_bytes(
        &self,
        bytes: &[u8],
        now: Timestamp,
        stale_after: TimeDelta,
    ) -> Result<RestoreOutcome, SnapshotError> {
        let view = snapshot::decode_container(bytes)?;
        if view.kind != Self::snapshot_kind() {
            return Err(SnapshotError::KindMismatch {
                expected: Self::snapshot_kind(),
                found: view.kind,
            });
        }
        let mut r = ByteReader::new(view.payload);
        if r.u32()? as usize != self.inner.shards.len() {
            return Err(SnapshotError::ConfigMismatch("shard count"));
        }
        let stale = now.saturating_since(view.watermark) > stale_after;
        let mode = if stale {
            RestoreMode::StatsOnly
        } else {
            RestoreMode::Full
        };
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.write()).collect();
        for guard in guards.iter_mut() {
            let len = r.u64()? as usize;
            let payload = r.take(len)?;
            let mut shard_r = ByteReader::new(payload);
            guard.restore_snapshot(&mut shard_r, mode)?;
            if !shard_r.is_empty() {
                return Err(SnapshotError::Malformed("shard payload has trailing bytes"));
            }
        }
        if !r.is_empty() {
            return Err(SnapshotError::Malformed("payload has trailing bytes"));
        }
        if stale {
            for guard in guards.iter_mut() {
                guard.start_cold_at(now);
            }
            Ok(RestoreOutcome::Cold)
        } else {
            Ok(RestoreOutcome::Warm)
        }
    }

    /// Reads and restores a checkpoint file written by
    /// [`checkpoint_to`](Self::checkpoint_to).
    ///
    /// # Errors
    ///
    /// See [`restore_bytes`](Self::restore_bytes); file reads fail as
    /// [`SnapshotError::Io`].
    pub fn restore_from(
        &self,
        path: &Path,
        now: Timestamp,
        stale_after: TimeDelta,
    ) -> Result<RestoreOutcome, SnapshotError> {
        self.restore_bytes(&snapshot::read_file(path)?, now, stale_after)
    }

    /// Restarts every shard cold with its warm-up clock anchored at
    /// `epoch` — the uniform anchor that keeps sharded fail-open
    /// verdicts identical to a sequential filter's.
    pub fn start_cold_at(&self, epoch: Timestamp) {
        for shard in &self.inner.shards {
            shard.write().start_cold_at(epoch);
        }
    }
}

impl<F: PacketFilter + Send + Sync> PacketFilter for ShardedFilter<F> {
    type Stats = F::Stats;

    /// The handle decides through `&self` already, so a sharded filter
    /// is itself concurrent whenever its shards are.
    const CONCURRENT: bool = F::CONCURRENT;

    fn decide(&mut self, packet: &Packet, direction: Direction) -> Verdict {
        ShardedFilter::process_packet(self, packet, direction)
    }

    fn decide_shared(&self, packet: &Packet, direction: Direction) -> Verdict {
        ShardedFilter::process_packet(self, packet, direction)
    }

    fn decide_batch(&mut self, packets: &[(Packet, Direction)], verdicts: &mut Vec<Verdict>) {
        ShardedFilter::process_batch(self, packets, verdicts);
    }

    fn advance(&mut self, now: Timestamp) {
        ShardedFilter::advance(self, now);
    }

    fn advance_shared(&self, now: Timestamp) {
        ShardedFilter::advance(self, now);
    }

    fn stats(&self) -> F::Stats {
        ShardedFilter::stats(self)
    }

    fn memory_bytes(&self) -> usize {
        ShardedFilter::memory_bytes(self)
    }

    fn drop_probability(&self, now: Timestamp) -> f64 {
        ShardedFilter::drop_probability(self, now)
    }

    fn name(&self) -> &str {
        ShardedFilter::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FilterStats;
    use upbound_net::{Protocol, TcpFlags};

    fn handle(shards: usize) -> ShardedFilter {
        ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
            .shards(shards)
            .build()
            .unwrap()
    }

    fn sharded(config: BitmapFilterConfig, shards: usize) -> ShardedFilter {
        ShardedFilter::builder(config)
            .shards(shards)
            .build()
            .unwrap()
    }

    fn out_tuple(port: u16) -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            format!("10.0.0.5:{port}").parse().unwrap(),
            "203.0.113.9:80".parse().unwrap(),
        )
    }

    fn outbound_packet(port: u16, t: f64) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(t),
            out_tuple(port),
            TcpFlags::ACK,
            &[][..],
        )
    }

    #[test]
    fn handle_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<ShardedFilter>();
    }

    #[test]
    fn both_directions_map_to_the_same_shard() {
        let f = handle(7);
        for port in 1024..1224u16 {
            let conn = out_tuple(port);
            assert_eq!(
                f.shard_of(&conn, Direction::Outbound),
                f.shard_of(&conn.inverse(), Direction::Inbound),
                "asymmetric shard for port {port}"
            );
        }
    }

    #[test]
    fn shards_are_used_roughly_evenly() {
        let f = handle(4);
        let mut counts = [0usize; 4];
        for port in 1024..5024u16 {
            counts[f.shard_of(&out_tuple(port), Direction::Outbound)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..=1300).contains(&c), "shard {i} got {c} of 4000 flows");
        }
    }

    #[test]
    fn concurrent_marks_are_all_visible() {
        let f = handle(4);
        std::thread::scope(|scope| {
            for worker in 0..4u16 {
                let f = f.clone();
                scope.spawn(move || {
                    for i in 0..100u16 {
                        let port = 10_000 + worker * 1000 + i;
                        f.process_packet(&outbound_packet(port, 1.0), Direction::Outbound);
                    }
                });
            }
        });
        // Every response is recognized afterwards.
        for worker in 0..4u16 {
            for i in 0..100u16 {
                let port = 10_000 + worker * 1000 + i;
                let resp = Packet::tcp(
                    Timestamp::from_secs(1.5),
                    out_tuple(port).inverse(),
                    TcpFlags::ACK,
                    &[][..],
                );
                assert_eq!(f.process_packet(&resp, Direction::Inbound), Verdict::Pass);
            }
        }
        let stats = f.stats();
        assert_eq!(stats.outbound_packets, 400);
        assert_eq!(stats.inbound_hits, 400);
    }

    #[test]
    fn timer_thread_pattern_rotates_all_shards() {
        let f = handle(3);
        let ticker = f.clone();
        let t = std::thread::spawn(move || {
            ticker.advance(Timestamp::from_secs(17.0));
        });
        t.join().unwrap();
        // Every shard rotated 3 times (5, 10, 15 s) → max-merge is 3.
        assert_eq!(f.stats().rotations, 3);
        for i in 0..3 {
            assert_eq!(f.with_shard(i, |s| s.stats().rotations).unwrap(), 3);
        }
    }

    #[test]
    fn with_shard_gives_exclusive_access() {
        let f = handle(2);
        let bytes = f.with_shard(0, |s| s.memory_bytes()).unwrap();
        assert_eq!(bytes, 512 * 1024);
        assert_eq!(f.memory_bytes(), 2 * 512 * 1024);
    }

    #[test]
    fn shared_uplink_drives_global_drop_probability() {
        use crate::DropPolicy;
        let config = BitmapFilterConfig::builder()
            .drop_policy(DropPolicy::new(1_000.0, 10_000.0).unwrap())
            .build()
            .unwrap();
        let f = sharded(config, 4);
        // Spread outbound load across many flows → many shards. Each
        // shard alone would sit below H, but the aggregate saturates.
        for port in 0..200u16 {
            let pkt = Packet::tcp(
                Timestamp::from_secs(1.0),
                out_tuple(10_000 + port),
                TcpFlags::ACK,
                vec![0u8; 1000],
            );
            f.process_packet(&pkt, Direction::Outbound);
        }
        let now = Timestamp::from_secs(2.0);
        assert!(
            f.drop_probability(now) > 0.99,
            "aggregate rate must saturate the policy"
        );
        // And every shard reports the identical global value.
        for i in 0..4 {
            let p = f.with_shard(i, |s| s.drop_probability(now)).unwrap();
            assert!((p - f.drop_probability(now)).abs() < 1e-12);
        }
    }

    #[test]
    fn merged_stats_equal_sequential_filter() {
        let config = BitmapFilterConfig::paper_evaluation();
        let mut seq = BitmapFilter::new(config.clone());
        let sharded = handle(4);
        let mut packets = Vec::new();
        for i in 0..300u16 {
            packets.push((
                outbound_packet(1024 + i, 0.5 + i as f64 * 0.01),
                Direction::Outbound,
            ));
        }
        for i in 0..300u16 {
            let tuple = out_tuple(1024 + i).inverse();
            packets.push((
                Packet::tcp(
                    Timestamp::from_secs(4.0 + i as f64 * 0.01),
                    tuple,
                    TcpFlags::ACK,
                    &[][..],
                ),
                Direction::Inbound,
            ));
        }
        let mut seq_verdicts = Vec::new();
        let mut sharded_verdicts = Vec::new();
        for (pkt, dir) in &packets {
            seq_verdicts.push(seq.process_packet(pkt, *dir));
            sharded_verdicts.push(sharded.process_packet(pkt, *dir));
        }
        assert_eq!(seq_verdicts, sharded_verdicts);
        let last = packets.last().unwrap().0.ts();
        seq.advance(last);
        sharded.advance(last);
        let merged: FilterStats = sharded.stats();
        assert_eq!(merged, seq.stats());
    }

    #[test]
    fn watermark_keeps_nonmonotonic_verdicts_sequential() {
        let config = BitmapFilterConfig::paper_evaluation();
        // A trace whose clock jumps backward and forward: outbound marks
        // and inbound lookups interleaved in a scrambled time order,
        // plus one far-future outlier mid-stream.
        let mut packets = Vec::new();
        for i in 0..120u16 {
            let t = ((i as u64 * 37) % 29) as f64 + (i as f64) * 0.001;
            packets.push((outbound_packet(2000 + i, t), Direction::Outbound));
            let tuple = out_tuple(2000 + i).inverse();
            let t_in = ((i as u64 * 53) % 31) as f64 + 0.4;
            packets.push((
                Packet::tcp(Timestamp::from_secs(t_in), tuple, TcpFlags::ACK, &[][..]),
                Direction::Inbound,
            ));
            if i == 60 {
                packets.push((outbound_packet(9999, 5_000.0), Direction::Outbound));
            }
        }
        for shards in [1usize, 4] {
            let mut seq = BitmapFilter::new(config.clone());
            let sharded = sharded(config.clone(), shards);
            let mut watermark = Timestamp::ZERO;
            for (i, (pkt, dir)) in packets.iter().enumerate() {
                watermark = watermark.max(pkt.ts());
                let a = seq.process_packet(pkt, *dir);
                let b = sharded.process_packet_at(pkt, *dir, watermark);
                assert_eq!(a, b, "verdict diverged at packet {i} with {shards} shards");
            }
        }
    }

    #[test]
    fn process_batch_matches_sequential_on_nonmonotonic_trace() {
        let config = BitmapFilterConfig::paper_evaluation();
        let mut packets = Vec::new();
        for i in 0..120u16 {
            let t = ((i as u64 * 37) % 29) as f64 + (i as f64) * 0.001;
            packets.push((outbound_packet(2000 + i, t), Direction::Outbound));
            let tuple = out_tuple(2000 + i).inverse();
            let t_in = ((i as u64 * 53) % 31) as f64 + 0.4;
            packets.push((
                Packet::tcp(Timestamp::from_secs(t_in), tuple, TcpFlags::ACK, &[][..]),
                Direction::Inbound,
            ));
            if i == 60 {
                packets.push((outbound_packet(9999, 5_000.0), Direction::Outbound));
            }
        }
        let mut seq = BitmapFilter::new(config.clone());
        let mut seq_verdicts = Vec::new();
        seq.decide_batch(&packets, &mut seq_verdicts);
        for shards in [1usize, 4] {
            for batch in [1usize, 7, 64, 4096] {
                let sharded = sharded(config.clone(), shards);
                let mut verdicts = Vec::new();
                for chunk in packets.chunks(batch) {
                    sharded.process_batch(chunk, &mut verdicts);
                }
                assert_eq!(
                    verdicts, seq_verdicts,
                    "batch size {batch} with {shards} shards diverged"
                );
            }
        }
    }

    #[test]
    fn process_batch_appends_after_existing_verdicts() {
        let f = handle(2);
        let mut verdicts = vec![Verdict::Drop];
        let packets = vec![(outbound_packet(4000, 1.0), Direction::Outbound)];
        f.process_batch(&packets, &mut verdicts);
        assert_eq!(verdicts, vec![Verdict::Drop, Verdict::Pass]);
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        let err = ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
            .shards(0)
            .build()
            .unwrap_err();
        assert_eq!(err, crate::ConfigError::ZeroShards);
        assert!(err.to_string().contains("shard"));
    }

    #[test]
    fn shard_accessors_report_out_of_range() {
        let f = handle(2);
        let err = f.with_shard(2, |s| s.memory_bytes()).unwrap_err();
        assert_eq!(
            err,
            ShardIndexError {
                index: 2,
                shards: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
        let fresh = BitmapFilter::new(BitmapFilterConfig::paper_evaluation());
        assert!(f.replace_shard(9, fresh).is_err());
    }

    #[test]
    fn sharded_checkpoint_roundtrips_verdicts_and_stats() {
        let config = BitmapFilterConfig::paper_evaluation();
        let original = sharded(config.clone(), 4);
        for i in 0..200u16 {
            original.process_packet(
                &outbound_packet(1024 + i, 0.5 + i as f64 * 0.01),
                Direction::Outbound,
            );
        }
        let watermark = Timestamp::from_secs(3.0);
        let bytes = original.checkpoint_bytes(watermark);

        let restored = sharded(config.clone(), 4);
        let outcome = restored
            .restore_bytes(&bytes, watermark, config.expiry_timer())
            .unwrap();
        assert_eq!(outcome, RestoreOutcome::Warm);
        assert_eq!(restored.stats(), original.stats());
        // Identical verdicts on a mixed probe stream.
        for i in 0..200u16 {
            let tuple = out_tuple(1024 + i).inverse();
            let pkt = Packet::tcp(
                Timestamp::from_secs(4.0 + i as f64 * 0.01),
                tuple,
                TcpFlags::ACK,
                &[][..],
            );
            assert_eq!(
                original.process_packet(&pkt, Direction::Inbound),
                restored.process_packet(&pkt, Direction::Inbound),
                "diverged at probe {i}"
            );
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn sharded_restore_rejects_shard_count_mismatch() {
        let config = BitmapFilterConfig::paper_evaluation();
        let bytes = sharded(config.clone(), 4).checkpoint_bytes(Timestamp::ZERO);
        let other = sharded(config.clone(), 2);
        assert!(matches!(
            other.restore_bytes(&bytes, Timestamp::ZERO, config.expiry_timer()),
            Err(SnapshotError::ConfigMismatch("shard count"))
        ));
    }

    #[test]
    fn sharded_restore_rejects_single_filter_snapshot() {
        let config = BitmapFilterConfig::paper_evaluation();
        let single = BitmapFilter::new(config.clone()).snapshot_bytes(Timestamp::ZERO);
        let sharded = sharded(config.clone(), 2);
        assert!(matches!(
            sharded.restore_bytes(&single, Timestamp::ZERO, config.expiry_timer()),
            Err(SnapshotError::KindMismatch { .. })
        ));
    }

    #[test]
    fn stale_sharded_checkpoint_goes_cold_uniformly() {
        let config = BitmapFilterConfig::builder()
            .fail_mode(crate::FailMode::Open)
            .build()
            .unwrap();
        let original = sharded(config.clone(), 3);
        for i in 0..60u16 {
            original.process_packet(&outbound_packet(1024 + i, 1.0), Direction::Outbound);
        }
        let bytes = original.checkpoint_bytes(Timestamp::from_secs(1.0));
        let restored = sharded(config.clone(), 3);
        let late = Timestamp::from_secs(500.0);
        let outcome = restored
            .restore_bytes(&bytes, late, config.expiry_timer())
            .unwrap();
        assert_eq!(outcome, RestoreOutcome::Cold);
        // Stats survived, bitmap memory did not, and every shard arms at
        // the same uniform instant.
        assert_eq!(restored.stats().outbound_packets, 60);
        let expect_arm = late + config.expiry_timer();
        for i in 0..3 {
            assert_eq!(
                restored.with_shard(i, |s| s.armed_at()).unwrap(),
                Some(expect_arm)
            );
            assert_eq!(
                restored
                    .with_shard(i, |s| s.bitmap().utilization())
                    .unwrap(),
                0.0
            );
        }
    }

    #[test]
    fn checkpoint_file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("upbound-shard-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("filter.snap");
        let config = BitmapFilterConfig::paper_evaluation();
        let original = sharded(config.clone(), 2);
        original.process_packet(&outbound_packet(2000, 1.0), Direction::Outbound);
        let watermark = Timestamp::from_secs(1.0);
        original.checkpoint_to(&path, watermark).unwrap();
        assert!(!dir.join("filter.snap.tmp").exists());
        let restored = sharded(config.clone(), 2);
        assert_eq!(
            restored
                .restore_from(&path, watermark, config.expiry_timer())
                .unwrap(),
            RestoreOutcome::Warm
        );
        assert_eq!(restored.stats(), original.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replace_shard_installs_fresh_state() {
        let f = handle(3);
        for i in 0..120u16 {
            f.process_packet(&outbound_packet(1024 + i, 1.0), Direction::Outbound);
        }
        let victim = f.shard_of(&out_tuple(1030), Direction::Outbound);
        let fresh = BitmapFilter::new(BitmapFilterConfig::paper_evaluation())
            .with_shared_uplink(Arc::clone(f.uplink()));
        f.replace_shard(victim, fresh).unwrap();
        assert_eq!(
            f.with_shard(victim, |s| s.stats()).unwrap(),
            FilterStats::default()
        );
        // The replaced shard forgot its marks; other shards kept theirs.
        let resp = Packet::tcp(
            Timestamp::from_secs(1.5),
            out_tuple(1030).inverse(),
            TcpFlags::ACK,
            &[][..],
        );
        assert_eq!(f.process_packet(&resp, Direction::Inbound), Verdict::Drop);
        let survivor = (0..120u16)
            .map(|i| out_tuple(1024 + i))
            .find(|t| f.shard_of(t, Direction::Outbound) != victim)
            .unwrap();
        let resp = Packet::tcp(
            Timestamp::from_secs(1.5),
            survivor.inverse(),
            TcpFlags::ACK,
            &[][..],
        );
        assert_eq!(f.process_packet(&resp, Direction::Inbound), Verdict::Pass);
    }
}
