//! The shared timestamp-driven machinery behind the production filters.
//!
//! [`BitmapFilter`](crate::BitmapFilter) and the SPI baseline used to
//! carry the same loop around their data structures: a tick timer driven
//! by packet timestamps (bitmap rotation / flow-table purge), a windowed
//! uplink [`ThroughputMonitor`], the [`DropPolicy`] → `P_d` derivation of
//! the paper's Equation 1, per-packet drop draws, and
//! [`FilterObserver`] dispatch. [`FilterEngine`] hoists that loop into
//! one component both filters are rebuilt on.
//!
//! # Deterministic, order-independent drop draws
//!
//! Drop decisions are not drawn from a sequential RNG stream; they are a
//! pure function of `(seed, filter key, packet timestamp, draw index)`
//! hashed through FNV-1a and a splitmix64 finalizer. Two consequences:
//!
//! * replays with the same seed are bit-for-bit reproducible, and
//! * the draw a packet receives does not depend on how traffic from
//!   other flows is interleaved around it — which is what lets a
//!   [`ShardedFilter`](crate::ShardedFilter) partition the five-tuple
//!   space over N shards and still produce verdicts identical to a
//!   sequential run with the same seed.
//!
//! Statistically the draws remain independent uniform variates per
//! `(key, timestamp, index)` triple, matching the per-packet
//! independence the paper's Algorithm 2 assumes.

use crate::hash::{fnv1a, splitmix64};
use crate::observe::{FilterObserver, InboundDecision, RotationEvent};
use crate::red::DropPolicy;
use crate::{ThroughputMonitor, Verdict};
use std::sync::Arc;
use upbound_net::{FiveTuple, TimeDelta, Timestamp};

/// Domain separator so drop draws never alias the bitmap's bit indexes,
/// which are derived from the same FNV-1a base hash.
const DRAW_DOMAIN: u64 = 0xd509_7cc9_44a5_1a27;

/// Where the engine's uplink measurement lives: owned by this filter, or
/// shared with sibling shards that together bound one client network.
/// Shared between [`FilterEngine`] and the crate-internal `SharedEngine`.
#[derive(Debug, Clone)]
pub(crate) enum Uplink {
    Local(ThroughputMonitor),
    Shared(Arc<ThroughputMonitor>),
}

impl Uplink {
    pub(crate) fn monitor(&self) -> &ThroughputMonitor {
        match self {
            Uplink::Local(m) => m,
            Uplink::Shared(m) => m,
        }
    }
}

/// The engine loop shared by [`BitmapFilter`](crate::BitmapFilter) and
/// the SPI baseline: tick scheduling, uplink throughput bookkeeping,
/// `P_d` derivation, deterministic drop draws, and observer dispatch.
///
/// The filter that embeds an engine keeps only its data structure (the
/// rotating bitmap, the flow table) and passes a closure to
/// [`advance`](Self::advance) describing what one tick does to it.
#[derive(Debug, Clone)]
pub struct FilterEngine<O: FilterObserver> {
    drop_policy: DropPolicy,
    seed: u64,
    tick_every: TimeDelta,
    next_tick: Timestamp,
    ticks: u64,
    uplink: Uplink,
    observer: O,
}

impl<O: FilterObserver> FilterEngine<O> {
    /// Creates an engine ticking every `tick_every`, measuring uplink
    /// throughput with `monitor`, deriving `P_d` from `drop_policy`, and
    /// seeding drop draws with `seed`.
    pub fn new(
        tick_every: TimeDelta,
        monitor: ThroughputMonitor,
        drop_policy: DropPolicy,
        seed: u64,
        observer: O,
    ) -> Self {
        Self {
            drop_policy,
            seed,
            tick_every,
            next_tick: Timestamp::ZERO + tick_every,
            ticks: 0,
            uplink: Uplink::Local(monitor),
            observer,
        }
    }

    /// Rebinds the uplink measurement to a monitor shared with sibling
    /// shards, so `P_d` derives from the *aggregate* upload rate of the
    /// whole client network rather than this shard's slice of it.
    pub fn share_uplink(&mut self, uplink: Arc<ThroughputMonitor>) {
        self.uplink = Uplink::Shared(uplink);
    }

    /// The uplink throughput monitor (owned or shared).
    pub fn monitor(&self) -> &ThroughputMonitor {
        self.uplink.monitor()
    }

    /// The installed observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The installed observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Ticks performed so far (rotations or purge sweeps).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The drop policy in force.
    pub fn drop_policy(&self) -> DropPolicy {
        self.drop_policy
    }

    /// `true` when at least one tick is due at or before `now`.
    ///
    /// The cheap guard batched decision paths use to skip the full
    /// [`advance`](Self::advance) bookkeeping between ticks: ticks come
    /// once per `Δt` (seconds), packets come millions per second, so the
    /// common case is a single comparison.
    pub fn tick_due(&self, now: Timestamp) -> bool {
        now >= self.next_tick
    }

    /// Records `bytes` of uplink traffic at time `now`.
    pub fn record_uplink(&self, now: Timestamp, bytes: u64) {
        self.uplink.monitor().record(now, bytes);
    }

    /// The drop probability Equation 1 yields for the currently measured
    /// uplink throughput.
    pub fn drop_probability(&self, now: Timestamp) -> f64 {
        self.drop_policy
            .drop_probability(self.uplink.monitor().rate_bps(now))
    }

    /// The most ticks [`advance`](Self::advance) will *execute* for one
    /// call. A far-future timestamp (clock glitch, corrupt trace record)
    /// can put millions of ticks in arrears; executing each one would
    /// stall the filter for minutes. After `k` consecutive rotations
    /// every bitmap vector has been cleared once, so any state the
    /// skipped ticks would have produced is already all-zero — the engine
    /// jumps the tick counter and runs only the trailing
    /// `MAX_TICK_CATCHUP` ticks (enough for every practical `k`).
    pub const MAX_TICK_CATCHUP: u64 = MAX_TICK_CATCHUP;

    /// Applies every tick due at or before `now`, calling `on_tick` with
    /// the tick's scheduled timestamp (the `b.rotate` timer of paper
    /// Algorithm 1, or the SPI purge sweep), then notifying the observer.
    ///
    /// Backward timestamps are a no-op (no tick is due), and far-future
    /// timestamps are bounded by [`MAX_TICK_CATCHUP`](Self::MAX_TICK_CATCHUP):
    /// the arrears beyond that bound are skipped in O(1) rather than
    /// executed one by one.
    pub fn advance(&mut self, now: Timestamp, mut on_tick: impl FnMut(Timestamp)) {
        if now >= self.next_tick {
            let every = self.tick_every.as_micros();
            let due = (now.as_micros() - self.next_tick.as_micros()) / every + 1;
            if due > Self::MAX_TICK_CATCHUP {
                let skipped = due - Self::MAX_TICK_CATCHUP;
                self.ticks += skipped;
                self.next_tick += self.tick_every.times(skipped);
            }
        }
        while now >= self.next_tick {
            let at = self.next_tick;
            on_tick(at);
            self.ticks += 1;
            self.next_tick += self.tick_every;
            // Ticks are rare (once per Δt), so the operating point is
            // computed eagerly for the observer.
            let monitor = self.uplink.monitor();
            let p_d = self.drop_policy.drop_probability(monitor.rate_bps(at));
            self.observer.on_rotation(&RotationEvent {
                now: at,
                rotations: self.ticks,
                monitor,
                p_d,
            });
        }
    }

    /// One deterministic drop draw for the packet identified by
    /// `key_bytes` at time `now`: returns `true` (drop) with probability
    /// `p_d`, independently per `draw` index.
    ///
    /// The draw is a pure function of `(seed, key, now, draw)` — see the
    /// module docs for why that makes sharded and sequential runs
    /// verdict-identical.
    pub fn drop_draw(&self, key_bytes: &[u8], now: Timestamp, draw: u32, p_d: f64) -> bool {
        if p_d <= 0.0 {
            return false;
        }
        if p_d >= 1.0 {
            return true;
        }
        unit_draw(self.seed, key_bytes, now, draw) < p_d
    }

    /// Reports an outbound observation to the observer.
    pub fn notify_outbound(&mut self, tuple: &FiveTuple, now: Timestamp) {
        self.observer.on_outbound(tuple, now);
    }

    /// Reports an inbound decision to the observer. `fail_open` marks a
    /// would-be drop that passed because the filter was still in its
    /// warm-up grace period; `warming` marks any decision taken inside
    /// the warm-up window (forensics context); `key` is the filter key
    /// the decision hashed (borrowed, hashed only by forensic
    /// observers).
    #[allow(clippy::too_many_arguments)]
    pub fn notify_inbound(
        &mut self,
        now: Timestamp,
        verdict: Verdict,
        p_d: f64,
        known: bool,
        drop_draws: usize,
        fail_open: bool,
        warming: bool,
        key: &[u8],
    ) {
        self.observer.on_inbound(&InboundDecision {
            now,
            verdict,
            p_d,
            known,
            drop_draws,
            fail_open,
            warming,
            key,
            rotation_epoch: self.ticks,
            monitor: self.uplink.monitor(),
        });
    }

    /// Reports a cold start (fresh filter or stale-snapshot restart) to
    /// the observer: the filter memory is empty and, under fail-open,
    /// drops are suppressed until `armed_at`.
    pub fn notify_cold_start(&mut self, now: Timestamp, armed_at: Timestamp) {
        self.observer.on_cold_start(now, armed_at);
    }

    /// Reports that the warm-up grace period ended and drops are armed.
    pub fn notify_armed(&mut self, now: Timestamp) {
        self.observer.on_armed(now);
    }

    /// Exports the tick phase `(ticks, next_tick)` for snapshot encoding.
    pub fn tick_phase(&self) -> (u64, Timestamp) {
        (self.ticks, self.next_tick)
    }

    /// Restores a tick phase captured by [`tick_phase`](Self::tick_phase).
    /// A restored `next_tick` far behind the next packet is harmless:
    /// [`advance`](Self::advance) catches up in O(1) past
    /// [`MAX_TICK_CATCHUP`](Self::MAX_TICK_CATCHUP).
    pub fn restore_tick_phase(&mut self, ticks: u64, next_tick: Timestamp) {
        self.ticks = ticks;
        self.next_tick = next_tick;
    }

    /// Clears tick phase and the uplink monitor.
    ///
    /// Note that with a [shared](Self::share_uplink) uplink this resets
    /// the aggregate measurement for every sibling shard as well.
    pub fn reset(&mut self) {
        self.ticks = 0;
        self.next_tick = Timestamp::ZERO + self.tick_every;
        self.uplink.monitor().reset();
    }
}

/// Catch-up bound shared by [`FilterEngine`] and the crate-internal
/// `SharedEngine` — see [`FilterEngine::MAX_TICK_CATCHUP`].
pub(crate) const MAX_TICK_CATCHUP: u64 = 64;

/// Maps `(seed, key, now, draw)` to a uniform variate in `[0, 1)`.
/// Shared with `SharedEngine` so concurrent and exclusive paths draw
/// bit-identically.
pub(crate) fn unit_draw(seed: u64, key: &[u8], now: Timestamp, draw: u32) -> f64 {
    let mut h = fnv1a(seed ^ DRAW_DOMAIN, key);
    h = splitmix64(h ^ now.as_micros());
    h = splitmix64(h.wrapping_add(u64::from(draw).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    // Take the top 53 bits → exactly representable in f64, in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NoopObserver;

    fn engine(seed: u64) -> FilterEngine<NoopObserver> {
        FilterEngine::new(
            TimeDelta::from_secs(5.0),
            ThroughputMonitor::new(TimeDelta::from_secs(1.0), 20),
            DropPolicy::drop_all(),
            seed,
            NoopObserver,
        )
    }

    #[test]
    fn advance_catches_up_all_due_ticks() {
        let mut e = engine(0);
        let mut fired = Vec::new();
        e.advance(Timestamp::from_secs(17.0), |at| fired.push(at));
        assert_eq!(e.ticks(), 3); // at 5, 10, 15 s
        assert_eq!(
            fired,
            vec![
                Timestamp::from_secs(5.0),
                Timestamp::from_secs(10.0),
                Timestamp::from_secs(15.0)
            ]
        );
        e.advance(Timestamp::from_secs(17.0), |_| panic!("no tick due"));
        assert_eq!(e.ticks(), 3);
    }

    #[test]
    fn far_future_advance_is_bounded() {
        let mut e = engine(0); // ticks every 5 s
        let mut fired = 0u64;
        // 20 million ticks in arrears; only the trailing window executes.
        e.advance(Timestamp::from_secs(1e8), |_| fired += 1);
        assert_eq!(fired, FilterEngine::<NoopObserver>::MAX_TICK_CATCHUP);
        // The tick counter still reflects every due tick.
        assert_eq!(e.ticks(), 20_000_000);
        // The phase is fully caught up afterwards.
        e.advance(Timestamp::from_secs(1e8), |_| panic!("no tick due"));
        let mut later = Vec::new();
        e.advance(Timestamp::from_secs(1e8 + 5.0), |at| later.push(at));
        assert_eq!(later, vec![Timestamp::from_secs(1e8 + 5.0)]);
    }

    #[test]
    fn backward_now_never_ticks() {
        let mut e = engine(0);
        e.advance(Timestamp::from_secs(12.0), |_| {});
        assert_eq!(e.ticks(), 2);
        e.advance(Timestamp::from_secs(3.0), |_| {
            panic!("backward time must not tick")
        });
        assert_eq!(e.ticks(), 2);
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = engine(1);
        let b = engine(1);
        let c = engine(2);
        let now = Timestamp::from_secs(3.0);
        let mut diverged = false;
        for i in 0..256u32 {
            let key = [i as u8, (i >> 8) as u8, 0xaa];
            assert_eq!(
                a.drop_draw(&key, now, 0, 0.5),
                b.drop_draw(&key, now, 0, 0.5)
            );
            diverged |= a.drop_draw(&key, now, 0, 0.5) != c.drop_draw(&key, now, 0, 0.5);
        }
        assert!(diverged, "seeds 1 and 2 never disagreed over 256 keys");
    }

    #[test]
    fn draw_indexes_are_independent() {
        let e = engine(7);
        let now = Timestamp::from_secs(1.0);
        let mut drops = 0usize;
        let trials = 20_000u32;
        for i in 0..trials {
            let key = i.to_le_bytes();
            if e.drop_draw(&key, now, i % 3, 0.3) {
                drops += 1;
            }
        }
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "draw rate {rate}");
    }

    #[test]
    fn pd_edges_shortcut() {
        let e = engine(0);
        let now = Timestamp::from_secs(0.0);
        for i in 0..64u32 {
            assert!(!e.drop_draw(&i.to_le_bytes(), now, 0, 0.0));
            assert!(e.drop_draw(&i.to_le_bytes(), now, 0, 1.0));
        }
    }

    #[test]
    fn shared_uplink_feeds_aggregate_rate() {
        let shared = Arc::new(ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4));
        let mut a = engine(0);
        let mut b = engine(0);
        a.share_uplink(Arc::clone(&shared));
        b.share_uplink(Arc::clone(&shared));
        let now = Timestamp::from_secs(0.5);
        a.record_uplink(now, 1000);
        b.record_uplink(now, 500);
        assert_eq!(shared.total_bytes(), 1500);
        assert_eq!(a.monitor().total_bytes(), 1500);
        assert!((a.monitor().rate_bps(now) - b.monitor().rate_bps(now)).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_tick_phase() {
        let mut e = engine(0);
        e.advance(Timestamp::from_secs(12.0), |_| {});
        assert_eq!(e.ticks(), 2);
        e.reset();
        assert_eq!(e.ticks(), 0);
        let mut fired = 0;
        e.advance(Timestamp::from_secs(5.0), |_| fired += 1);
        assert_eq!(fired, 1);
    }
}
