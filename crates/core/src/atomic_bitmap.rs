//! The concurrent `{k × N}` bitmap: lock-free marks and lookups with
//! epoch-based (seqlock) rotation.

use crate::atomic_bitvec::AtomicBitVec;
use crate::HashFamily;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// The result of one consistent inbound probe: whether all `m` hashed
/// bits were set in the current vector, and how many were not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitmapProbe {
    /// `true` when every hashed bit was set — the key was marked within
    /// the expiry window (or collided; a false positive).
    pub known: bool,
    /// Number of hashed bits *not* set in the current vector — the
    /// per-bit drop-draw count of the paper's Algorithm 2.
    pub unmarked: usize,
}

/// The concurrent `{k × N}` bitmap (paper §4.2) — the lock-free
/// counterpart of [`Bitmap`](crate::Bitmap), shared by reference across
/// worker threads:
///
/// * **mark** is an `AtomicU64::fetch_or` per touched word, vector-outer
///   for cache locality;
/// * **lookup**/**probe** are relaxed loads of the current vector;
/// * **rotate** (every `Δt`) is an epoch/seqlock swap of the
///   current-vector index — readers retry the rare probe that overlaps a
///   rotation instead of every packet taking a lock, and the departed
///   vector is zeroed inside the (reader-excluded, lock-free for the
///   rotator) epoch window.
///
/// # Consistency contract
///
/// A [`probe`](Self::probe) is *seqlock-consistent*: it reflects the
/// bitmap entirely before or entirely after any concurrent rotation,
/// never a half-rotated state, so a verdict can never flip Pass→Drop
/// because a lookup raced the index swap against the vector zeroing. A
/// [`mark`](Self::mark) that observes a concurrent rotation re-marks, so
/// a mark that *completes* after a rotation survives the full `k − 1`
/// further rotations; a mark racing a rotation keeps at least the
/// "marked just before rotation" lower bound. Either way marks expire
/// within the paper's `T_e ∈ [(k−1)·Δt, k·Δt]` window. The memory-
/// ordering argument lives in DESIGN.md ("Epoch-rotation memory
/// ordering").
///
/// # Examples
///
/// ```
/// use upbound_core::AtomicBitmap;
///
/// let bm = AtomicBitmap::new(4, 10, 3); // {4 × 2^10}, m = 3
/// bm.mark(b"conn");
/// assert!(bm.lookup(b"conn"));
/// for _ in 0..4 {
///     bm.rotate();
/// }
/// assert!(!bm.lookup(b"conn")); // expired
/// ```
#[derive(Debug)]
pub struct AtomicBitmap {
    vectors: Box<[AtomicBitVec]>,
    hashes: HashFamily,
    /// Index of the current vector; mutated only inside the epoch
    /// window.
    idx: AtomicU64,
    /// Total rotations performed.
    rotations: AtomicU64,
    /// Seqlock epoch: odd while a rotation is in progress. Readers and
    /// markers validate against it; the rotator increments it twice.
    epoch: AtomicU64,
}

impl AtomicBitmap {
    /// Creates a `{k × 2^n_bits}` bitmap with `m` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (rotation needs at least a current and a
    /// clearable vector) or on [`HashFamily::new`] bounds.
    pub fn new(k: usize, n_bits: u32, m: usize) -> Self {
        assert!(k >= 2, "need at least two bit vectors, got {k}");
        let hashes = HashFamily::new(m, n_bits);
        Self {
            vectors: (0..k)
                .map(|_| AtomicBitVec::new(hashes.table_size()))
                .collect(),
            hashes,
            idx: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of bit vectors `k`.
    pub fn k(&self) -> usize {
        self.vectors.len()
    }

    /// Bits per vector `N`.
    pub fn vector_len(&self) -> usize {
        self.vectors[0].len()
    }

    /// The shared hash family.
    pub fn hash_family(&self) -> HashFamily {
        self.hashes
    }

    /// Index of the current bit vector.
    pub fn current_index(&self) -> usize {
        self.idx.load(Ordering::Relaxed) as usize
    }

    /// Total rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Marks `key` in **all** `k` vectors (Algorithm 2, outbound path) —
    /// one `fetch_or` per touched word, no lock.
    ///
    /// The loop is vector-outer: all `m` bits of one vector are set
    /// before moving to the next, so each vector's cache lines are
    /// touched consecutively instead of striding across all `k` vectors
    /// per bit. If a rotation completes concurrently, the mark re-runs
    /// (`fetch_or` is idempotent), so a mark that returns after
    /// `rotate()` returned is fully present in the post-rotation bitmap.
    pub fn mark(&self, key: &[u8]) {
        // Hash once; the index iterator is cheap to clone per vector.
        let indexes = self.hashes.indexes(key);
        loop {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            for v in self.vectors.iter() {
                for bit in indexes.clone() {
                    v.set(bit);
                }
            }
            // SeqCst pairs with the rotator's fence: either our writes
            // are ordered before the rotation (it re-zeroes only the
            // departed vector — within the expiry contract), or we
            // observe the epoch change here and re-mark.
            fence(Ordering::SeqCst);
            if self.epoch.load(Ordering::Relaxed) == e1 {
                return;
            }
        }
    }

    /// Looks `key` up in the **current** vector only (Algorithm 2,
    /// inbound path). Equivalent to [`probe`](Self::probe)`.known`.
    pub fn lookup(&self, key: &[u8]) -> bool {
        self.probe(key).known
    }

    /// One seqlock-consistent inbound check: reads the current-vector
    /// index and all `m` hashed bits as of a single rotation epoch,
    /// retrying the (rare) read that overlaps a rotation.
    ///
    /// This replaces the legacy lookup-then-count-unmarked pair with one
    /// consistent read, so the drop-draw count can never mix pre- and
    /// post-rotation bits.
    pub fn probe(&self, key: &[u8]) -> BitmapProbe {
        let indexes = self.hashes.indexes(key);
        loop {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let idx = self.idx.load(Ordering::Relaxed) as usize;
            let current = &self.vectors[idx];
            let unmarked = indexes.clone().filter(|&bit| !current.get(bit)).count();
            fence(Ordering::Acquire);
            if self.epoch.load(Ordering::Relaxed) == e1 {
                return BitmapProbe {
                    known: unmarked == 0,
                    unmarked,
                };
            }
        }
    }

    /// The timer handler `b.rotate()` (Algorithm 1): advances the
    /// current index to the next vector and zeroes the vector just left,
    /// inside an epoch window that concurrent probes validate against.
    /// Returns the new current index.
    ///
    /// Concurrent rotators serialize on the epoch word itself (the
    /// second spins through the first's window); the embedding filter's
    /// tick lock makes that contention impossible in practice.
    pub fn rotate(&self) -> usize {
        let mut e = self.epoch.load(Ordering::Acquire);
        loop {
            if e & 1 == 1 {
                std::hint::spin_loop();
                e = self.epoch.load(Ordering::Acquire);
                continue;
            }
            match self
                .epoch
                .compare_exchange_weak(e, e + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(current) => e = current,
            }
        }
        // Epoch is odd: probes spin, marks will re-validate.
        fence(Ordering::SeqCst);
        let last = self.idx.load(Ordering::Relaxed) as usize;
        let next = (last + 1) % self.vectors.len();
        self.idx.store(next as u64, Ordering::Relaxed);
        self.vectors[last].clear();
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.epoch.store(e + 2, Ordering::Release);
        next
    }

    /// Utilization `U = b/N` of the current vector (paper Eq. 2).
    pub fn utilization(&self) -> f64 {
        let e1 = self.epoch.load(Ordering::Acquire);
        let u = self.vectors[self.idx.load(Ordering::Relaxed) as usize % self.vectors.len()]
            .utilization();
        // Telemetry read: a concurrent rotation makes the value
        // momentarily approximate; re-read once for the common case.
        if self.epoch.load(Ordering::Acquire) == e1 && e1 & 1 == 0 {
            u
        } else {
            self.vectors[self.current_index()].utilization()
        }
    }

    /// Expected penetration probability `U^m` for a random unknown key
    /// (paper Eq. 2).
    pub fn penetration_probability(&self) -> f64 {
        self.utilization().powi(self.hashes.m() as i32)
    }

    /// Total memory of the bit storage: `(k × N)/8` bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vectors.iter().map(AtomicBitVec::memory_bytes).sum()
    }

    /// Zeroes every vector and resets the rotation clock. Exclusive
    /// (`&mut`): callers reset through the control plane, never
    /// concurrently with deciders.
    pub fn reset(&mut self) {
        for v in self.vectors.iter() {
            v.clear();
        }
        *self.idx.get_mut() = 0;
        *self.rotations.get_mut() = 0;
    }

    /// Creates a *parked* bitmap: full `{k × 2^n_bits}` geometry but no
    /// bit storage. Rotation, reset and utilization queries all work (a
    /// parked vector clears as a no-op and reads as all-zero
    /// utilization); `mark`/`lookup`/`probe` must not be called until
    /// [`unpark`](Self::unpark) attaches buffers.
    ///
    /// # Panics
    ///
    /// Same bounds as [`AtomicBitmap::new`].
    pub(crate) fn new_parked(k: usize, n_bits: u32, m: usize) -> Self {
        assert!(k >= 2, "need at least two bit vectors, got {k}");
        let hashes = HashFamily::new(m, n_bits);
        Self {
            vectors: (0..k)
                .map(|_| AtomicBitVec::new_parked(hashes.table_size()))
                .collect(),
            hashes,
            idx: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Detaches and returns the `k` word buffers, leaving the bitmap
    /// parked. Buffers are returned as-is (not zeroed); the rotation
    /// clock (`idx`, `rotations`) is preserved.
    pub(crate) fn park(&mut self) -> Vec<Vec<u64>> {
        self.vectors
            .iter_mut()
            .map(AtomicBitVec::take_words)
            .collect()
    }

    /// Re-attaches `k` **zeroed** word buffers to a parked bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the buffer count or any buffer size does not match the
    /// bitmap's geometry, or the bitmap is not parked.
    pub(crate) fn unpark(&mut self, buffers: Vec<Vec<u64>>) {
        assert_eq!(buffers.len(), self.vectors.len(), "buffer count mismatch");
        for (v, words) in self.vectors.iter_mut().zip(buffers) {
            v.put_words(words);
        }
    }

    /// `true` when the bitmap currently has no bit storage.
    pub(crate) fn is_parked(&self) -> bool {
        self.vectors.iter().any(AtomicBitVec::is_parked)
    }

    /// Overwrites the rotation clock without touching storage — used when
    /// restoring a parked bitmap from a snapshot that carries only the
    /// clock.
    pub(crate) fn set_clock(&mut self, idx: usize, rotations: u64) -> bool {
        if idx >= self.vectors.len() {
            return false;
        }
        *self.idx.get_mut() = idx as u64;
        *self.rotations.get_mut() = rotations;
        true
    }

    /// Exports `(per-vector words, current index, rotations)` for
    /// snapshot encoding, as one seqlock-consistent read (a concurrent
    /// rotation retries the copy). Parked vectors export empty word
    /// arrays.
    pub(crate) fn snapshot_words(&self) -> (Vec<Vec<u64>>, usize, u64) {
        loop {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let words: Vec<Vec<u64>> = self
                .vectors
                .iter()
                .map(AtomicBitVec::words_snapshot)
                .collect();
            let idx = self.idx.load(Ordering::Relaxed) as usize;
            let rotations = self.rotations.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if self.epoch.load(Ordering::Relaxed) == e1 {
                return (words, idx, rotations);
            }
        }
    }

    /// Overwrites the bit-vector contents and rotation clock from
    /// snapshot fields, validating *before* mutating: on `false` the
    /// bitmap is untouched. Fails when the vector count, any vector's
    /// length, or the index is inconsistent with this bitmap's geometry.
    pub(crate) fn restore_fields(
        &mut self,
        vectors: Vec<AtomicBitVec>,
        idx: usize,
        rotations: u64,
    ) -> bool {
        if vectors.len() != self.vectors.len()
            || idx >= vectors.len()
            || vectors.iter().any(|v| v.len() != self.vector_len())
        {
            return false;
        }
        self.vectors = vectors.into_boxed_slice();
        *self.idx.get_mut() = idx as u64;
        *self.rotations.get_mut() = rotations;
        true
    }
}

impl Clone for AtomicBitmap {
    fn clone(&self) -> Self {
        let (words, idx, rotations) = self.snapshot_words();
        let vectors = self
            .vectors
            .iter()
            .zip(words)
            .map(|(v, w)| {
                if w.is_empty() {
                    AtomicBitVec::new_parked(v.len())
                } else {
                    // Words came straight out of this bitmap, so the
                    // rebuild cannot fail.
                    AtomicBitVec::from_words(v.len(), w)
                        .unwrap_or_else(|| AtomicBitVec::new(v.len()))
                }
            })
            .collect();
        Self {
            vectors,
            hashes: self.hashes,
            idx: AtomicU64::new(idx as u64),
            rotations: AtomicU64::new(rotations),
            epoch: AtomicU64::new(0),
        }
    }
}

impl PartialEq for AtomicBitmap {
    fn eq(&self, other: &Self) -> bool {
        self.hashes == other.hashes
            && self.current_index() == other.current_index()
            && self.rotations() == other.rotations()
            && self.vectors.len() == other.vectors.len()
            && self
                .vectors
                .iter()
                .zip(other.vectors.iter())
                .all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_memory() {
        let bm = AtomicBitmap::new(4, 20, 3);
        assert_eq!(bm.memory_bytes(), 512 * 1024);
        assert_eq!(bm.k(), 4);
        assert_eq!(bm.vector_len(), 1 << 20);
    }

    #[test]
    fn marked_key_is_found() {
        let bm = AtomicBitmap::new(4, 12, 3);
        bm.mark(b"abc");
        assert!(bm.lookup(b"abc"));
        assert!(!bm.lookup(b"xyz"));
        let probe = bm.probe(b"abc");
        assert!(probe.known);
        assert_eq!(probe.unmarked, 0);
    }

    #[test]
    fn probe_counts_unmarked_bits() {
        let bm = AtomicBitmap::new(4, 12, 3);
        let probe = bm.probe(b"never-marked");
        assert!(!probe.known);
        assert!(probe.unmarked >= 1 && probe.unmarked <= 3);
    }

    #[test]
    fn mark_survives_k_minus_one_rotations() {
        let k = 4;
        let bm = AtomicBitmap::new(k, 12, 3);
        bm.mark(b"conn");
        for r in 1..k {
            bm.rotate();
            assert!(bm.lookup(b"conn"), "lost after {r} rotations");
        }
        bm.rotate();
        assert!(!bm.lookup(b"conn"), "survived {k} rotations");
    }

    #[test]
    fn remarking_refreshes_lifetime() {
        let bm = AtomicBitmap::new(3, 12, 2);
        bm.mark(b"conn");
        bm.rotate();
        bm.rotate();
        bm.mark(b"conn");
        bm.rotate();
        bm.rotate();
        assert!(bm.lookup(b"conn"));
    }

    #[test]
    fn rotation_index_wraps() {
        let bm = AtomicBitmap::new(3, 8, 1);
        assert_eq!(bm.current_index(), 0);
        assert_eq!(bm.rotate(), 1);
        assert_eq!(bm.rotate(), 2);
        assert_eq!(bm.rotate(), 0);
        assert_eq!(bm.rotations(), 3);
    }

    #[test]
    fn rotate_clears_only_departed_vector() {
        let bm = AtomicBitmap::new(2, 10, 2);
        bm.mark(b"a");
        bm.rotate();
        assert!(bm.lookup(b"a"));
        bm.mark(b"b");
        bm.rotate();
        assert!(bm.lookup(b"b"));
        assert!(!bm.lookup(b"a"));
    }

    #[test]
    fn matches_legacy_bitmap_exactly() {
        // Same keys, same rotation schedule → bit-identical decisions.
        let mut legacy = crate::Bitmap::new(4, 14, 3);
        let atomic = AtomicBitmap::new(4, 14, 3);
        for i in 0..500u32 {
            let key = i.to_le_bytes();
            legacy.mark(&key);
            atomic.mark(&key);
            if i % 97 == 0 {
                legacy.rotate();
                atomic.rotate();
            }
        }
        for i in 0..2000u32 {
            let key = i.to_le_bytes();
            assert_eq!(legacy.lookup(&key), atomic.lookup(&key), "key {i}");
        }
        assert_eq!(legacy.current_index(), atomic.current_index());
        assert_eq!(legacy.rotations(), atomic.rotations());
        assert!((legacy.utilization() - atomic.utilization()).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut bm = AtomicBitmap::new(3, 8, 2);
        bm.mark(b"x");
        bm.rotate();
        bm.reset();
        assert_eq!(bm.current_index(), 0);
        assert_eq!(bm.rotations(), 0);
        assert!(!bm.lookup(b"x"));
        assert_eq!(bm.utilization(), 0.0);
    }

    #[test]
    fn clone_and_eq_compare_contents() {
        let bm = AtomicBitmap::new(3, 10, 2);
        bm.mark(b"flow");
        bm.rotate();
        let copy = bm.clone();
        assert_eq!(copy, bm);
        assert!(copy.lookup(b"flow"));
        copy.mark(b"other");
        assert_ne!(copy, bm);
    }

    #[test]
    fn snapshot_words_roundtrips_through_restore() {
        let bm = AtomicBitmap::new(3, 10, 2);
        bm.mark(b"flow");
        bm.rotate();
        let (words, idx, rotations) = bm.snapshot_words();
        let mut rebuilt = AtomicBitmap::new(3, 10, 2);
        let vectors: Vec<AtomicBitVec> = words
            .into_iter()
            .map(|w| AtomicBitVec::from_words(1 << 10, w).unwrap())
            .collect();
        assert!(rebuilt.restore_fields(vectors, idx, rotations));
        assert_eq!(rebuilt, bm);
    }

    #[test]
    fn restore_fields_validates_before_mutating() {
        let mut bm = AtomicBitmap::new(3, 10, 2);
        bm.mark(b"keep");
        // Wrong vector count: rejected, bitmap untouched.
        assert!(!bm.restore_fields(vec![AtomicBitVec::new(1 << 10)], 0, 0));
        // Wrong length: rejected.
        let bad: Vec<AtomicBitVec> = (0..3).map(|_| AtomicBitVec::new(16)).collect();
        assert!(!bm.restore_fields(bad, 0, 0));
        // Out-of-range index: rejected.
        let vs: Vec<AtomicBitVec> = (0..3).map(|_| AtomicBitVec::new(1 << 10)).collect();
        assert!(!bm.restore_fields(vs, 3, 0));
        assert!(bm.lookup(b"keep"), "failed restore must leave state intact");
    }

    #[test]
    #[should_panic(expected = "at least two bit vectors")]
    fn single_vector_is_rejected() {
        let _ = AtomicBitmap::new(1, 8, 1);
    }

    #[test]
    fn concurrent_marks_are_never_lost() {
        let bm = AtomicBitmap::new(4, 14, 3);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let bm = &bm;
                scope.spawn(move || {
                    for i in 0..500u32 {
                        bm.mark(&(t * 10_000 + i).to_le_bytes());
                    }
                });
            }
        });
        for t in 0..4u32 {
            for i in 0..500u32 {
                assert!(bm.lookup(&(t * 10_000 + i).to_le_bytes()));
            }
        }
    }

    #[test]
    fn probe_never_sees_half_rotated_state() {
        // A key marked in all k vectors must stay `known` through k−1
        // rotations no matter how probes interleave with the rotator.
        let bm = AtomicBitmap::new(4, 12, 3);
        bm.mark(b"pinned");
        std::thread::scope(|scope| {
            let rotator = {
                let bm = &bm;
                scope.spawn(move || {
                    for _ in 0..3 {
                        // k − 1 rotations
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        bm.rotate();
                    }
                })
            };
            let bm = &bm;
            scope.spawn(move || {
                while bm.rotations() < 3 {
                    assert!(
                        bm.probe(b"pinned").known,
                        "probe lost the key inside the k−1 window"
                    );
                }
            });
            rotator.join().unwrap();
        });
        assert!(bm.lookup(b"pinned"));
        bm.rotate();
        assert!(!bm.lookup(b"pinned"));
    }
}
