//! RED-style drop probability (paper Equation 1).

use serde::{Deserialize, Serialize};

/// Maps the measured uplink throughput `b` to the conditional drop
/// probability `P_d` of unsolicited inbound packets, in the style of
/// Random Early Detection (Floyd & Jacobson):
///
/// ```text
///        ⎧ 0                 if b ≤ L
/// P_d =  ⎨ (b − L)/(H − L)   if L < b < H
///        ⎩ 1                 if b ≥ H
/// ```
///
/// `L` and `H` are throughput thresholds in bits per second. The paper's
/// Figure 9 evaluation uses `L = 50 Mbps`, `H = 100 Mbps`.
///
/// # Examples
///
/// ```
/// use upbound_core::DropPolicy;
///
/// let policy = DropPolicy::new(50e6, 100e6)?;
/// assert_eq!(policy.drop_probability(10e6), 0.0);
/// assert_eq!(policy.drop_probability(75e6), 0.5);
/// assert_eq!(policy.drop_probability(200e6), 1.0);
/// # Ok::<(), upbound_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropPolicy {
    low_bps: f64,
    high_bps: f64,
}

impl DropPolicy {
    /// Creates a policy with lower threshold `low_bps` and upper
    /// threshold `high_bps` (bits per second).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadThresholds`](crate::ConfigError) unless
    /// `0 <= low_bps < high_bps` and both are finite.
    pub fn new(low_bps: f64, high_bps: f64) -> Result<Self, crate::ConfigError> {
        if !(low_bps.is_finite() && high_bps.is_finite() && 0.0 <= low_bps && low_bps < high_bps) {
            return Err(crate::ConfigError::BadThresholds { low_bps, high_bps });
        }
        Ok(Self { low_bps, high_bps })
    }

    /// A policy that drops every unknown inbound packet regardless of
    /// load (`P_d ≡ 1`) — the configuration of the paper's Figure 8
    /// comparison ("drop all inbound packets without states").
    pub fn drop_all() -> Self {
        Self {
            low_bps: -1.0,
            high_bps: 0.0,
        }
    }

    /// The paper's Figure 9 configuration: `L = 50 Mbps`, `H = 100 Mbps`.
    pub fn paper_figure9() -> Self {
        Self {
            low_bps: 50e6,
            high_bps: 100e6,
        }
    }

    /// Lower threshold `L` in bits per second.
    pub fn low_bps(&self) -> f64 {
        self.low_bps
    }

    /// Upper threshold `H` in bits per second.
    pub fn high_bps(&self) -> f64 {
        self.high_bps
    }

    /// Evaluates Equation 1 for throughput `b` (bits per second).
    pub fn drop_probability(&self, throughput_bps: f64) -> f64 {
        if throughput_bps <= self.low_bps {
            0.0
        } else if throughput_bps >= self.high_bps {
            1.0
        } else {
            (throughput_bps - self.low_bps) / (self.high_bps - self.low_bps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_of_equation_one() {
        let p = DropPolicy::new(50.0, 100.0).unwrap();
        assert_eq!(p.drop_probability(0.0), 0.0);
        assert_eq!(p.drop_probability(50.0), 0.0); // b ≤ L
        assert!((p.drop_probability(60.0) - 0.2).abs() < 1e-12);
        assert!((p.drop_probability(99.0) - 0.98).abs() < 1e-12);
        assert_eq!(p.drop_probability(100.0), 1.0); // b ≥ H
        assert_eq!(p.drop_probability(1e12), 1.0);
    }

    #[test]
    fn probability_is_monotone_and_clamped() {
        let p = DropPolicy::paper_figure9();
        let mut prev = 0.0;
        for i in 0..200 {
            let b = i as f64 * 1e6;
            let pd = p.drop_probability(b);
            assert!(pd >= prev);
            assert!((0.0..=1.0).contains(&pd));
            prev = pd;
        }
    }

    #[test]
    fn drop_all_always_drops() {
        let p = DropPolicy::drop_all();
        assert_eq!(p.drop_probability(0.0), 1.0);
        assert_eq!(p.drop_probability(1e9), 1.0);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        assert!(DropPolicy::new(100.0, 50.0).is_err());
        assert!(DropPolicy::new(50.0, 50.0).is_err());
        assert!(DropPolicy::new(-1.0, 50.0).is_err());
        assert!(DropPolicy::new(0.0, f64::INFINITY).is_err());
        assert!(DropPolicy::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn accessors_expose_thresholds() {
        let p = DropPolicy::paper_figure9();
        assert_eq!(p.low_bps(), 50e6);
        assert_eq!(p.high_bps(), 100e6);
    }
}
