//! Crash-safe snapshot encoding: versioned, checksummed filter state.
//!
//! The bitmap filter's entire value is its memory of recently-outbound
//! five-tuples. After a process restart that memory is empty, so every
//! inbound packet of an established flow looks unsolicited until the
//! filter re-warms over `T_e = k·Δt` — exactly the false-positive regime
//! the paper's §4 works to avoid. This module bounds that damage: a
//! filter can periodically [checkpoint](Snapshottable::snapshot_bytes)
//! its state to a compact binary image and, after a crash,
//! [restore](Snapshottable::restore_bytes) it and resume filtering warm.
//!
//! # Container format
//!
//! Every snapshot is wrapped in one self-validating container:
//!
//! ```text
//! magic      8 B   "UPBSNAP1"
//! version    4 B   LE u32, currently 1
//! kind       4 B   LE u32, filter-type discriminator
//! watermark  8 B   LE u64, µs — the trace time the state is valid at
//! length     8 B   LE u64, payload byte count
//! payload    …     filter-specific (see the filter's Snapshottable impl)
//! checksum   8 B   LE u64, FNV-1a + splitmix64 over all preceding bytes
//! ```
//!
//! All integers are little-endian. The checksum covers the header *and*
//! payload, so torn or bit-flipped files are rejected as
//! [`SnapshotError::ChecksumMismatch`] rather than silently restored.
//!
//! # Staleness
//!
//! Bitmap marks expire after `T_e`; a snapshot older than that holds no
//! mark a live filter would still honor. [`Snapshottable::restore_bytes`]
//! therefore compares the snapshot watermark against the caller's `now`:
//! a fresh snapshot restores fully ([`RestoreOutcome::Warm`]), a stale
//! one restores only cumulative statistics and then restarts the filter
//! cold ([`RestoreOutcome::Cold`]) so the warm-up grace period applies.
//!
//! # Atomic writes
//!
//! [`write_atomic`] stages the image in a sibling temp file, fsyncs it,
//! and renames it over the target, then fsyncs the directory — a crash
//! mid-checkpoint leaves either the previous complete snapshot or the
//! new one, never a torn file.

use crate::hash::{fnv1a, splitmix64};
use crate::ThroughputMonitor;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use upbound_net::{TimeDelta, Timestamp};

/// Magic bytes opening every snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"UPBSNAP1";

/// Container format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Kind-bit set on containers written by a
/// [`ShardedFilter`](crate::ShardedFilter) wrapping the shard kind.
pub const SHARDED_KIND_FLAG: u32 = 0x8000_0000;

/// Seed for the container checksum; fixed and independent of every
/// filter seed so snapshot validation never correlates with filtering.
const CHECKSUM_SEED: u64 = 0x6a0f_83b1_55ed_c4a9;

fn checksum(bytes: &[u8]) -> u64 {
    splitmix64(fnv1a(CHECKSUM_SEED, bytes))
}

/// Error reading, validating, or applying a snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem error while reading or writing the snapshot.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The container holds a different filter type than the one
    /// restoring it.
    KindMismatch {
        /// Kind the restoring filter expected.
        expected: u32,
        /// Kind found in the container.
        found: u32,
    },
    /// The trailing checksum does not match the container contents.
    ChecksumMismatch,
    /// The container or payload ended before a field was complete.
    Truncated,
    /// A payload field held a structurally impossible value.
    Malformed(&'static str),
    /// The snapshot was taken under an incompatible filter
    /// configuration (named field differs).
    ConfigMismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::KindMismatch { expected, found } => write!(
                f,
                "snapshot holds filter kind {found:#x}, expected {expected:#x}"
            ),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (corrupt or torn file)")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::ConfigMismatch(field) => write!(
                f,
                "snapshot taken under an incompatible configuration: {field} differs"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// How much of a snapshot to apply on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreMode {
    /// Apply everything: filter memory, timer phase, statistics.
    Full,
    /// Apply only cumulative statistics and the uplink measurement; the
    /// filter memory (bitmap bits, flow table) is left for the caller to
    /// restart cold. Used when the snapshot is older than the state's
    /// own expiry horizon.
    StatsOnly,
}

/// What a restore produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// The snapshot was fresh: full state restored, filtering resumes
    /// armed exactly where the checkpoint left off.
    Warm,
    /// The snapshot was stale: statistics restored, filter memory
    /// restarted cold at the caller's `now` (warm-up grace applies
    /// under [`FailMode::Open`](crate::FailMode)).
    Cold,
}

/// Little-endian binary encoder backing snapshot payloads.
///
/// Public (together with [`ByteReader`]) so out-of-crate filters — the
/// SPI baseline in `upbound-spi` — can implement [`Snapshottable`]
/// against the same wire primitives.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian binary decoder over a snapshot payload.
///
/// Every accessor returns [`SnapshotError::Truncated`] instead of
/// panicking when the payload ends early, so corrupt files surface as
/// structured errors.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `bool` encoded as one byte; 2.. is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool byte out of range")),
        }
    }
}

/// A decoded snapshot container: header fields plus a borrowed payload
/// whose checksum has already been verified.
#[derive(Debug, Clone, Copy)]
pub struct ContainerView<'a> {
    /// Filter-type discriminator the snapshot was written with.
    pub kind: u32,
    /// Trace time the state is valid at.
    pub watermark: Timestamp,
    /// The filter-specific payload.
    pub payload: &'a [u8],
}

/// Wraps `payload` in a versioned, checksummed container.
pub fn encode_container(kind: u32, watermark: Timestamp, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 24 + payload.len() + 8);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&watermark.as_micros().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a container (magic, version, length, checksum) and returns
/// its header fields plus the borrowed payload.
///
/// # Errors
///
/// Any structural defect maps to the matching [`SnapshotError`]; the
/// checksum is verified before the payload is exposed, so a caller never
/// sees corrupt state.
pub fn decode_container(bytes: &[u8]) -> Result<ContainerView<'_>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(SNAPSHOT_MAGIC.len())?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let kind = r.u32()?;
    let watermark = Timestamp::from_micros(r.u64()?);
    let payload_len = r.u64()?;
    if payload_len > r.remaining().saturating_sub(8) as u64 {
        return Err(SnapshotError::Truncated);
    }
    let payload = r.take(payload_len as usize)?;
    let body_end = bytes.len() - r.remaining();
    let stored = r.u64()?;
    if !r.is_empty() {
        return Err(SnapshotError::Malformed("trailing bytes after checksum"));
    }
    if checksum(&bytes[..body_end]) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(ContainerView {
        kind,
        watermark,
        payload,
    })
}

/// Writes `bytes` to `path` atomically: stage in a sibling `.tmp` file,
/// fsync, rename over the target, fsync the directory. A crash at any
/// point leaves either the previous snapshot or the new one intact.
///
/// # Errors
///
/// Propagates the underlying I/O error as [`SnapshotError::Io`].
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Persist the rename itself; without this a crash can lose the
        // directory entry even though the file data is durable.
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Reads a snapshot file fully into memory.
///
/// # Errors
///
/// Propagates the underlying I/O error as [`SnapshotError::Io`].
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    Ok(fs::read(path)?)
}

/// Filter state that can be checkpointed to bytes and restored.
///
/// Implementations encode *all* state a restart would otherwise lose:
/// the filter memory (bitmap bit-vectors and rotation clock, or the SPI
/// flow table), the engine tick phase, the uplink throughput window, and
/// running statistics. Configuration is encoded as a guard only — a
/// snapshot restores exclusively into a filter built from an equivalent
/// configuration ([`SnapshotError::ConfigMismatch`] otherwise).
pub trait Snapshottable {
    /// Discriminator stored in the container header so a snapshot of one
    /// filter type is never applied to another.
    const SNAPSHOT_KIND: u32;

    /// Serializes the filter's state into `w` (payload only; the
    /// container is added by [`snapshot_bytes`](Self::snapshot_bytes)).
    fn encode_snapshot(&self, w: &mut ByteWriter);

    /// Applies a payload previously produced by
    /// [`encode_snapshot`](Self::encode_snapshot), to the extent `mode`
    /// allows. The payload must be fully consumed.
    ///
    /// # Errors
    ///
    /// Structural defects and configuration mismatches map to the
    /// corresponding [`SnapshotError`]; on error the filter may hold a
    /// partially-applied state and should be discarded or restarted via
    /// [`start_cold_at`](Self::start_cold_at).
    fn restore_snapshot(
        &mut self,
        r: &mut ByteReader<'_>,
        mode: RestoreMode,
    ) -> Result<(), SnapshotError>;

    /// Clears the filter memory (not the statistics) and re-anchors the
    /// warm-up clock at `epoch`: a filter with
    /// [`FailMode::Open`](crate::FailMode) passes everything until one
    /// full expiry window past `epoch`, then arms.
    fn start_cold_at(&mut self, epoch: Timestamp);

    /// Serializes the filter into a complete container valid at trace
    /// time `watermark`.
    fn snapshot_bytes(&self, watermark: Timestamp) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_snapshot(&mut w);
        encode_container(Self::SNAPSHOT_KIND, watermark, w.as_slice())
    }

    /// Validates `bytes` and restores from it, handling staleness: a
    /// snapshot whose watermark is more than `stale_after` behind `now`
    /// restores statistics only and restarts the filter memory cold at
    /// `now` (pass `stale_after = T_e` for the bitmap filter).
    ///
    /// # Errors
    ///
    /// Container defects, kind mismatches, and configuration mismatches
    /// map to the corresponding [`SnapshotError`].
    fn restore_bytes(
        &mut self,
        bytes: &[u8],
        now: Timestamp,
        stale_after: TimeDelta,
    ) -> Result<RestoreOutcome, SnapshotError> {
        let view = decode_container(bytes)?;
        if view.kind != Self::SNAPSHOT_KIND {
            return Err(SnapshotError::KindMismatch {
                expected: Self::SNAPSHOT_KIND,
                found: view.kind,
            });
        }
        let stale = now.saturating_since(view.watermark) > stale_after;
        let mode = if stale {
            RestoreMode::StatsOnly
        } else {
            RestoreMode::Full
        };
        let mut r = ByteReader::new(view.payload);
        self.restore_snapshot(&mut r, mode)?;
        if !r.is_empty() {
            return Err(SnapshotError::Malformed("payload has trailing bytes"));
        }
        if stale {
            self.start_cold_at(now);
            Ok(RestoreOutcome::Cold)
        } else {
            Ok(RestoreOutcome::Warm)
        }
    }
}

/// Encodes a [`ThroughputMonitor`]'s full window state.
///
/// Exposed (with [`restore_monitor`]) so out-of-crate [`Snapshottable`]
/// implementations can persist their engine's uplink measurement with
/// the same layout the bitmap filter uses.
pub fn encode_monitor(monitor: &ThroughputMonitor, w: &mut ByteWriter) {
    let (slot_width, slots, slot_ids, first_slot, total_bytes) = monitor.snapshot_fields();
    w.put_u64(slot_width.as_micros());
    w.put_u64(slots.len() as u64);
    for v in &slots {
        w.put_u64(*v);
    }
    for v in &slot_ids {
        w.put_u64(*v);
    }
    w.put_u64(first_slot);
    w.put_u64(total_bytes);
}

/// Restores window state written by [`encode_monitor`] into `monitor`
/// through its interior-mutable counters (so a monitor shared behind an
/// `Arc` restores in place for every sibling shard).
///
/// # Errors
///
/// [`SnapshotError::ConfigMismatch`] when the monitor's slot geometry
/// differs from the snapshot's; [`SnapshotError::Truncated`] on a short
/// payload.
pub fn restore_monitor(
    monitor: &ThroughputMonitor,
    r: &mut ByteReader<'_>,
) -> Result<(), SnapshotError> {
    let slot_width = Timestamp::from_micros(r.u64()?);
    let n_slots = r.u64()?;
    let (own_width, own_slots, _, _, _) = monitor.snapshot_fields();
    if slot_width.as_micros() != own_width.as_micros() || n_slots != own_slots.len() as u64 {
        return Err(SnapshotError::ConfigMismatch("uplink monitor geometry"));
    }
    let mut slots = Vec::with_capacity(n_slots as usize);
    for _ in 0..n_slots {
        slots.push(r.u64()?);
    }
    let mut slot_ids = Vec::with_capacity(n_slots as usize);
    for _ in 0..n_slots {
        slot_ids.push(r.u64()?);
    }
    let first_slot = r.u64()?;
    let total_bytes = r.u64()?;
    monitor.restore_fields(&slots, &slot_ids, first_slot, total_bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_roundtrip() {
        let payload = b"hello snapshot";
        let bytes = encode_container(7, Timestamp::from_secs(3.5), payload);
        let view = decode_container(&bytes).unwrap();
        assert_eq!(view.kind, 7);
        assert_eq!(view.watermark, Timestamp::from_secs(3.5));
        assert_eq!(view.payload, payload);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode_container(1, Timestamp::ZERO, &[]);
        let view = decode_container(&bytes).unwrap();
        assert_eq!(view.payload, &[] as &[u8]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_container(1, Timestamp::ZERO, b"x");
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_container(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_container(1, Timestamp::ZERO, b"x");
        bytes[8] = 99;
        // Version is inside the checksummed region, so hand-roll a valid
        // checksum to reach the version check.
        let body_end = bytes.len() - 8;
        let sum = checksum(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_container(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_container(3, Timestamp::from_secs(1.0), b"payload bytes here");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode_container(&corrupt).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = encode_container(3, Timestamp::from_secs(1.0), b"payload");
        for len in 0..bytes.len() {
            assert!(
                decode_container(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_container(3, Timestamp::ZERO, b"p");
        bytes.push(0);
        assert!(decode_container(&bytes).is_err());
    }

    #[test]
    fn reader_reports_truncation_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert!(matches!(r.u64(), Err(SnapshotError::Truncated)));
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn writer_reader_primitive_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 5);
        w.put_bool(true);
        w.put_bool(false);
        w.put_slice(b"tail");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 5);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.take(4).unwrap(), b"tail");
        assert!(r.is_empty());
    }

    #[test]
    fn bad_bool_byte_is_malformed() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.bool(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn monitor_state_roundtrips() {
        let m = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4);
        m.record(Timestamp::from_secs(0.5), 1000);
        m.record(Timestamp::from_secs(2.5), 3000);
        let mut w = ByteWriter::new();
        encode_monitor(&m, &mut w);
        let restored = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        restore_monitor(&restored, &mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored, m);
        assert_eq!(restored.total_bytes(), 4000);
        let now = Timestamp::from_secs(3.0);
        assert!((restored.rate_bps(now) - m.rate_bps(now)).abs() < 1e-9);
    }

    #[test]
    fn monitor_geometry_mismatch_is_config_error() {
        let m = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 4);
        let mut w = ByteWriter::new();
        encode_monitor(&m, &mut w);
        let other = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 8);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            restore_monitor(&other, &mut r),
            Err(SnapshotError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn write_atomic_then_read_roundtrips() {
        let dir = std::env::temp_dir().join(format!("upbound-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let bytes = encode_container(1, Timestamp::from_secs(9.0), b"abc");
        write_atomic(&path, &bytes).unwrap();
        assert_eq!(read_file(&path).unwrap(), bytes);
        // Overwrite is atomic too: the temp file never lingers.
        let bytes2 = encode_container(1, Timestamp::from_secs(10.0), b"def");
        write_atomic(&path, &bytes2).unwrap();
        assert_eq!(read_file(&path).unwrap(), bytes2);
        assert!(!dir.join("state.snap.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(SnapshotError::ConfigMismatch("vector_bits")
            .to_string()
            .contains("vector_bits"));
        let km = SnapshotError::KindMismatch {
            expected: 1,
            found: 2,
        };
        assert!(km.to_string().contains("0x2"));
    }
}
