//! A fixed-size bit vector over `AtomicU64` words — the lock-free
//! storage of the concurrent `{k × N}` bitmap.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size vector of bits backed by `AtomicU64` words — one column
/// of the concurrent [`AtomicBitmap`](crate::AtomicBitmap).
///
/// Unlike [`BitVec`](crate::BitVec), every operation takes `&self`:
/// [`set`](Self::set) is an `AtomicU64::fetch_or`, [`get`](Self::get) is
/// a relaxed load, and [`clear`](Self::clear) swaps each word to zero.
/// Any number of markers and readers may run concurrently with one
/// clearer; the ones-count stays exact under every interleaving because
/// each 0→1 transition is observed by exactly one `fetch_or` and each
/// word's set bits are subtracted by exactly one `swap`.
///
/// Memory ordering: bit reads and writes are `Relaxed`. Publication
/// ordering between threads is the caller's job — the
/// [`AtomicBitmap`](crate::AtomicBitmap) wraps rotation in a seqlock
/// epoch, and independent mark/lookup pairs get their happens-before
/// from whatever handed the key across threads (see DESIGN.md,
/// "Epoch-rotation memory ordering").
///
/// # Examples
///
/// ```
/// use upbound_core::AtomicBitVec;
///
/// let v = AtomicBitVec::new(1024);
/// v.set(17);
/// assert!(v.get(17));
/// assert_eq!(v.count_ones(), 1);
/// v.clear();
/// assert!(!v.get(17));
/// ```
#[derive(Debug)]
pub struct AtomicBitVec {
    /// Empty when the vector is parked (no storage attached).
    words: Box<[AtomicU64]>,
    len: usize,
    ones: AtomicU64,
}

fn zeroed_words(len: usize) -> Box<[AtomicU64]> {
    (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect()
}

impl AtomicBitVec {
    /// Creates a zeroed bit vector with `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "bit vector must have at least one bit");
        Self {
            words: zeroed_words(len),
            len,
            ones: AtomicU64::new(0),
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has no bits (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to one with a `fetch_or`; returns `true` when the
    /// bit was newly set by this call. Safe to race with other setters,
    /// readers, and [`clear`](Self::clear).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::Relaxed);
        if prev & mask == 0 {
            self.ones.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Reads bit `i` (relaxed load).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Zeroes every bit (the `b.rotate` clean-up step). Each word is
    /// `swap`ped to zero, so bits set concurrently are either cleared
    /// and counted here or survive and stay counted by their setter —
    /// the ones-count is exact either way.
    pub fn clear(&self) {
        let mut cleared = 0u64;
        for w in self.words.iter() {
            cleared += w.swap(0, Ordering::Relaxed).count_ones() as u64;
        }
        if cleared != 0 {
            self.ones.fetch_sub(cleared, Ordering::Relaxed);
        }
    }

    /// Number of set bits, maintained incrementally (O(1)).
    pub fn count_ones(&self) -> usize {
        self.ones.load(Ordering::Relaxed) as usize
    }

    /// Fraction of bits set — the utilization `U = b/N` of the paper's
    /// Equation 2.
    pub fn utilization(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    /// Memory consumed by the bit storage, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// A copy of the backing word array (snapshot encoding). Empty when
    /// the vector is parked.
    pub fn words_snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Creates a *parked* vector: `len` bits of addressable space but no
    /// backing storage. A parked vector reports zero memory, clears as a
    /// no-op, and must not be read or written until
    /// [`put_words`](Self::put_words) re-attaches a buffer.
    pub(crate) fn new_parked(len: usize) -> Self {
        assert!(len > 0, "bit vector must have at least one bit");
        Self {
            words: Box::new([]),
            len,
            ones: AtomicU64::new(0),
        }
    }

    /// Detaches the backing storage, leaving the vector parked (see
    /// [`new_parked`](Self::new_parked)). The word values are copied out
    /// as-is — callers recycling the buffer are responsible for zeroing.
    pub(crate) fn take_words(&mut self) -> Vec<u64> {
        *self.ones.get_mut() = 0;
        let words = std::mem::take(&mut self.words);
        words.iter().map(|w| w.load(Ordering::Relaxed)).collect()
    }

    /// Re-attaches a **zeroed** word buffer to a parked vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not parked or the buffer size does not
    /// match the vector's length.
    pub(crate) fn put_words(&mut self, words: Vec<u64>) {
        assert!(self.words.is_empty(), "vector already has storage");
        assert_eq!(words.len(), self.len.div_ceil(64), "buffer size mismatch");
        debug_assert!(words.iter().all(|&w| w == 0), "buffer must be zeroed");
        self.words = words.into_iter().map(AtomicU64::new).collect();
        *self.ones.get_mut() = 0;
    }

    /// `true` when the vector currently has no backing storage.
    pub(crate) fn is_parked(&self) -> bool {
        self.words.is_empty()
    }

    /// Rebuilds a vector of `len` bits from a backing word array, as
    /// captured by [`words_snapshot`](Self::words_snapshot). Returns
    /// `None` when the word count does not match `len` or a bit beyond
    /// `len` is set — both impossible for data this type produced, so a
    /// mismatch means the input is corrupt.
    pub fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if len == 0 || words.len() != len.div_ceil(64) {
            return None;
        }
        let tail_bits = len % 64;
        if tail_bits != 0 {
            let stray = words[words.len() - 1] & !((1u64 << tail_bits) - 1);
            if stray != 0 {
                return None;
            }
        }
        let ones: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
        Some(Self {
            words: words.into_iter().map(AtomicU64::new).collect(),
            len,
            ones: AtomicU64::new(ones),
        })
    }
}

impl Clone for AtomicBitVec {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            len: self.len,
            ones: AtomicU64::new(self.ones.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for AtomicBitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.words.len() == other.words.len()
            && self
                .words
                .iter()
                .zip(other.words.iter())
                .all(|(a, b)| a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed))
    }
}

impl Eq for AtomicBitVec {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_start_clear() {
        let v = AtomicBitVec::new(100);
        assert_eq!(v.len(), 100);
        assert!((0..100).all(|i| !v.get(i)));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let v = AtomicBitVec::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(v.set(i), "bit {i} newly set");
            assert!(v.get(i), "bit {i}");
        }
        assert_eq!(v.count_ones(), 8);
        assert!(!v.get(2));
    }

    #[test]
    fn double_set_counts_once() {
        let v = AtomicBitVec::new(10);
        assert!(v.set(3));
        assert!(!v.set(3));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let v = AtomicBitVec::new(200);
        for i in (0..200).step_by(7) {
            v.set(i);
        }
        v.clear();
        assert_eq!(v.count_ones(), 0);
        assert!((0..200).all(|i| !v.get(i)));
    }

    #[test]
    fn ones_count_is_exact_under_concurrent_set_and_clear() {
        let v = AtomicBitVec::new(1 << 14);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let v = &v;
                scope.spawn(move || {
                    for i in 0..(1usize << 12) {
                        v.set((i * 4 + t) % (1 << 14));
                    }
                });
            }
            let v = &v;
            scope.spawn(move || {
                for _ in 0..64 {
                    v.clear();
                    std::hint::spin_loop();
                }
            });
        });
        // After the race settles, the incremental count must equal the
        // recomputed popcount exactly.
        let popcount: usize = v
            .words_snapshot()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        assert_eq!(v.count_ones(), popcount);
    }

    #[test]
    fn from_words_roundtrips() {
        let v = AtomicBitVec::new(130);
        for i in [0, 64, 129] {
            v.set(i);
        }
        let rebuilt = AtomicBitVec::from_words(130, v.words_snapshot()).unwrap();
        assert_eq!(rebuilt, v);
        assert_eq!(rebuilt.count_ones(), 3);
    }

    #[test]
    fn from_words_rejects_corrupt_input() {
        assert!(AtomicBitVec::from_words(130, vec![0; 2]).is_none());
        assert!(AtomicBitVec::from_words(130, vec![0, 0, 1 << 2]).is_none());
        assert!(AtomicBitVec::from_words(0, vec![]).is_none());
        assert!(AtomicBitVec::from_words(128, vec![u64::MAX, u64::MAX]).is_some());
    }

    #[test]
    fn park_unpark_roundtrip() {
        let mut v = AtomicBitVec::new(128);
        v.set(5);
        let mut words = v.take_words();
        assert!(v.is_parked());
        assert_eq!(v.memory_bytes(), 0);
        words.fill(0);
        v.put_words(words);
        assert!(!v.is_parked());
        assert!(!v.get(5));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn clone_and_eq_compare_contents() {
        let v = AtomicBitVec::new(96);
        v.set(90);
        let c = v.clone();
        assert_eq!(c, v);
        c.set(1);
        assert_ne!(c, v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let v = AtomicBitVec::new(8);
        v.set(9);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_vector_panics() {
        let _ = AtomicBitVec::new(0);
    }
}
