//! Property tests on the bitmap filter's data structures and math.

use proptest::prelude::*;
use upbound_core::params::{
    exact_false_positive, max_connections, optimal_hash_count, penetration_probability,
};
use upbound_core::{BitVec, Bitmap, BloomFilter, ThroughputMonitor};
use upbound_net::{TimeDelta, Timestamp};

proptest! {
    /// BitVec: set/get/count coherence under arbitrary index sequences.
    #[test]
    fn bitvec_set_get_count(
        len in 1usize..2000,
        indices in proptest::collection::vec(any::<usize>(), 0..200),
    ) {
        let mut v = BitVec::new(len);
        let mut reference = std::collections::HashSet::new();
        for raw in indices {
            let i = raw % len;
            v.set(i);
            reference.insert(i);
        }
        prop_assert_eq!(v.count_ones(), reference.len());
        for i in 0..len {
            prop_assert_eq!(v.get(i), reference.contains(&i));
        }
        prop_assert!((v.utilization() - reference.len() as f64 / len as f64).abs() < 1e-12);
    }

    /// Bloom filter: no false negatives, ever.
    #[test]
    fn bloom_no_false_negatives(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..100),
        m in 1usize..6,
    ) {
        let mut b = BloomFilter::new(12, m);
        for k in &keys {
            b.insert(k);
        }
        for k in &keys {
            prop_assert!(b.contains(k));
        }
    }

    /// Bitmap: a mark is visible through exactly k−1 subsequent
    /// rotations and gone after k (with no interleaved re-marks).
    #[test]
    fn bitmap_mark_lifetime(
        key in proptest::collection::vec(any::<u8>(), 1..24),
        k in 2usize..8,
        pre_rotations in 0usize..10,
    ) {
        let mut bm = Bitmap::new(k, 12, 3);
        for _ in 0..pre_rotations {
            bm.rotate(); // phase should not matter
        }
        bm.mark(&key);
        for step in 1..k {
            bm.rotate();
            prop_assert!(bm.lookup(&key), "lost after {step} of {k} rotations");
        }
        bm.rotate();
        prop_assert!(!bm.lookup(&key), "survived {k} rotations");
    }

    /// Bitmap: marks never interfere destructively — adding more keys
    /// can only add bits, never remove one (monotone utilization).
    #[test]
    fn bitmap_marking_is_monotone(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..50),
    ) {
        let mut bm = Bitmap::new(4, 10, 2);
        let mut prev = 0.0;
        for key in &keys {
            bm.mark(key);
            let u = bm.utilization();
            prop_assert!(u >= prev);
            prev = u;
        }
        // Everything marked is found (no rotations happened).
        for key in &keys {
            prop_assert!(bm.lookup(key));
        }
    }

    /// Throughput monitor: the reported rate is always non-negative and
    /// bounded by total-bytes × 8 / window.
    #[test]
    fn monitor_rate_bounds(
        events in proptest::collection::vec((0u64..60_000_000, 0u64..100_000), 0..100),
        probe_us in 0u64..90_000_000,
    ) {
        let mon = ThroughputMonitor::new(TimeDelta::from_secs(1.0), 10);
        let mut total = 0u64;
        for (us, bytes) in events {
            mon.record(Timestamp::from_micros(us), bytes);
            total += bytes;
        }
        let rate = mon.rate_bps(Timestamp::from_micros(probe_us));
        prop_assert!(rate >= 0.0);
        prop_assert!(rate <= total as f64 * 8.0 / mon.window().as_secs_f64() + 1e-9);
        prop_assert_eq!(mon.total_bytes(), total);
    }

    /// Eq. 3 upper-bounds the exact Bloom probability (they agree at low
    /// load and the approximation only over-estimates).
    #[test]
    fn approximation_upper_bounds_exact(c in 1.0f64..200_000.0, m in 1usize..8) {
        let n = 1usize << 20;
        let approx = penetration_probability(c, n, m);
        let exact = exact_false_positive(c, n, m);
        prop_assert!(approx >= exact - 1e-12,
            "approx {approx} < exact {exact} at c={c}, m={m}");
    }

    /// Eq. 5's optimum really is a minimum of Eq. 3 over integer m.
    #[test]
    fn optimal_m_is_a_minimum(c in 1_000.0f64..500_000.0) {
        let n = 1usize << 20;
        let m_star = optimal_hash_count(c, n);
        let m_int = (m_star.round() as usize).max(1);
        let p_star = penetration_probability(c, n, m_int);
        for m in [m_int.saturating_sub(2).max(1), m_int.saturating_sub(1).max(1), m_int + 1, m_int + 2] {
            // Allow tiny slack: the real-valued optimum rounds.
            prop_assert!(penetration_probability(c, n, m) >= p_star * 0.75,
                "m={m} wildly beats m*={m_int} at c={c}");
        }
    }

    /// Eq. 6 inverts Eq. 5+3: at c = max_connections(p), the achieved
    /// penetration with the real-valued optimal m equals p.
    #[test]
    fn capacity_bound_inverts(p in 0.001f64..0.5) {
        let n = 1usize << 20;
        let c = max_connections(p, n);
        let m = optimal_hash_count(c, n);
        let achieved = ((c * m) / n as f64).powf(m);
        prop_assert!((achieved - p).abs() / p < 0.01,
            "achieved {achieved} vs target {p}");
    }

    /// Monte-Carlo: measured bitmap penetration stays within noise of the
    /// exact Bloom prediction (small sizes for test speed).
    #[test]
    fn measured_penetration_matches_prediction(seed_keys in 50usize..400) {
        let n_bits = 12u32;
        let m = 2usize;
        let mut bm = Bitmap::new(4, n_bits, m);
        for i in 0..seed_keys as u64 {
            bm.mark(&i.to_le_bytes());
        }
        let probes = 2_000u64;
        let hits = (0..probes)
            .filter(|i| bm.lookup(&(i + 1_000_000).to_le_bytes()))
            .count() as f64;
        let measured = hits / probes as f64;
        let predicted = bm.penetration_probability();
        // Loose tolerance: binomial noise at 2000 probes.
        prop_assert!((measured - predicted).abs() < 0.05,
            "measured {measured} vs predicted {predicted} with {seed_keys} keys");
    }
}

mod amortized_equivalence {
    use super::*;
    use upbound_core::AmortizedBitmap;

    #[derive(Debug, Clone)]
    enum Op {
        Mark(Vec<u8>),
        Rotate,
        Lookup(Vec<u8>),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 1..12).prop_map(Op::Mark),
            Just(Op::Rotate),
            proptest::collection::vec(any::<u8>(), 1..12).prop_map(Op::Lookup),
        ]
    }

    proptest! {
        /// The amortized bitmap is observationally equivalent to the
        /// plain bitmap under arbitrary mark/rotate/lookup interleavings
        /// and arbitrary background-clearing chunk sizes.
        #[test]
        fn amortized_equals_plain(
            ops in proptest::collection::vec(arb_op(), 0..120),
            k in 2usize..6,
            chunk in 1usize..64,
        ) {
            let mut plain = Bitmap::new(k, 8, 2);
            let mut fast = AmortizedBitmap::with_chunk_words(k, 8, 2, chunk);
            for op in &ops {
                match op {
                    Op::Mark(key) => {
                        plain.mark(key);
                        fast.mark(key);
                    }
                    Op::Rotate => {
                        plain.rotate();
                        fast.rotate();
                    }
                    Op::Lookup(key) => {
                        prop_assert_eq!(
                            plain.lookup(key),
                            fast.lookup(key),
                            "divergence on {:?}",
                            key
                        );
                    }
                }
            }
        }
    }
}
