//! Multi-threaded stress tests for the atomic `{k × N}` bitmap and the
//! shared (lock-free) filter hot path built on it.
//!
//! The invariant under attack: a **completed** mark behaves exactly like
//! a sequential mark — it lives in all `k` vectors of some epoch and
//! therefore survives at least `k − 1` subsequent rotations. Rotation
//! racing a mark may only steal writes in the *departed* (zeroed)
//! vector, which the mark's epoch-validation retry repairs, so no
//! verdict may flip Pass→Drop across an epoch swap.

use upbound_core::{
    AtomicBitmap, BitmapFilter, BitmapFilterConfig, PacketFilter, ShardedFilter, Verdict,
};
use upbound_net::{Direction, FiveTuple, Packet, Protocol, TcpFlags, Timestamp};

fn client_conn(port: u16) -> FiveTuple {
    FiveTuple::new(
        Protocol::Tcp,
        std::net::SocketAddrV4::new([10, 0, 0, 9].into(), port),
        std::net::SocketAddrV4::new([203, 0, 113, 44].into(), 6881),
    )
}

fn outbound(port: u16, t: f64) -> Packet {
    Packet::tcp(
        Timestamp::from_secs(t),
        client_conn(port),
        TcpFlags::ACK,
        &[][..],
    )
}

fn response(port: u16, t: f64) -> Packet {
    Packet::tcp(
        Timestamp::from_secs(t),
        client_conn(port).inverse(),
        TcpFlags::ACK,
        &[][..],
    )
}

/// Writers mark disjoint key ranges while a rotator performs `k − 2`
/// rotations mid-stream. Every completed mark must survive: it landed in
/// all `k` vectors of some epoch, and fewer than `k − 1` rotations
/// followed.
#[test]
fn completed_marks_survive_concurrent_rotation() {
    const WRITERS: usize = 4;
    const KEYS_PER_WRITER: u32 = 400;
    let bm = AtomicBitmap::new(4, 16, 3);
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u32 {
            let bm = &bm;
            scope.spawn(move || {
                for i in 0..KEYS_PER_WRITER {
                    let key = (w * KEYS_PER_WRITER + i).to_le_bytes();
                    bm.mark(&key);
                    // A mark that returned is immediately visible.
                    assert!(bm.lookup(&key), "fresh mark invisible: {key:?}");
                }
            });
        }
        let bm = &bm;
        scope.spawn(move || {
            // k − 2 = 2 rotations, spread across the writers' lifetime.
            for _ in 0..2 {
                std::thread::yield_now();
                bm.rotate();
            }
        });
    });
    assert_eq!(bm.rotations(), 2);
    for key in 0..(WRITERS as u32 * KEYS_PER_WRITER) {
        assert!(
            bm.lookup(&key.to_le_bytes()),
            "key {key} lost across epoch swaps"
        );
    }
}

/// Readers hammer `probe` while a writer re-marks and a rotator cycles
/// epochs continuously. Probes must always be internally consistent —
/// `known` implies zero unmarked bits, `unmarked` never exceeds `m` —
/// and utilization must stay a valid fraction.
#[test]
fn probes_are_epoch_consistent_under_churn() {
    let bm = AtomicBitmap::new(4, 12, 3);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let bm_ref = &bm;
        let stop_ref = &stop;
        scope.spawn(move || {
            for i in 0..20_000u32 {
                bm_ref.mark(&(i % 64).to_le_bytes());
            }
            stop_ref.store(true, std::sync::atomic::Ordering::Release);
        });
        scope.spawn(move || {
            while !stop_ref.load(std::sync::atomic::Ordering::Acquire) {
                bm_ref.rotate();
                std::thread::yield_now();
            }
        });
        for _ in 0..2 {
            scope.spawn(move || {
                while !stop_ref.load(std::sync::atomic::Ordering::Acquire) {
                    let probe = bm_ref.probe(&7u32.to_le_bytes());
                    assert_eq!(probe.known, probe.unmarked == 0);
                    assert!(probe.unmarked <= 3, "unmarked {} > m", probe.unmarked);
                    let u = bm_ref.utilization();
                    assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
                }
            });
        }
    });
}

/// The paper's expiry bound holds even when the final rotations race
/// fresh marks of *other* keys: a key never re-marked is gone after `k`
/// rotations, no matter what else the bitmap absorbed meanwhile.
#[test]
fn unrefreshed_keys_expire_after_k_rotations_despite_churn() {
    let bm = AtomicBitmap::new(4, 14, 3);
    bm.mark(b"victim");
    std::thread::scope(|scope| {
        let bm_ref = &bm;
        scope.spawn(move || {
            for i in 0..4_000u32 {
                // Churn on a disjoint keyspace; never touches "victim".
                bm_ref.mark(&(0x8000_0000 | i).to_le_bytes());
            }
        });
        scope.spawn(move || {
            for _ in 0..4 {
                bm_ref.rotate();
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(bm.rotations(), 4);
    assert!(
        !bm.lookup(b"victim"),
        "key survived k rotations without a re-mark"
    );
}

/// Filter-level oracle: flows marked concurrently through the shared
/// (`&self`) hot path, with epoch rotations racing the marks, must all
/// pass on their responses — exactly what a sequential filter yields for
/// the same stream. `P_d ≡ 1` makes any lost mark an immediate
/// Pass→Drop flip, so this fails loudly if rotation can eat a mark.
#[test]
fn no_verdict_flips_pass_to_drop_across_epoch_swap() {
    const WORKERS: u16 = 4;
    const FLOWS: u16 = 120;
    let config = BitmapFilterConfig::paper_evaluation(); // Δt = 5 s, k = 4
    let shared = BitmapFilter::new(config.clone());
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let shared = &shared;
            scope.spawn(move || {
                for i in 0..FLOWS {
                    let port = 20_000 + w * FLOWS + i;
                    // Timestamps crawl toward the first two rotations
                    // (t = 5 s, 10 s) so marks race epoch swaps.
                    let t = 0.5 + f64::from(i) * (10.0 / f64::from(FLOWS));
                    let verdict = shared.decide_shared(&outbound(port, t), Direction::Outbound);
                    assert_eq!(verdict, Verdict::Pass);
                }
            });
        }
    });
    // Sequential oracle over an equivalent stream: every response inside
    // the expiry window passes; an unsolicited probe drops. The shared
    // filter must agree on both branches.
    let mut oracle = BitmapFilter::new(config);
    for port in 0..WORKERS * FLOWS {
        oracle.process_packet(&outbound(20_000 + port, 10.5), Direction::Outbound);
    }
    for port in 0..WORKERS * FLOWS {
        let resp = response(20_000 + port, 11.0);
        let expect = oracle.process_packet(&resp, Direction::Inbound);
        assert_eq!(expect, Verdict::Pass, "oracle must accept its own flows");
        assert_eq!(
            shared.decide_shared(&resp, Direction::Inbound),
            expect,
            "shared filter flipped Pass→Drop for port {}",
            20_000 + port
        );
    }
    let stranger = response(61_111, 11.0);
    assert_eq!(
        shared.decide_shared(&stranger, Direction::Inbound),
        oracle.process_packet(&stranger, Direction::Inbound),
    );
    assert_eq!(
        shared.stats().inbound_hits,
        u64::from(WORKERS) * u64::from(FLOWS)
    );
}

/// The sharded read-lock path under full concurrency: workers mark and
/// immediately verify their own flows while a dedicated ticker advances
/// the clock through two epoch swaps (t = 5 s, 10 s — within `k − 1`).
/// Merged stats must account every packet exactly once.
#[test]
fn sharded_read_path_is_linearizable_for_own_flows() {
    const WORKERS: u16 = 4;
    const FLOWS: u16 = 100;
    let filter = ShardedFilter::builder(BitmapFilterConfig::paper_evaluation())
        .shards(4)
        .build()
        .expect("shard count is positive");
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let f = filter.clone();
            scope.spawn(move || {
                for i in 0..FLOWS {
                    let port = 30_000 + w * 1000 + i;
                    assert_eq!(
                        f.process_packet(&outbound(port, 1.0), Direction::Outbound),
                        Verdict::Pass
                    );
                    assert_eq!(
                        f.process_packet(&response(port, 1.1), Direction::Inbound),
                        Verdict::Pass,
                        "own mark invisible to own lookup (port {port})"
                    );
                }
            });
        }
        let ticker = filter.clone();
        scope.spawn(move || {
            ticker.advance(Timestamp::from_secs(6.0));
            std::thread::yield_now();
            ticker.advance(Timestamp::from_secs(11.0));
        });
    });
    filter.advance(Timestamp::from_secs(11.0));
    let stats = filter.stats();
    assert_eq!(
        stats.outbound_packets,
        u64::from(WORKERS) * u64::from(FLOWS)
    );
    assert_eq!(stats.inbound_packets, u64::from(WORKERS) * u64::from(FLOWS));
    assert_eq!(stats.inbound_hits, u64::from(WORKERS) * u64::from(FLOWS));
    assert_eq!(stats.dropped, 0, "a verdict flipped Pass→Drop");
    assert_eq!(stats.rotations, 2);
    // Marks from t = 1.0 survive both swaps (k − 1 = 3 > 2): every
    // response still passes after the concurrent phase.
    for w in 0..WORKERS {
        for i in 0..FLOWS {
            let port = 30_000 + w * 1000 + i;
            assert_eq!(
                filter.process_packet(&response(port, 11.2), Direction::Inbound),
                Verdict::Pass,
                "mark for port {port} lost across epoch swaps"
            );
        }
    }
}
