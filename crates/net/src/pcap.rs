//! From-scratch reader/writer for the classic libpcap capture format.
//!
//! The paper's traffic monitor collects traces with tcpdump in three
//! stages: full-payload captures, then verified header-only captures
//! "stored using the same format as the tcpdump program" (§3.2). This
//! module reimplements that format:
//!
//! * 24-byte global header (magic `0xa1b2c3d4`, version 2.4, snaplen,
//!   linktype 1 = Ethernet);
//! * 16-byte per-record headers (seconds, microseconds, captured length,
//!   original length);
//! * both byte orders on read (a capture written on a foreign-endian
//!   machine has the byte-swapped magic `0xd4c3b2a1`);
//! * snaplen truncation on write — setting a snaplen of
//!   [`HEADER_SNAPLEN`] produces the paper's layer-2–4 header-only
//!   traces.
//!
//! # Examples
//!
//! ```
//! use upbound_net::pcap::{PcapWriter, PcapReader};
//! use upbound_net::{Packet, FiveTuple, Protocol, TcpFlags, Timestamp};
//!
//! let tuple = FiveTuple::new(
//!     Protocol::Tcp,
//!     "10.0.0.1:1000".parse()?,
//!     "192.0.2.1:80".parse()?,
//! );
//! let packet = Packet::tcp(Timestamp::from_secs(1.0), tuple, TcpFlags::SYN, &[][..]);
//!
//! let mut buf = Vec::new();
//! let mut writer = PcapWriter::new(&mut buf, 65535)?;
//! writer.write_packet(&packet)?;
//!
//! let mut reader = PcapReader::new(&buf[..])?;
//! let restored = reader.read_packet()?.expect("one record");
//! assert_eq!(restored, packet);
//! assert!(reader.read_packet()?.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::wire::{self, ChecksumPolicy};
use crate::{IngestReason, NetError, Packet, Timestamp};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::Arc;
use upbound_telemetry::{Counter, LatencyRecorder, Registry};

/// Native-order pcap magic number (microsecond timestamps).
pub const MAGIC: u32 = 0xa1b2_c3d4;
/// Byte-swapped magic, indicating the file was written on a machine of
/// the opposite endianness.
pub const MAGIC_SWAPPED: u32 = 0xd4c3_b2a1;
/// Linktype for Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// A snaplen that keeps exactly the Ethernet + IPv4 + TCP headers —
/// the paper's "layer 2 to layer 4 packet headers" trace format.
pub const HEADER_SNAPLEN: u32 = 54;
/// The largest snaplen (and therefore per-record allocation) the reader
/// accepts — tcpdump's own `MAXIMUM_SNAPLEN`. A crafted global header
/// declaring, say, `0xFFFFFFFF` would otherwise let a single record
/// header demand a ~4 GiB buffer.
pub const MAX_SNAPLEN: u32 = 262_144;

/// Streaming pcap writer over any [`Write`].
///
/// A `&mut W` also implements `Write`, so a mutable reference can be
/// passed when the caller wants to keep the underlying writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, snaplen: u32) -> Result<Self, NetError> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self {
            out,
            snaplen,
            records: 0,
        })
    }

    /// Encodes `packet` to a frame and appends one record, truncating the
    /// stored bytes to the snaplen.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_packet(&mut self, packet: &Packet) -> Result<(), NetError> {
        let frame = wire::encode(packet);
        let orig_len = frame.len().max(packet.wire_len() as usize) as u32;
        let incl_len = (frame.len() as u32).min(self.snaplen);
        let (sec, usec) = packet.ts().to_sec_usec();
        self.out.write_all(&sec.to_le_bytes())?;
        self.out.write_all(&usec.to_le_bytes())?;
        self.out.write_all(&incl_len.to_le_bytes())?;
        self.out.write_all(&orig_len.to_le_bytes())?;
        self.out.write_all(&frame[..incl_len as usize])?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error, if any.
    pub fn finish(mut self) -> Result<W, NetError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// What the reader does when it meets a malformed record mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Surface the first malformed record as an error (classic behavior).
    #[default]
    Strict,
    /// Count the error, skip past the corrupt bytes, and resynchronize on
    /// the next decodable record. `read_packet` then never fails except
    /// for I/O errors and only returns `Ok(None)` at end of input.
    Skip,
}

/// Running ingestion accounting kept by [`PcapReader`].
///
/// `records_skipped` counts *corrupt regions*: a region opened by one
/// malformed record may swallow several original records before the
/// reader resynchronizes, and the bytes it covered are summed in
/// `bytes_skipped`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Records successfully decoded into packets.
    pub records_ok: u64,
    /// Corrupt regions skipped (only ever non-zero under
    /// [`RecoveryPolicy::Skip`]).
    pub records_skipped: u64,
    /// Bytes discarded while skipping corrupt regions.
    pub bytes_skipped: u64,
    errors: [u64; IngestReason::ALL.len()],
}

impl IngestStats {
    /// How many errors of `reason` were observed.
    pub fn errors_for(&self, reason: IngestReason) -> u64 {
        self.errors[reason.index()]
    }

    /// Total errors observed across every reason.
    pub fn errors_total(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Iterates `(reason, count)` pairs in [`IngestReason::ALL`] order.
    pub fn by_reason(&self) -> impl Iterator<Item = (IngestReason, u64)> + '_ {
        IngestReason::ALL
            .into_iter()
            .map(move |r| (r, self.errors[r.index()]))
    }

    /// Counts one error of `reason`.
    ///
    /// Public so packet sources outside the pcap reader (e.g. the live
    /// `AF_PACKET` source) can account decode failures in the same
    /// taxonomy.
    pub fn record_error(&mut self, reason: IngestReason) {
        self.errors[reason.index()] += 1;
    }

    /// Folds `n` kernel-side capture drops into the
    /// [`IngestReason::KernelDrop`] bucket. Live sources call this with
    /// the delta read from the kernel's own socket statistics.
    pub fn record_kernel_drops(&mut self, n: u64) {
        self.errors[IngestReason::KernelDrop.index()] += n;
    }

    /// Packets the kernel dropped before userspace could read them.
    pub fn kernel_drops(&self) -> u64 {
        self.errors_for(IngestReason::KernelDrop)
    }

    fn count(&mut self, reason: IngestReason) {
        self.record_error(reason);
    }
}

/// Per-reason ingestion counters backed by a telemetry [`Registry`].
///
/// Metric names follow the repo convention:
/// `upbound_net_ingest_records_ok_total`,
/// `upbound_net_ingest_records_skipped_total`,
/// `upbound_net_ingest_bytes_skipped_total`, and one
/// `upbound_net_ingest_errors_<reason>_total` per [`IngestReason`].
#[derive(Debug, Clone)]
pub struct IngestTelemetry {
    records_ok: Arc<Counter>,
    records_skipped: Arc<Counter>,
    bytes_skipped: Arc<Counter>,
    errors: [Arc<Counter>; IngestReason::ALL.len()],
    read_latency: Arc<LatencyRecorder>,
}

impl IngestTelemetry {
    /// Registers (or re-attaches to) the ingestion counters in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            records_ok: registry.counter(
                "upbound_net_ingest_records_ok_total",
                "pcap records successfully decoded into packets",
            ),
            records_skipped: registry.counter(
                "upbound_net_ingest_records_skipped_total",
                "corrupt pcap regions skipped by the recovering reader",
            ),
            bytes_skipped: registry.counter(
                "upbound_net_ingest_bytes_skipped_total",
                "bytes discarded while skipping corrupt pcap regions",
            ),
            errors: IngestReason::ALL.map(|r| {
                registry.counter(
                    &format!("upbound_net_ingest_errors_{}_total", r.as_str()),
                    "ingestion errors observed, by taxonomy reason",
                )
            }),
            read_latency: registry.latency(
                "upbound_net_ingest_read_latency_seconds",
                "Wall-clock latency of reading/decoding one trace batch",
            ),
        }
    }

    /// The ingest-stage latency recorder (the pipeline's ingest scope
    /// feeds it; exported as a Prometheus histogram).
    pub fn read_latency(&self) -> &Arc<LatencyRecorder> {
        &self.read_latency
    }

    /// Records the wall-clock time one read/decode step took.
    pub fn record_read_latency(&self, elapsed: std::time::Duration) {
        self.read_latency.record(elapsed);
    }

    /// Counts one error that happened outside a reader (e.g. a failed
    /// [`PcapReader::new`], where no [`IngestStats`] exists yet).
    pub fn record_error(&self, reason: IngestReason) {
        self.errors[reason.index()].inc();
    }

    /// Adds a finished reader's [`IngestStats`] into the counters.
    ///
    /// Call once per completed ingestion pass; the counters are monotonic
    /// and publishing the same stats twice double-counts.
    pub fn publish(&self, stats: &IngestStats) {
        self.records_ok.add(stats.records_ok);
        self.records_skipped.add(stats.records_skipped);
        self.bytes_skipped.add(stats.bytes_skipped);
        for (reason, n) in stats.by_reason() {
            self.errors[reason.index()].add(n);
        }
    }
}

const GLOBAL_HDR_LEN: usize = 24;
const REC_HDR_LEN: usize = 16;
/// Consumed-prefix length above which `fill` compacts the buffer, so a
/// byte-at-a-time resync stays amortized O(1) per byte instead of
/// re-shifting the buffer on every slide.
const COMPACT_THRESHOLD: usize = 4096;

struct RecHeader {
    sec: u32,
    usec: u32,
    incl_len: usize,
    orig_len: u32,
}

/// Streaming pcap reader over any [`Read`].
///
/// Checksums are *not* verified while reading (truncated captures cannot
/// verify); pass decoded frames through [`wire::decode`] with
/// [`ChecksumPolicy::Verify`] if verification is required.
///
/// The reader buffers internally so it can look ahead without committing:
/// under [`RecoveryPolicy::Skip`] a malformed record is counted in
/// [`IngestStats`], its bytes are discarded, and reading resumes at the
/// next position that both looks like a plausible record header *and*
/// whose body actually wire-decodes.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    snaplen: u32,
    records: u64,
    policy: RecoveryPolicy,
    stats: IngestStats,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header with [`RecoveryPolicy::Strict`].
    ///
    /// # Errors
    ///
    /// See [`PcapReader::with_policy`].
    pub fn new(input: R) -> Result<Self, NetError> {
        Self::with_policy(input, RecoveryPolicy::Strict)
    }

    /// Reads and validates the global header.
    ///
    /// The recovery policy only governs per-record handling: a capture
    /// whose *global* header is unusable cannot be resynchronized and
    /// fails under either policy.
    ///
    /// # Errors
    ///
    /// * [`NetError::Truncated`] when the input ends inside the 24-byte
    ///   global header.
    /// * [`NetError::BadMagic`] for an unrecognized magic number.
    /// * [`NetError::Oversized`] for a snaplen above [`MAX_SNAPLEN`].
    /// * [`NetError::InvalidField`] for a non-Ethernet linktype.
    /// * I/O errors from the underlying reader.
    pub fn with_policy(input: R, policy: RecoveryPolicy) -> Result<Self, NetError> {
        let mut reader = Self {
            input,
            swapped: false,
            snaplen: 0,
            records: 0,
            policy,
            stats: IngestStats::default(),
            buf: Vec::new(),
            pos: 0,
            eof: false,
        };
        reader.fill(GLOBAL_HDR_LEN)?;
        let avail = reader.available();
        if avail < GLOBAL_HDR_LEN {
            return Err(NetError::Truncated {
                context: "pcap global header",
                needed: GLOBAL_HDR_LEN,
                available: avail,
            });
        }
        let mut header = [0u8; GLOBAL_HDR_LEN];
        header.copy_from_slice(&reader.buf[reader.pos..reader.pos + GLOBAL_HDR_LEN]);
        let raw_magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        reader.swapped = match raw_magic {
            MAGIC => false,
            MAGIC_SWAPPED => true,
            other => return Err(NetError::BadMagic(other)),
        };
        let snaplen = reader.read_u32(&header[16..20]);
        let linktype = reader.read_u32(&header[20..24]);
        if snaplen > MAX_SNAPLEN {
            return Err(NetError::Oversized {
                context: "pcap snaplen",
                len: snaplen as u64,
                limit: MAX_SNAPLEN as u64,
            });
        }
        if linktype != LINKTYPE_ETHERNET {
            return Err(NetError::InvalidField {
                field: "linktype",
                value: linktype as u64,
            });
        }
        reader.snaplen = snaplen;
        reader.consume(GLOBAL_HDR_LEN);
        Ok(reader)
    }

    fn read_u32(&self, bytes: &[u8]) -> u32 {
        let arr = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if self.swapped {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    }

    /// The snaplen declared in the global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Number of records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }

    /// The recovery policy this reader was built with.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Ingestion accounting: decoded records, skipped regions/bytes, and
    /// per-reason error counts.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Buffers input until at least `want` bytes are available or the
    /// input is exhausted. Callers re-check [`PcapReader::available`].
    fn fill(&mut self, want: usize) -> Result<(), NetError> {
        if self.pos >= COMPACT_THRESHOLD || self.pos == self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let mut chunk = [0u8; 8192];
        while !self.eof && self.available() < want {
            match self.input.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(())
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.available());
        self.pos += n;
    }

    fn parse_rec_header(&self) -> RecHeader {
        let b = &self.buf[self.pos..self.pos + REC_HDR_LEN];
        RecHeader {
            sec: self.read_u32(&b[0..4]),
            usec: self.read_u32(&b[4..8]),
            incl_len: self.read_u32(&b[8..12]) as usize,
            orig_len: self.read_u32(&b[12..16]),
        }
    }

    /// Reads the next record, returning `Ok(None)` at end of input.
    ///
    /// Under [`RecoveryPolicy::Skip`] malformed records are counted and
    /// skipped instead of reported, so the only errors are I/O errors.
    ///
    /// # Errors
    ///
    /// (Strict mode.)
    ///
    /// * [`NetError::Truncated`] when the file ends inside a record, with
    ///   the actual byte counts observed.
    /// * [`NetError::InvalidField`] when a record's `incl_len` exceeds
    ///   the declared snaplen.
    /// * Frame decode errors from [`wire::decode`] (checksum verification
    ///   disabled).
    pub fn read_packet(&mut self) -> Result<Option<Packet>, NetError> {
        match self.policy {
            RecoveryPolicy::Strict => {
                let r = self.next_record_strict();
                if let Err(e) = &r {
                    self.stats.count(e.reason());
                }
                r
            }
            RecoveryPolicy::Skip => self.next_record_skip(),
        }
    }

    fn next_record_strict(&mut self) -> Result<Option<Packet>, NetError> {
        self.fill(REC_HDR_LEN)?;
        let avail = self.available();
        if avail == 0 {
            return Ok(None); // clean EOF
        }
        if avail < REC_HDR_LEN {
            return Err(NetError::Truncated {
                context: "pcap record header",
                needed: REC_HDR_LEN,
                available: avail,
            });
        }
        let hdr = self.parse_rec_header();
        if hdr.incl_len > self.snaplen as usize {
            return Err(NetError::InvalidField {
                field: "incl_len",
                value: hdr.incl_len as u64,
            });
        }
        let total = REC_HDR_LEN + hdr.incl_len;
        self.fill(total)?;
        let avail = self.available();
        if avail < total {
            return Err(NetError::Truncated {
                context: "pcap record body",
                needed: hdr.incl_len,
                available: avail - REC_HDR_LEN,
            });
        }
        let ts = Timestamp::from_sec_usec(hdr.sec, hdr.usec);
        let frame = &self.buf[self.pos + REC_HDR_LEN..self.pos + total];
        let packet = wire::decode(frame, ts, hdr.orig_len, ChecksumPolicy::Ignore)?;
        self.consume(total);
        self.records += 1;
        self.stats.records_ok += 1;
        Ok(Some(packet))
    }

    /// Skip-mode reading: trust plausible framing, otherwise slide.
    ///
    /// Two regimes, tracked by `resync`:
    ///
    /// * **Aligned** (`resync == false`): the cursor sits where a record
    ///   header should be. A header within snaplen is trusted, so a body
    ///   that fails to decode skips exactly that record and stays
    ///   aligned.
    /// * **Resynchronizing** (`resync == true`): framing has been lost;
    ///   the reader slides one byte at a time and only accepts an offset
    ///   whose header passes *stricter* plausibility (valid microseconds,
    ///   non-empty body, `orig_len >= incl_len`) **and** whose body
    ///   actually wire-decodes.
    fn next_record_skip(&mut self) -> Result<Option<Packet>, NetError> {
        let mut resync = false;
        // Every iteration either returns or consumes at least one byte,
        // so the loop terminates on any input.
        loop {
            self.fill(REC_HDR_LEN)?;
            let avail = self.available();
            if avail == 0 {
                return Ok(None);
            }
            if avail < REC_HDR_LEN {
                // Trailing partial header: nothing further can decode.
                if !resync {
                    self.stats.count(IngestReason::Truncated);
                    self.stats.records_skipped += 1;
                }
                self.stats.bytes_skipped += avail as u64;
                self.consume(avail);
                return Ok(None);
            }
            let hdr = self.parse_rec_header();
            let plausible = hdr.incl_len <= self.snaplen as usize
                && (!resync
                    || (hdr.usec < 1_000_000
                        && hdr.incl_len > 0
                        && hdr.orig_len as usize >= hdr.incl_len));
            if !plausible {
                if !resync {
                    self.stats.count(IngestReason::InvalidField);
                    self.stats.records_skipped += 1;
                    resync = true;
                }
                self.consume(1);
                self.stats.bytes_skipped += 1;
                continue;
            }
            let total = REC_HDR_LEN + hdr.incl_len;
            self.fill(total)?;
            if self.available() < total {
                // Header claims more bytes than remain. A shorter record
                // may still start later in the tail, so keep sliding
                // instead of discarding the tail wholesale.
                if !resync {
                    self.stats.count(IngestReason::Truncated);
                    self.stats.records_skipped += 1;
                    resync = true;
                }
                self.consume(1);
                self.stats.bytes_skipped += 1;
                continue;
            }
            let ts = Timestamp::from_sec_usec(hdr.sec, hdr.usec);
            let frame = &self.buf[self.pos + REC_HDR_LEN..self.pos + total];
            match wire::decode(frame, ts, hdr.orig_len, ChecksumPolicy::Ignore) {
                Ok(packet) => {
                    self.consume(total);
                    self.records += 1;
                    self.stats.records_ok += 1;
                    return Ok(Some(packet));
                }
                Err(e) => {
                    if resync {
                        self.consume(1);
                        self.stats.bytes_skipped += 1;
                    } else {
                        // Aligned header within snaplen: trust its
                        // framing and skip exactly this record.
                        self.stats.count(e.reason());
                        self.stats.records_skipped += 1;
                        self.consume(total);
                        self.stats.bytes_skipped += total as u64;
                    }
                }
            }
        }
    }

    /// Reads every remaining record into a vector.
    ///
    /// # Errors
    ///
    /// Under [`RecoveryPolicy::Strict`], stops at the first malformed
    /// record and returns its error; under [`RecoveryPolicy::Skip`], only
    /// I/O errors are possible.
    pub fn read_all(&mut self) -> Result<Vec<Packet>, NetError> {
        let mut out = Vec::new();
        while let Some(p) = self.read_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

/// Convenience: writes `packets` to a fresh in-memory pcap byte buffer.
///
/// # Errors
///
/// Propagates writer errors (infallible for `Vec<u8>` in practice).
pub fn to_bytes<'a, I: IntoIterator<Item = &'a Packet>>(
    packets: I,
    snaplen: u32,
) -> Result<Vec<u8>, NetError> {
    let mut buf = Vec::new();
    let mut writer = PcapWriter::new(&mut buf, snaplen)?;
    for p in packets {
        writer.write_packet(p)?;
    }
    writer.finish()?;
    Ok(buf)
}

/// Convenience: parses every record of an in-memory pcap byte buffer.
///
/// # Errors
///
/// Fails on a bad global header or any malformed record.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Packet>, NetError> {
    PcapReader::new(bytes)?.read_all()
}

/// Convenience: parses an in-memory pcap byte buffer under
/// [`RecoveryPolicy::Skip`], returning every record that survived
/// recovery together with the ingestion accounting.
///
/// # Errors
///
/// Fails only on an unusable *global* header (see
/// [`PcapReader::with_policy`]); per-record corruption is skipped and
/// counted instead.
pub fn from_bytes_recovering(bytes: &[u8]) -> Result<(Vec<Packet>, IngestStats), NetError> {
    let mut reader = PcapReader::with_policy(bytes, RecoveryPolicy::Skip)?;
    let packets = reader.read_all()?;
    Ok((packets, *reader.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FiveTuple, Protocol, TcpFlags};

    fn sample_packets() -> Vec<Packet> {
        let tcp = FiveTuple::new(
            Protocol::Tcp,
            "10.0.0.1:1000".parse().unwrap(),
            "192.0.2.1:80".parse().unwrap(),
        );
        let udp = FiveTuple::new(
            Protocol::Udp,
            "10.0.0.2:5353".parse().unwrap(),
            "192.0.2.2:53".parse().unwrap(),
        );
        vec![
            Packet::tcp(Timestamp::from_secs(0.5), tcp, TcpFlags::SYN, &[][..]),
            Packet::tcp(
                Timestamp::from_secs(1.0),
                tcp,
                TcpFlags::PSH | TcpFlags::ACK,
                b"GET / HTTP/1.1\r\n".to_vec(),
            ),
            Packet::udp(Timestamp::from_secs(2.25), udp, b"query".to_vec()),
        ]
    }

    #[test]
    fn round_trip_preserves_packets() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, 65535).unwrap();
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored, packets);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, HEADER_SNAPLEN).unwrap();
        let restored = from_bytes(&bytes).unwrap();
        // Payloads are stripped but wire lengths are the originals.
        assert!(restored[1].payload().is_empty());
        assert_eq!(restored[1].wire_len(), packets[1].wire_len());
        assert_eq!(restored[1].tuple(), packets[1].tuple());
        assert_eq!(restored[1].tcp_flags(), packets[1].tcp_flags());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&sample_packets(), 65535).unwrap();
        bytes[0] = 0x00;
        assert!(matches!(from_bytes(&bytes), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn swapped_endianness_is_readable() {
        // Hand-build a big-endian header + one record.
        let packets = sample_packets();
        let native = to_bytes(&packets[..1], 65535).unwrap();
        let mut swapped = Vec::new();
        // Swap each u32/u16 field of the global header.
        swapped.extend_from_slice(&MAGIC.to_be_bytes());
        swapped.extend_from_slice(&2u16.to_be_bytes());
        swapped.extend_from_slice(&4u16.to_be_bytes());
        swapped.extend_from_slice(&0u32.to_be_bytes());
        swapped.extend_from_slice(&0u32.to_be_bytes());
        swapped.extend_from_slice(&65535u32.to_be_bytes());
        swapped.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        // Record header fields byte-swapped; body verbatim.
        let rec = &native[24..];
        for i in 0..4 {
            let mut field = [rec[i * 4], rec[i * 4 + 1], rec[i * 4 + 2], rec[i * 4 + 3]];
            field.reverse();
            swapped.extend_from_slice(&field);
        }
        swapped.extend_from_slice(&rec[16..]);
        let restored = from_bytes(&swapped).unwrap();
        assert_eq!(restored, packets[..1]);
    }

    #[test]
    fn truncated_record_header_errors() {
        let bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        let cut = &bytes[..24 + 7];
        let mut reader = PcapReader::new(cut).unwrap();
        assert!(matches!(
            reader.read_packet(),
            Err(NetError::Truncated {
                context: "pcap record header",
                ..
            })
        ));
    }

    #[test]
    fn truncated_record_body_errors() {
        let bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = PcapReader::new(cut).unwrap();
        assert!(matches!(
            reader.read_packet(),
            Err(NetError::Truncated {
                context: "pcap record body",
                ..
            })
        ));
    }

    #[test]
    fn incl_len_beyond_snaplen_is_invalid() {
        let mut bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        // Shrink the declared snaplen below the record's incl_len.
        bytes[16..20].copy_from_slice(&10u32.to_le_bytes());
        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            reader.read_packet(),
            Err(NetError::InvalidField {
                field: "incl_len",
                ..
            })
        ));
    }

    #[test]
    fn wrong_linktype_is_rejected() {
        let mut bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        bytes[20..24].copy_from_slice(&101u32.to_le_bytes()); // raw IP
        assert!(matches!(
            PcapReader::new(&bytes[..]),
            Err(NetError::InvalidField {
                field: "linktype",
                ..
            })
        ));
    }

    #[test]
    fn empty_capture_yields_no_packets() {
        let bytes = to_bytes(std::iter::empty(), 65535).unwrap();
        assert!(from_bytes(&bytes).unwrap().is_empty());
    }

    /// Byte offsets of each record (and its body) inside `to_bytes`
    /// output for `sample_packets()` at snaplen 65535: records are 16
    /// bytes of header plus the full frame.
    fn record_offsets(packets: &[Packet]) -> Vec<(usize, usize)> {
        let mut offsets = Vec::new();
        let mut at = 24;
        for p in packets {
            let frame_len = wire::encode(p).len();
            offsets.push((at, 16 + frame_len));
            at += 16 + frame_len;
        }
        offsets
    }

    #[test]
    fn truncated_header_reports_real_counts() {
        let bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        let cut = &bytes[..24 + 7];
        let mut reader = PcapReader::new(cut).unwrap();
        match reader.read_packet() {
            Err(NetError::Truncated {
                context,
                needed,
                available,
            }) => {
                assert_eq!(context, "pcap record header");
                assert_eq!(needed, 16);
                assert_eq!(available, 7);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(reader.stats().errors_for(IngestReason::Truncated), 1);
    }

    #[test]
    fn truncated_body_reports_real_counts() {
        let packets = sample_packets();
        let frame_len = wire::encode(&packets[0]).len();
        let bytes = to_bytes(&packets[..1], 65535).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = PcapReader::new(cut).unwrap();
        match reader.read_packet() {
            Err(NetError::Truncated {
                context,
                needed,
                available,
            }) => {
                assert_eq!(context, "pcap record body");
                assert_eq!(needed, frame_len);
                assert_eq!(available, frame_len - 3);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn truncated_global_header_reports_real_counts() {
        let bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        match PcapReader::new(&bytes[..10]) {
            Err(NetError::Truncated {
                context,
                needed,
                available,
            }) => {
                assert_eq!(context, "pcap global header");
                assert_eq!(needed, 24);
                assert_eq!(available, 10);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn oversized_snaplen_is_rejected() {
        let mut bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        match PcapReader::new(&bytes[..]) {
            Err(NetError::Oversized {
                context,
                len,
                limit,
            }) => {
                assert_eq!(context, "pcap snaplen");
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(limit, MAX_SNAPLEN as u64);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
        // The same file is rejected under Skip too: the global header is
        // not recoverable.
        assert!(matches!(
            PcapReader::with_policy(&bytes[..], RecoveryPolicy::Skip),
            Err(NetError::Oversized { .. })
        ));
    }

    #[test]
    fn max_snaplen_itself_is_accepted() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, MAX_SNAPLEN).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), packets);
    }

    #[test]
    fn skip_mode_on_clean_capture_matches_strict() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, 65535).unwrap();
        let (restored, stats) = from_bytes_recovering(&bytes).unwrap();
        assert_eq!(restored, packets);
        assert_eq!(stats.records_ok, 3);
        assert_eq!(stats.records_skipped, 0);
        assert_eq!(stats.bytes_skipped, 0);
        assert_eq!(stats.errors_total(), 0);
    }

    #[test]
    fn skip_mode_skips_record_with_corrupt_body() {
        let packets = sample_packets();
        let mut bytes = to_bytes(&packets, 65535).unwrap();
        let offsets = record_offsets(&packets);
        // Destroy record 1's ethertype so its body no longer decodes;
        // the header stays intact, so exactly that record is skipped.
        let (rec1, rec1_len) = offsets[1];
        bytes[rec1 + 16 + 12] = 0xFF;
        bytes[rec1 + 16 + 13] = 0xFF;
        let (restored, stats) = from_bytes_recovering(&bytes).unwrap();
        assert_eq!(restored, vec![packets[0].clone(), packets[2].clone()]);
        assert_eq!(stats.records_ok, 2);
        assert_eq!(stats.records_skipped, 1);
        assert_eq!(stats.bytes_skipped, rec1_len as u64);
        assert_eq!(stats.errors_total(), 1);
    }

    #[test]
    fn skip_mode_resyncs_past_corrupt_record_header() {
        let packets = sample_packets();
        let mut bytes = to_bytes(&packets, 65535).unwrap();
        let offsets = record_offsets(&packets);
        // Claim an impossible incl_len in record 1's header: framing is
        // lost and the reader must resynchronize on record 2.
        let (rec1, rec1_len) = offsets[1];
        bytes[rec1 + 8..rec1 + 12].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
        let (restored, stats) = from_bytes_recovering(&bytes).unwrap();
        assert_eq!(restored, vec![packets[0].clone(), packets[2].clone()]);
        assert_eq!(stats.records_ok, 2);
        assert_eq!(stats.records_skipped, 1);
        assert_eq!(stats.bytes_skipped, rec1_len as u64);
        assert_eq!(stats.errors_for(IngestReason::InvalidField), 1);
    }

    #[test]
    fn skip_mode_truncated_tail_yields_decodable_prefix() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, 65535).unwrap();
        let cut = &bytes[..bytes.len() - 5];
        let mut reader = PcapReader::with_policy(cut, RecoveryPolicy::Skip).unwrap();
        let restored = reader.read_all().unwrap();
        assert_eq!(restored, packets[..2]);
        let stats = reader.stats();
        assert_eq!(stats.records_ok, 2);
        assert_eq!(stats.records_skipped, 1);
        assert_eq!(stats.errors_for(IngestReason::Truncated), 1);
        // Everything after the decodable prefix was discarded.
        let tail = bytes.len() - 5 - record_offsets(&packets)[2].0;
        assert_eq!(stats.bytes_skipped, tail as u64);
    }

    #[test]
    fn skip_mode_garbage_between_records_is_crossed() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, 65535).unwrap();
        let offsets = record_offsets(&packets);
        // Splice 33 bytes of garbage between records 0 and 1.
        let (rec1, _) = offsets[1];
        let mut spliced = bytes[..rec1].to_vec();
        spliced.extend(std::iter::repeat_n(0xAB, 33));
        spliced.extend_from_slice(&bytes[rec1..]);
        let (restored, stats) = from_bytes_recovering(&spliced).unwrap();
        assert_eq!(restored, packets);
        assert_eq!(stats.records_ok, 3);
        assert_eq!(stats.records_skipped, 1);
        assert_eq!(stats.bytes_skipped, 33);
    }

    #[test]
    fn ingest_telemetry_publishes_counters() {
        let packets = sample_packets();
        let mut bytes = to_bytes(&packets, 65535).unwrap();
        let (rec1, _) = record_offsets(&packets)[1];
        bytes[rec1 + 16 + 12] = 0xFF;
        bytes[rec1 + 16 + 13] = 0xFF;
        let (_, stats) = from_bytes_recovering(&bytes).unwrap();

        let registry = Registry::new();
        let telemetry = IngestTelemetry::register(&registry);
        telemetry.publish(&stats);
        telemetry.record_error(IngestReason::BadMagic);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("upbound_net_ingest_records_ok_total"), Some(2));
        assert_eq!(
            snap.counter("upbound_net_ingest_records_skipped_total"),
            Some(1)
        );
        assert_eq!(
            snap.counter("upbound_net_ingest_errors_bad_magic_total"),
            Some(1)
        );
        let skipped = snap
            .counter("upbound_net_ingest_bytes_skipped_total")
            .unwrap();
        assert!(skipped > 0);
    }

    #[test]
    fn record_counters_track() {
        let packets = sample_packets();
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65535).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.records_written(), 3);
        w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        r.read_all().unwrap();
        assert_eq!(r.records_read(), 3);
        assert_eq!(r.snaplen(), 65535);
    }
}
