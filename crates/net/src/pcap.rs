//! From-scratch reader/writer for the classic libpcap capture format.
//!
//! The paper's traffic monitor collects traces with tcpdump in three
//! stages: full-payload captures, then verified header-only captures
//! "stored using the same format as the tcpdump program" (§3.2). This
//! module reimplements that format:
//!
//! * 24-byte global header (magic `0xa1b2c3d4`, version 2.4, snaplen,
//!   linktype 1 = Ethernet);
//! * 16-byte per-record headers (seconds, microseconds, captured length,
//!   original length);
//! * both byte orders on read (a capture written on a foreign-endian
//!   machine has the byte-swapped magic `0xd4c3b2a1`);
//! * snaplen truncation on write — setting a snaplen of
//!   [`HEADER_SNAPLEN`] produces the paper's layer-2–4 header-only
//!   traces.
//!
//! # Examples
//!
//! ```
//! use upbound_net::pcap::{PcapWriter, PcapReader};
//! use upbound_net::{Packet, FiveTuple, Protocol, TcpFlags, Timestamp};
//!
//! let tuple = FiveTuple::new(
//!     Protocol::Tcp,
//!     "10.0.0.1:1000".parse()?,
//!     "192.0.2.1:80".parse()?,
//! );
//! let packet = Packet::tcp(Timestamp::from_secs(1.0), tuple, TcpFlags::SYN, &[][..]);
//!
//! let mut buf = Vec::new();
//! let mut writer = PcapWriter::new(&mut buf, 65535)?;
//! writer.write_packet(&packet)?;
//!
//! let mut reader = PcapReader::new(&buf[..])?;
//! let restored = reader.read_packet()?.expect("one record");
//! assert_eq!(restored, packet);
//! assert!(reader.read_packet()?.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::wire::{self, ChecksumPolicy};
use crate::{NetError, Packet, Timestamp};
use std::io::{Read, Write};

/// Native-order pcap magic number (microsecond timestamps).
pub const MAGIC: u32 = 0xa1b2_c3d4;
/// Byte-swapped magic, indicating the file was written on a machine of
/// the opposite endianness.
pub const MAGIC_SWAPPED: u32 = 0xd4c3_b2a1;
/// Linktype for Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// A snaplen that keeps exactly the Ethernet + IPv4 + TCP headers —
/// the paper's "layer 2 to layer 4 packet headers" trace format.
pub const HEADER_SNAPLEN: u32 = 54;

/// Streaming pcap writer over any [`Write`].
///
/// A `&mut W` also implements `Write`, so a mutable reference can be
/// passed when the caller wants to keep the underlying writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, snaplen: u32) -> Result<Self, NetError> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self {
            out,
            snaplen,
            records: 0,
        })
    }

    /// Encodes `packet` to a frame and appends one record, truncating the
    /// stored bytes to the snaplen.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_packet(&mut self, packet: &Packet) -> Result<(), NetError> {
        let frame = wire::encode(packet);
        let orig_len = frame.len().max(packet.wire_len() as usize) as u32;
        let incl_len = (frame.len() as u32).min(self.snaplen);
        let (sec, usec) = packet.ts().to_sec_usec();
        self.out.write_all(&sec.to_le_bytes())?;
        self.out.write_all(&usec.to_le_bytes())?;
        self.out.write_all(&incl_len.to_le_bytes())?;
        self.out.write_all(&orig_len.to_le_bytes())?;
        self.out.write_all(&frame[..incl_len as usize])?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error, if any.
    pub fn finish(mut self) -> Result<W, NetError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming pcap reader over any [`Read`].
///
/// Checksums are *not* verified while reading (truncated captures cannot
/// verify); pass decoded frames through [`wire::decode`] with
/// [`ChecksumPolicy::Verify`] if verification is required.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    snaplen: u32,
    records: u64,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    ///
    /// # Errors
    ///
    /// * [`NetError::BadMagic`] for an unrecognized magic number.
    /// * [`NetError::InvalidField`] for a non-Ethernet linktype.
    /// * I/O errors from the underlying reader.
    pub fn new(mut input: R) -> Result<Self, NetError> {
        let mut header = [0u8; 24];
        input.read_exact(&mut header)?;
        let raw_magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let swapped = match raw_magic {
            MAGIC => false,
            MAGIC_SWAPPED => true,
            other => return Err(NetError::BadMagic(other)),
        };
        let read_u32 = |bytes: &[u8]| {
            let arr = [bytes[0], bytes[1], bytes[2], bytes[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let snaplen = read_u32(&header[16..20]);
        let linktype = read_u32(&header[20..24]);
        if linktype != LINKTYPE_ETHERNET {
            return Err(NetError::InvalidField {
                field: "linktype",
                value: linktype as u64,
            });
        }
        Ok(Self {
            input,
            swapped,
            snaplen,
            records: 0,
        })
    }

    fn read_u32(&self, bytes: &[u8]) -> u32 {
        let arr = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if self.swapped {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    }

    /// The snaplen declared in the global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Number of records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }

    /// Reads the next record, returning `Ok(None)` at a clean end of file.
    ///
    /// # Errors
    ///
    /// * [`NetError::Truncated`] when the file ends inside a record.
    /// * Frame decode errors from [`wire::decode`] (checksum verification
    ///   disabled).
    pub fn read_packet(&mut self) -> Result<Option<Packet>, NetError> {
        let mut rec = [0u8; 16];
        match self.input.read(&mut rec[..1])? {
            0 => return Ok(None), // clean EOF
            _ => self
                .input
                .read_exact(&mut rec[1..])
                .map_err(|_| NetError::Truncated {
                    context: "pcap record header",
                    needed: 16,
                    available: 1,
                })?,
        }
        let sec = self.read_u32(&rec[0..4]);
        let usec = self.read_u32(&rec[4..8]);
        let incl_len = self.read_u32(&rec[8..12]) as usize;
        let orig_len = self.read_u32(&rec[12..16]);
        if incl_len > self.snaplen as usize {
            return Err(NetError::InvalidField {
                field: "incl_len",
                value: incl_len as u64,
            });
        }
        let mut frame = vec![0u8; incl_len];
        self.input
            .read_exact(&mut frame)
            .map_err(|_| NetError::Truncated {
                context: "pcap record body",
                needed: incl_len,
                available: 0,
            })?;
        let ts = Timestamp::from_sec_usec(sec, usec);
        let packet = wire::decode(&frame, ts, orig_len, ChecksumPolicy::Ignore)?;
        self.records += 1;
        Ok(Some(packet))
    }

    /// Reads every remaining record into a vector.
    ///
    /// # Errors
    ///
    /// Stops at the first malformed record and returns its error.
    pub fn read_all(&mut self) -> Result<Vec<Packet>, NetError> {
        let mut out = Vec::new();
        while let Some(p) = self.read_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

/// Convenience: writes `packets` to a fresh in-memory pcap byte buffer.
///
/// # Errors
///
/// Propagates writer errors (infallible for `Vec<u8>` in practice).
pub fn to_bytes<'a, I: IntoIterator<Item = &'a Packet>>(
    packets: I,
    snaplen: u32,
) -> Result<Vec<u8>, NetError> {
    let mut buf = Vec::new();
    let mut writer = PcapWriter::new(&mut buf, snaplen)?;
    for p in packets {
        writer.write_packet(p)?;
    }
    writer.finish()?;
    Ok(buf)
}

/// Convenience: parses every record of an in-memory pcap byte buffer.
///
/// # Errors
///
/// Fails on a bad global header or any malformed record.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Packet>, NetError> {
    PcapReader::new(bytes)?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FiveTuple, Protocol, TcpFlags};

    fn sample_packets() -> Vec<Packet> {
        let tcp = FiveTuple::new(
            Protocol::Tcp,
            "10.0.0.1:1000".parse().unwrap(),
            "192.0.2.1:80".parse().unwrap(),
        );
        let udp = FiveTuple::new(
            Protocol::Udp,
            "10.0.0.2:5353".parse().unwrap(),
            "192.0.2.2:53".parse().unwrap(),
        );
        vec![
            Packet::tcp(Timestamp::from_secs(0.5), tcp, TcpFlags::SYN, &[][..]),
            Packet::tcp(
                Timestamp::from_secs(1.0),
                tcp,
                TcpFlags::PSH | TcpFlags::ACK,
                b"GET / HTTP/1.1\r\n".to_vec(),
            ),
            Packet::udp(Timestamp::from_secs(2.25), udp, b"query".to_vec()),
        ]
    }

    #[test]
    fn round_trip_preserves_packets() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, 65535).unwrap();
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored, packets);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets, HEADER_SNAPLEN).unwrap();
        let restored = from_bytes(&bytes).unwrap();
        // Payloads are stripped but wire lengths are the originals.
        assert!(restored[1].payload().is_empty());
        assert_eq!(restored[1].wire_len(), packets[1].wire_len());
        assert_eq!(restored[1].tuple(), packets[1].tuple());
        assert_eq!(restored[1].tcp_flags(), packets[1].tcp_flags());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&sample_packets(), 65535).unwrap();
        bytes[0] = 0x00;
        assert!(matches!(from_bytes(&bytes), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn swapped_endianness_is_readable() {
        // Hand-build a big-endian header + one record.
        let packets = sample_packets();
        let native = to_bytes(&packets[..1], 65535).unwrap();
        let mut swapped = Vec::new();
        // Swap each u32/u16 field of the global header.
        swapped.extend_from_slice(&MAGIC.to_be_bytes());
        swapped.extend_from_slice(&2u16.to_be_bytes());
        swapped.extend_from_slice(&4u16.to_be_bytes());
        swapped.extend_from_slice(&0u32.to_be_bytes());
        swapped.extend_from_slice(&0u32.to_be_bytes());
        swapped.extend_from_slice(&65535u32.to_be_bytes());
        swapped.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        // Record header fields byte-swapped; body verbatim.
        let rec = &native[24..];
        for i in 0..4 {
            let mut field = [rec[i * 4], rec[i * 4 + 1], rec[i * 4 + 2], rec[i * 4 + 3]];
            field.reverse();
            swapped.extend_from_slice(&field);
        }
        swapped.extend_from_slice(&rec[16..]);
        let restored = from_bytes(&swapped).unwrap();
        assert_eq!(restored, packets[..1]);
    }

    #[test]
    fn truncated_record_header_errors() {
        let bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        let cut = &bytes[..24 + 7];
        let mut reader = PcapReader::new(cut).unwrap();
        assert!(matches!(
            reader.read_packet(),
            Err(NetError::Truncated {
                context: "pcap record header",
                ..
            })
        ));
    }

    #[test]
    fn truncated_record_body_errors() {
        let bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = PcapReader::new(cut).unwrap();
        assert!(matches!(
            reader.read_packet(),
            Err(NetError::Truncated {
                context: "pcap record body",
                ..
            })
        ));
    }

    #[test]
    fn incl_len_beyond_snaplen_is_invalid() {
        let mut bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        // Shrink the declared snaplen below the record's incl_len.
        bytes[16..20].copy_from_slice(&10u32.to_le_bytes());
        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            reader.read_packet(),
            Err(NetError::InvalidField {
                field: "incl_len",
                ..
            })
        ));
    }

    #[test]
    fn wrong_linktype_is_rejected() {
        let mut bytes = to_bytes(&sample_packets()[..1], 65535).unwrap();
        bytes[20..24].copy_from_slice(&101u32.to_le_bytes()); // raw IP
        assert!(matches!(
            PcapReader::new(&bytes[..]),
            Err(NetError::InvalidField {
                field: "linktype",
                ..
            })
        ));
    }

    #[test]
    fn empty_capture_yields_no_packets() {
        let bytes = to_bytes(std::iter::empty(), 65535).unwrap();
        assert!(from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn record_counters_track() {
        let packets = sample_packets();
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65535).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.records_written(), 3);
        w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        r.read_all().unwrap();
        assert_eq!(r.records_read(), 3);
        assert_eq!(r.snaplen(), 65535);
    }
}
