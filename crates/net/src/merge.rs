//! K-way merging of time-sorted packet streams.
//!
//! A core router (paper Figure 6) observes the interleaving of several
//! client networks' streams. [`merge_sorted`] lazily merges any number of
//! individually time-sorted packet iterators into one globally sorted
//! stream using a binary heap — O(total · log k) with O(k) buffering,
//! so hour-long traces never need to be concatenated and re-sorted in
//! memory.

use crate::Packet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merges time-sorted packet streams into one sorted stream.
///
/// Ties are broken by source-stream index, so the merge is stable with
/// respect to stream order and fully deterministic.
///
/// # Examples
///
/// ```
/// use upbound_net::{merge_sorted, FiveTuple, Packet, Protocol, TcpFlags, Timestamp};
///
/// let t = FiveTuple::new(
///     Protocol::Tcp,
///     "10.0.0.1:1000".parse()?,
///     "192.0.2.1:80".parse()?,
/// );
/// let mk = |secs: f64| Packet::tcp(Timestamp::from_secs(secs), t, TcpFlags::ACK, &[][..]);
/// let a = vec![mk(1.0), mk(3.0)];
/// let b = vec![mk(2.0), mk(4.0)];
/// let merged: Vec<_> = merge_sorted(vec![a.into_iter(), b.into_iter()]).collect();
/// let times: Vec<f64> = merged.iter().map(|p| p.ts().as_secs_f64()).collect();
/// assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn merge_sorted<I>(streams: Vec<I>) -> MergeSorted<I>
where
    I: Iterator<Item = Packet>,
{
    let mut heap = BinaryHeap::with_capacity(streams.len());
    let mut sources: Vec<I> = streams;
    for (idx, source) in sources.iter_mut().enumerate() {
        if let Some(packet) = source.next() {
            heap.push(Reverse((packet.ts(), idx, HeapPacket(packet))));
        }
    }
    MergeSorted { sources, heap }
}

/// Wrapper giving packets the (vacuous) ordering the heap needs; actual
/// ordering comes from the (timestamp, index) prefix of the tuple.
#[derive(Debug)]
struct HeapPacket(Packet);

impl PartialEq for HeapPacket {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for HeapPacket {}
impl PartialOrd for HeapPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapPacket {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Iterator returned by [`merge_sorted`].
#[derive(Debug)]
pub struct MergeSorted<I: Iterator<Item = Packet>> {
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<(crate::Timestamp, usize, HeapPacket)>>,
}

impl<I: Iterator<Item = Packet>> Iterator for MergeSorted<I> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        let Reverse((_, idx, HeapPacket(packet))) = self.heap.pop()?;
        if let Some(following) = self.sources[idx].next() {
            self.heap
                .push(Reverse((following.ts(), idx, HeapPacket(following))));
        }
        Some(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FiveTuple, Protocol, TcpFlags, Timestamp};

    fn pkt(secs: f64, port: u16) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(secs),
            FiveTuple::new(
                Protocol::Tcp,
                format!("10.0.0.1:{port}").parse().unwrap(),
                "192.0.2.1:80".parse().unwrap(),
            ),
            TcpFlags::ACK,
            &[][..],
        )
    }

    fn times(packets: &[Packet]) -> Vec<f64> {
        packets.iter().map(|p| p.ts().as_secs_f64()).collect()
    }

    #[test]
    fn merges_interleaved_streams() {
        let a = vec![pkt(1.0, 1), pkt(4.0, 1), pkt(7.0, 1)];
        let b = vec![pkt(2.0, 2), pkt(5.0, 2)];
        let c = vec![pkt(3.0, 3), pkt(6.0, 3)];
        let merged: Vec<_> =
            merge_sorted(vec![a.into_iter(), b.into_iter(), c.into_iter()]).collect();
        assert_eq!(times(&merged), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn ties_break_by_stream_order() {
        let a = vec![pkt(1.0, 1)];
        let b = vec![pkt(1.0, 2)];
        let merged: Vec<_> = merge_sorted(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged[0].tuple().src().port(), 1);
        assert_eq!(merged[1].tuple().src().port(), 2);
    }

    #[test]
    fn empty_and_uneven_streams() {
        let a: Vec<Packet> = vec![];
        let b = vec![pkt(2.0, 2)];
        let merged: Vec<_> = merge_sorted(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged.len(), 1);

        let none: Vec<Vec<Packet>> = vec![];
        let merged: Vec<_> =
            merge_sorted(none.into_iter().map(Vec::into_iter).collect::<Vec<_>>()).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn single_stream_passes_through() {
        let a = vec![pkt(1.0, 1), pkt(2.0, 1)];
        let merged: Vec<_> = merge_sorted(vec![a.clone().into_iter()]).collect();
        assert_eq!(merged, a);
    }

    #[test]
    fn large_merge_is_fully_sorted() {
        let streams: Vec<Vec<Packet>> = (0..8)
            .map(|s| {
                (0..200)
                    .map(|i| pkt(i as f64 * 0.5 + s as f64 * 0.01, s as u16 + 1))
                    .collect()
            })
            .collect();
        let merged: Vec<_> =
            merge_sorted(streams.into_iter().map(Vec::into_iter).collect::<Vec<_>>()).collect();
        assert_eq!(merged.len(), 1600);
        assert!(merged.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }
}
