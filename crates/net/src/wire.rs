//! Ethernet II / IPv4 / TCP / UDP wire encoding and decoding.
//!
//! The trace collector in the paper stores raw frames in tcpdump format;
//! this module is the codec between our in-memory [`Packet`] records and
//! those frames. Encoding produces a fully valid frame — correct lengths
//! and real Internet checksums (IPv4 header checksum, TCP/UDP checksum
//! over the pseudo-header) — and decoding verifies them, because the
//! paper's analyzer discards packets "with incorrect checksum values"
//! (§3.2).
//!
//! Sequence/acknowledgment numbers and windows are synthesized (the
//! reproduction does not model TCP reliability), so decode(encode(p))
//! recovers everything a [`Packet`] represents.

use crate::packet::{ETH_HDR_LEN, IPV4_HDR_LEN, TCP_HDR_LEN, UDP_HDR_LEN};
use crate::{FiveTuple, NetError, Packet, Protocol, TcpFlags, Timestamp};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::{Ipv4Addr, SocketAddrV4};

const ETHERTYPE_IPV4: u16 = 0x0800;

/// Computes the Internet checksum (RFC 1071) of `data`.
///
/// The one's-complement sum of 16-bit words; odd trailing byte is padded
/// with zero. Returns the final complemented sum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u16::from_be_bytes([w[0], w[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: Protocol, segment: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + segment.len());
    pseudo.extend_from_slice(&src.octets());
    pseudo.extend_from_slice(&dst.octets());
    pseudo.push(0);
    pseudo.push(protocol.ip_number());
    pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(segment);
    internet_checksum(&pseudo)
}

/// Derives a deterministic locally-administered MAC address from an IPv4
/// address, so synthesized frames are stable across runs.
fn mac_for(addr: Ipv4Addr) -> [u8; 6] {
    let o = addr.octets();
    [0x02, 0x00, o[0], o[1], o[2], o[3]]
}

/// Encodes a [`Packet`] as a complete Ethernet II frame.
///
/// The frame length always reflects the packet's actual payload (it does
/// not attempt to re-inflate a stripped packet to its original
/// `wire_len`).
pub fn encode(packet: &Packet) -> Bytes {
    let tuple = packet.tuple();
    let payload = packet.payload();
    let transport_len = match packet.protocol() {
        Protocol::Tcp => TCP_HDR_LEN + payload.len(),
        Protocol::Udp => UDP_HDR_LEN + payload.len(),
    };
    let ip_total = IPV4_HDR_LEN + transport_len;
    let mut buf = BytesMut::with_capacity(ETH_HDR_LEN + ip_total);

    // Ethernet II.
    buf.put_slice(&mac_for(*tuple.dst().ip()));
    buf.put_slice(&mac_for(*tuple.src().ip()));
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4 header with checksum.
    let mut ip = [0u8; IPV4_HDR_LEN];
    ip[0] = 0x45; // version 4, IHL 5
    ip[1] = 0; // DSCP/ECN
    ip[2..4].copy_from_slice(&(ip_total as u16).to_be_bytes());
    // Identification: derived from the timestamp for determinism.
    ip[4..6].copy_from_slice(&((packet.ts().as_micros() & 0xFFFF) as u16).to_be_bytes());
    ip[6] = 0x40; // Don't Fragment
    ip[8] = 64; // TTL
    ip[9] = packet.protocol().ip_number();
    ip[12..16].copy_from_slice(&tuple.src().ip().octets());
    ip[16..20].copy_from_slice(&tuple.dst().ip().octets());
    let ip_ck = internet_checksum(&ip);
    ip[10..12].copy_from_slice(&ip_ck.to_be_bytes());
    buf.put_slice(&ip);

    // Transport header + payload.
    match packet.protocol() {
        Protocol::Tcp => {
            let mut tcp = vec![0u8; TCP_HDR_LEN + payload.len()];
            tcp[0..2].copy_from_slice(&tuple.src().port().to_be_bytes());
            tcp[2..4].copy_from_slice(&tuple.dst().port().to_be_bytes());
            // Sequence number derived from the timestamp (not modeled).
            let seq = (packet.ts().as_micros() as u32).to_be_bytes();
            tcp[4..8].copy_from_slice(&seq);
            tcp[12] = (5 << 4) as u8; // data offset 5 words
            tcp[13] = packet.tcp_flags().unwrap_or(TcpFlags::EMPTY).bits();
            tcp[14..16].copy_from_slice(&65535u16.to_be_bytes()); // window
            tcp[TCP_HDR_LEN..].copy_from_slice(payload);
            let ck = transport_checksum(*tuple.src().ip(), *tuple.dst().ip(), Protocol::Tcp, &tcp);
            tcp[16..18].copy_from_slice(&ck.to_be_bytes());
            buf.put_slice(&tcp);
        }
        Protocol::Udp => {
            let mut udp = vec![0u8; UDP_HDR_LEN + payload.len()];
            udp[0..2].copy_from_slice(&tuple.src().port().to_be_bytes());
            udp[2..4].copy_from_slice(&tuple.dst().port().to_be_bytes());
            udp[4..6].copy_from_slice(&((UDP_HDR_LEN + payload.len()) as u16).to_be_bytes());
            udp[UDP_HDR_LEN..].copy_from_slice(payload);
            let ck = transport_checksum(*tuple.src().ip(), *tuple.dst().ip(), Protocol::Udp, &udp);
            // RFC 768: a computed checksum of zero is transmitted as 0xFFFF.
            let ck = if ck == 0 { 0xFFFF } else { ck };
            udp[6..8].copy_from_slice(&ck.to_be_bytes());
            buf.put_slice(&udp);
        }
    }
    buf.freeze()
}

/// Controls checksum verification during [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumPolicy {
    /// Reject frames whose IPv4 or transport checksum does not verify,
    /// like the paper's analyzer.
    Verify,
    /// Accept frames without checking (e.g. snaplen-truncated captures,
    /// whose transport checksums cannot be recomputed).
    Ignore,
}

/// Decodes an Ethernet II frame into a [`Packet`] stamped with `ts`.
///
/// `orig_len` is the original wire length from the capture record; the
/// decoded packet's `wire_len` uses it so truncated captures keep correct
/// byte accounting.
///
/// # Errors
///
/// * [`NetError::Truncated`] if any header is incomplete.
/// * [`NetError::InvalidField`] for non-IPv4 frames, IP options, or
///   fragmented packets (none of which the substrate generates).
/// * [`NetError::UnsupportedProtocol`] for transports other than TCP/UDP.
/// * [`NetError::BadChecksum`] under [`ChecksumPolicy::Verify`] when a
///   checksum fails.
pub fn decode(
    frame: &[u8],
    ts: Timestamp,
    orig_len: u32,
    policy: ChecksumPolicy,
) -> Result<Packet, NetError> {
    let need = |context: &'static str, needed: usize| NetError::Truncated {
        context,
        needed,
        available: frame.len(),
    };
    if frame.len() < ETH_HDR_LEN {
        return Err(need("Ethernet header", ETH_HDR_LEN));
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(NetError::InvalidField {
            field: "ethertype",
            value: ethertype as u64,
        });
    }
    let ip = &frame[ETH_HDR_LEN..];
    if ip.len() < IPV4_HDR_LEN {
        return Err(need("IPv4 header", ETH_HDR_LEN + IPV4_HDR_LEN));
    }
    if ip[0] != 0x45 {
        return Err(NetError::InvalidField {
            field: "ip version/ihl",
            value: ip[0] as u64,
        });
    }
    if policy == ChecksumPolicy::Verify && internet_checksum(&ip[..IPV4_HDR_LEN]) != 0 {
        return Err(NetError::BadChecksum { layer: "IPv4" });
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if total_len < IPV4_HDR_LEN {
        // A total length shorter than the header itself is structurally
        // impossible; without this check the transport slice below would
        // panic on `[IPV4_HDR_LEN..total_len]`.
        return Err(NetError::InvalidField {
            field: "ip total length",
            value: total_len as u64,
        });
    }
    let truncated = ip.len() < total_len;
    if truncated && policy == ChecksumPolicy::Verify {
        // A snaplen-truncated frame cannot verify its transport checksum.
        return Err(need("IPv4 total length", ETH_HDR_LEN + total_len));
    }
    let protocol = Protocol::from_ip_number(ip[9])?;
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let transport = &ip[IPV4_HDR_LEN..total_len.min(ip.len())];

    let packet = match protocol {
        Protocol::Tcp => {
            if transport.len() < TCP_HDR_LEN {
                return Err(need("TCP header", ETH_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN));
            }
            if policy == ChecksumPolicy::Verify
                && transport_checksum(src_ip, dst_ip, Protocol::Tcp, transport) != 0
            {
                return Err(NetError::BadChecksum { layer: "TCP" });
            }
            let sport = u16::from_be_bytes([transport[0], transport[1]]);
            let dport = u16::from_be_bytes([transport[2], transport[3]]);
            let data_off = ((transport[12] >> 4) as usize) * 4;
            if data_off < TCP_HDR_LEN || transport.len() < data_off {
                return Err(NetError::InvalidField {
                    field: "tcp data offset",
                    value: (transport[12] >> 4) as u64,
                });
            }
            let flags = TcpFlags::from_bits(transport[13]);
            let tuple = FiveTuple::new(
                Protocol::Tcp,
                SocketAddrV4::new(src_ip, sport),
                SocketAddrV4::new(dst_ip, dport),
            );
            Packet::tcp(ts, tuple, flags, transport[data_off..].to_vec())
        }
        Protocol::Udp => {
            if transport.len() < UDP_HDR_LEN {
                return Err(need("UDP header", ETH_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN));
            }
            if policy == ChecksumPolicy::Verify {
                let stored = u16::from_be_bytes([transport[6], transport[7]]);
                // A zero stored checksum means "not computed" (RFC 768).
                if stored != 0 && transport_checksum(src_ip, dst_ip, Protocol::Udp, transport) != 0
                {
                    return Err(NetError::BadChecksum { layer: "UDP" });
                }
            }
            let sport = u16::from_be_bytes([transport[0], transport[1]]);
            let dport = u16::from_be_bytes([transport[2], transport[3]]);
            let udp_len = u16::from_be_bytes([transport[4], transport[5]]) as usize;
            if udp_len < UDP_HDR_LEN || (!truncated && transport.len() < udp_len) {
                return Err(NetError::InvalidField {
                    field: "udp length",
                    value: udp_len as u64,
                });
            }
            let udp_len = udp_len.min(transport.len());
            let tuple = FiveTuple::new(
                Protocol::Udp,
                SocketAddrV4::new(src_ip, sport),
                SocketAddrV4::new(dst_ip, dport),
            );
            Packet::udp(ts, tuple, transport[UDP_HDR_LEN..udp_len].to_vec())
        }
    };
    Ok(packet.with_wire_len(orig_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_packet(payload: &[u8]) -> Packet {
        let tuple = FiveTuple::new(
            Protocol::Tcp,
            "10.0.0.1:4567".parse().unwrap(),
            "192.0.2.9:6881".parse().unwrap(),
        );
        Packet::tcp(
            Timestamp::from_secs(1.25),
            tuple,
            TcpFlags::PSH | TcpFlags::ACK,
            payload.to_vec(),
        )
    }

    fn udp_packet(payload: &[u8]) -> Packet {
        let tuple = FiveTuple::new(
            Protocol::Udp,
            "10.0.0.1:4567".parse().unwrap(),
            "192.0.2.9:53".parse().unwrap(),
        );
        Packet::udp(Timestamp::from_secs(2.0), tuple, payload.to_vec())
    }

    #[test]
    fn undersized_ip_total_length_is_invalid_not_a_panic() {
        // A single bit-flip in the IP total-length field of a valid frame
        // can declare fewer bytes than the IPv4 header itself; the slice
        // `[IPV4_HDR_LEN..total_len]` used to panic on that.
        let p = tcp_packet(b"data");
        let mut frame = encode(&p).to_vec();
        frame[ETH_HDR_LEN + 2] = 0;
        frame[ETH_HDR_LEN + 3] = 10; // total_len = 10 < 20
        for policy in [ChecksumPolicy::Ignore, ChecksumPolicy::Verify] {
            match decode(&frame, p.ts(), p.wire_len(), policy) {
                Err(NetError::InvalidField { field, value }) => {
                    assert_eq!(field, "ip total length");
                    assert_eq!(value, 10);
                }
                Err(NetError::BadChecksum { .. }) if policy == ChecksumPolicy::Verify => {}
                other => panic!("expected invalid field, got {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_matches_rfc1071_example() {
        // Classic example: two words summing with carry.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_of_odd_length_pads_zero() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn tcp_round_trip() {
        let p = tcp_packet(b"\x13BitTorrent protocol");
        let frame = encode(&p);
        let q = decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn udp_round_trip() {
        let p = udp_packet(b"dns-query");
        let frame = encode(&p);
        let q = decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn empty_payload_round_trip() {
        for p in [tcp_packet(b""), udp_packet(b"")] {
            let frame = encode(&p);
            let q = decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify).unwrap();
            assert_eq!(q, p);
        }
    }

    #[test]
    fn corrupted_ip_checksum_is_rejected() {
        let p = tcp_packet(b"data");
        let mut frame = encode(&p).to_vec();
        frame[ETH_HDR_LEN + 10] ^= 0xFF; // flip IPv4 checksum byte
        let err = decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify).unwrap_err();
        assert!(matches!(err, NetError::BadChecksum { layer: "IPv4" }));
        // Ignore policy lets it through.
        assert!(decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Ignore).is_ok());
    }

    #[test]
    fn corrupted_payload_fails_tcp_checksum() {
        let p = tcp_packet(b"data");
        let mut frame = encode(&p).to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let err = decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify).unwrap_err();
        assert!(matches!(err, NetError::BadChecksum { layer: "TCP" }));
    }

    #[test]
    fn corrupted_udp_payload_fails_checksum() {
        let p = udp_packet(b"data");
        let mut frame = encode(&p).to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let err = decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify).unwrap_err();
        assert!(matches!(err, NetError::BadChecksum { layer: "UDP" }));
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let p = tcp_packet(b"payload");
        let frame = encode(&p);
        for cut in [
            0,
            5,
            ETH_HDR_LEN - 1,
            ETH_HDR_LEN + 3,
            ETH_HDR_LEN + IPV4_HDR_LEN + 2,
        ] {
            let err = decode(&frame[..cut], p.ts(), p.wire_len(), ChecksumPolicy::Ignore);
            assert!(err.is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn non_ipv4_frame_is_rejected() {
        let p = tcp_packet(b"");
        let mut frame = encode(&p).to_vec();
        frame[12] = 0x86; // IPv6 ethertype
        frame[13] = 0xDD;
        assert!(matches!(
            decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Ignore),
            Err(NetError::InvalidField {
                field: "ethertype",
                ..
            })
        ));
    }

    #[test]
    fn icmp_protocol_is_unsupported() {
        let p = tcp_packet(b"");
        let mut frame = encode(&p).to_vec();
        frame[ETH_HDR_LEN + 9] = 1; // ICMP
                                    // Fix the IP checksum so we reach the protocol dispatch.
        frame[ETH_HDR_LEN + 10] = 0;
        frame[ETH_HDR_LEN + 11] = 0;
        let ck = internet_checksum(&frame[ETH_HDR_LEN..ETH_HDR_LEN + IPV4_HDR_LEN]);
        frame[ETH_HDR_LEN + 10..ETH_HDR_LEN + 12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            decode(&frame, p.ts(), p.wire_len(), ChecksumPolicy::Verify),
            Err(NetError::UnsupportedProtocol(1))
        ));
    }

    #[test]
    fn orig_len_is_preserved_for_truncated_captures() {
        let p = tcp_packet(b"x");
        let frame = encode(&p);
        let q = decode(&frame, p.ts(), 9999, ChecksumPolicy::Verify).unwrap();
        assert_eq!(q.wire_len(), 9999);
    }

    #[test]
    fn frame_length_matches_headers_plus_payload() {
        let p = udp_packet(b"abc");
        assert_eq!(
            encode(&p).len(),
            ETH_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + 3
        );
    }
}
