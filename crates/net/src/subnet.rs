//! IPv4 CIDR prefixes and inbound/outbound classification.

use crate::{Direction, FiveTuple};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix describing the client network monitored by a filter.
///
/// "The traffic sent to the campus network is inbound traffic while traffic
/// in the other direction is outbound traffic" (paper Fig. 1). Direction is
/// therefore defined by whether the *source* of a packet lies inside this
/// prefix.
///
/// # Examples
///
/// ```
/// use upbound_net::Cidr;
///
/// let net: Cidr = "192.168.0.0/16".parse()?;
/// assert!(net.contains("192.168.3.4".parse()?));
/// assert!(!net.contains("10.0.0.1".parse()?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    base: Ipv4Addr,
    prefix_len: u8,
}

impl Cidr {
    /// Creates a prefix from a base address and prefix length, normalizing
    /// host bits to zero.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `prefix_len > 32`.
    pub fn new(base: Ipv4Addr, prefix_len: u8) -> Result<Self, ParseCidrError> {
        if prefix_len > 32 {
            return Err(ParseCidrError::PrefixTooLong(prefix_len));
        }
        let masked = u32::from(base) & Self::mask_bits(prefix_len);
        Ok(Self {
            base: Ipv4Addr::from(masked),
            prefix_len,
        })
    }

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// The (normalized) network base address.
    pub const fn base(self) -> Ipv4Addr {
        self.base
    }

    /// The prefix length in bits.
    pub const fn prefix_len(self) -> u8 {
        self.prefix_len
    }

    /// `true` when `addr` lies inside this prefix.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_bits(self.prefix_len) == u32::from(self.base)
    }

    /// Classifies a packet's five-tuple relative to this client network:
    /// [`Direction::Outbound`] when the source is inside,
    /// [`Direction::Inbound`] otherwise.
    pub fn direction_of(self, tuple: &FiveTuple) -> Direction {
        if self.contains(*tuple.src().ip()) {
            Direction::Outbound
        } else {
            Direction::Inbound
        }
    }

    /// Number of addresses covered by the prefix.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.prefix_len as u32)
    }

    /// The `i`-th host address inside the prefix (0-based, wrapping within
    /// the prefix). Useful for deterministic synthetic host assignment.
    pub fn host(self, i: u64) -> Ipv4Addr {
        let offset = (i % self.size()) as u32;
        Ipv4Addr::from(u32::from(self.base).wrapping_add(offset))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix_len)
    }
}

/// Error parsing a CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseCidrError {
    /// Missing the `/` separator.
    MissingSlash,
    /// The address part failed to parse.
    BadAddress,
    /// The prefix-length part failed to parse.
    BadPrefix,
    /// Prefix length exceeded 32.
    PrefixTooLong(u8),
}

impl fmt::Display for ParseCidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCidrError::MissingSlash => write!(f, "missing '/' in CIDR"),
            ParseCidrError::BadAddress => write!(f, "invalid IPv4 address in CIDR"),
            ParseCidrError::BadPrefix => write!(f, "invalid prefix length in CIDR"),
            ParseCidrError::PrefixTooLong(n) => write!(f, "prefix length {n} exceeds 32"),
        }
    }
}

impl std::error::Error for ParseCidrError {}

impl FromStr for Cidr {
    type Err = ParseCidrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(ParseCidrError::MissingSlash)?;
        let base: Ipv4Addr = addr.parse().map_err(|_| ParseCidrError::BadAddress)?;
        let prefix_len: u8 = len.parse().map_err(|_| ParseCidrError::BadPrefix)?;
        Cidr::new(base, prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;

    #[test]
    fn parse_and_display_round_trip() {
        let c: Cidr = "172.16.0.0/12".parse().unwrap();
        assert_eq!(c.to_string(), "172.16.0.0/12");
        assert_eq!(c.prefix_len(), 12);
    }

    #[test]
    fn host_bits_are_normalized() {
        let c: Cidr = "10.1.2.3/8".parse().unwrap();
        assert_eq!(c.base(), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn containment_at_boundaries() {
        let c: Cidr = "192.168.4.0/24".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(192, 168, 4, 0)));
        assert!(c.contains(Ipv4Addr::new(192, 168, 4, 255)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 5, 0)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 3, 255)));
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let c: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(c.size(), 1 << 32);
    }

    #[test]
    fn slash_32_contains_only_itself() {
        let c: Cidr = "8.8.8.8/32".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(!c.contains(Ipv4Addr::new(8, 8, 8, 9)));
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert_eq!(
            "10.0.0.0".parse::<Cidr>(),
            Err(ParseCidrError::MissingSlash)
        );
        assert_eq!("bogus/8".parse::<Cidr>(), Err(ParseCidrError::BadAddress));
        assert_eq!("10.0.0.0/x".parse::<Cidr>(), Err(ParseCidrError::BadPrefix));
        assert_eq!(
            "10.0.0.0/33".parse::<Cidr>(),
            Err(ParseCidrError::PrefixTooLong(33))
        );
    }

    #[test]
    fn direction_follows_source_address() {
        let c: Cidr = "10.0.0.0/8".parse().unwrap();
        let out = FiveTuple::new(
            Protocol::Tcp,
            "10.0.0.1:5000".parse().unwrap(),
            "192.0.2.1:80".parse().unwrap(),
        );
        assert_eq!(c.direction_of(&out), Direction::Outbound);
        assert_eq!(c.direction_of(&out.inverse()), Direction::Inbound);
    }

    #[test]
    fn host_enumeration_wraps_within_prefix() {
        let c: Cidr = "10.0.0.0/30".parse().unwrap();
        assert_eq!(c.host(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.host(3), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(c.host(4), Ipv4Addr::new(10, 0, 0, 0));
    }
}
