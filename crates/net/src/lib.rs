//! Packet and network substrate for the `upbound` reproduction.
//!
//! The DSN 2007 paper operates on packet traces collected at the edge of a
//! campus client network. This crate rebuilds that entire substrate from
//! scratch:
//!
//! * [`Timestamp`] / [`TimeDelta`] — a simulated microsecond clock.
//! * [`Protocol`], [`FiveTuple`], [`FilterKey`] — socket pairs, their
//!   inverses, and the hash keys the bitmap filter derives from them
//!   (including the hole-punching variant that omits the remote port).
//! * [`TcpFlags`], [`TcpConnState`] — TCP control flags and a lifetime
//!   state machine (SYN → established → FIN/RST) used by the analyzer.
//! * [`Packet`], [`Direction`], [`Cidr`] — trace records and the
//!   inside/outside classification relative to the client network.
//! * [`wire`] — Ethernet II / IPv4 / TCP / UDP header encoding and
//!   decoding with real Internet checksums.
//! * [`pcap`] — a from-scratch reader/writer for the classic libpcap file
//!   format (both endiannesses, snaplen truncation), standing in for the
//!   paper's tcpdump capture stage.
//! * [`source`] — the [`PacketSource`] abstraction over packet
//!   acquisition, with deterministic pcap replay and a Linux
//!   `AF_PACKET` live-capture backend behind one contract.
//!
//! # Examples
//!
//! ```
//! use upbound_net::{FiveTuple, Protocol, Cidr, Direction};
//!
//! let net: Cidr = "10.0.0.0/8".parse()?;
//! let t = FiveTuple::new(
//!     Protocol::Tcp,
//!     "10.1.2.3:45000".parse()?,
//!     "198.51.100.7:6881".parse()?,
//! );
//! assert_eq!(net.direction_of(&t), Direction::Outbound);
//! assert_eq!(t.inverse().inverse(), t);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod clock;
mod error;
mod merge;
mod packet;
pub mod pcap;
mod protocol;
pub mod source;
mod subnet;
mod tcp;
mod tuple;
pub mod wire;

pub use clock::{TimeDelta, Timestamp};
pub use error::{IngestReason, NetError};
pub use merge::{merge_sorted, MergeSorted};
pub use packet::{Direction, Packet};
pub use protocol::Protocol;
pub use source::{
    BufferedSource, LiveCaptureError, LiveConfig, LiveSource, PacketSource, PcapSource, SourcePoll,
};
pub use subnet::Cidr;
pub use tcp::{TcpConnState, TcpFlags};
pub use tuple::{FilterKey, FiveTuple};
