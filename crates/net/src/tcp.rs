//! TCP control flags and a connection-lifetime state machine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::BitOr;

/// TCP header control flags (low 6 bits of the flags byte).
///
/// The analyzer uses these to gate payload inspection (only connections
/// that begin with an explicit SYN are reassembled, §3.2) and to measure
/// connection lifetimes ("counted from the first TCP-SYN packet to the
/// appearance of a valid TCP-FIN or TCP-RST packet", §3.3).
///
/// # Examples
///
/// ```
/// use upbound_net::TcpFlags;
///
/// let synack = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(synack.contains(TcpFlags::SYN));
/// assert!(!synack.contains(TcpFlags::FIN));
/// assert_eq!(synack.bits(), 0b01_0010);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN — sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN — synchronize sequence numbers (connection open).
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST — reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH — push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK — acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG — urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Builds flags from the raw header byte (upper two bits ignored).
    pub const fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags(bits & 0x3F)
    }

    /// The raw flag bits as they appear in the TCP header.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// `true` when every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` when no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` for a connection-opening SYN (SYN set, ACK clear).
    pub const fn is_initial_syn(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, ".");
        }
        let names = [
            (TcpFlags::FIN, 'F'),
            (TcpFlags::SYN, 'S'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::URG, 'U'),
        ];
        for (flag, c) in names {
            if self.contains(flag) {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// The lifetime states of a tracked TCP connection.
///
/// This is deliberately coarser than a full RFC 793 state machine: the
/// analyzer and the SPI baseline only need to know whether a connection has
/// properly opened, is exchanging data, or has terminated — the same
/// granularity the paper's measurements use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TcpConnState {
    /// Initial SYN seen, waiting for the peer's SYN-ACK.
    SynSent,
    /// Three-way handshake completed (or data seen on both sides).
    Established,
    /// One side sent FIN; draining.
    FinWait,
    /// Connection closed by FIN exchange or RST.
    Closed,
}

impl TcpConnState {
    /// Starts tracking from the first packet's flags.
    ///
    /// A connection observed mid-stream (no SYN) is treated as already
    /// established, matching how a filter bootstraps on live traffic.
    pub fn from_first_packet(flags: TcpFlags) -> TcpConnState {
        if flags.contains(TcpFlags::RST) {
            TcpConnState::Closed
        } else if flags.is_initial_syn() {
            TcpConnState::SynSent
        } else {
            TcpConnState::Established
        }
    }

    /// Advances the state machine with the flags of the next packet
    /// (either direction) and returns the new state.
    pub fn advance(self, flags: TcpFlags) -> TcpConnState {
        if flags.contains(TcpFlags::RST) {
            return TcpConnState::Closed;
        }
        match self {
            TcpConnState::SynSent => {
                if flags.contains(TcpFlags::FIN) {
                    TcpConnState::Closed
                } else if flags.contains(TcpFlags::ACK) {
                    TcpConnState::Established
                } else {
                    TcpConnState::SynSent
                }
            }
            TcpConnState::Established => {
                if flags.contains(TcpFlags::FIN) {
                    TcpConnState::FinWait
                } else {
                    TcpConnState::Established
                }
            }
            TcpConnState::FinWait => {
                if flags.contains(TcpFlags::FIN) {
                    TcpConnState::Closed
                } else {
                    TcpConnState::FinWait
                }
            }
            TcpConnState::Closed => TcpConnState::Closed,
        }
    }

    /// `true` once the connection has terminated.
    pub const fn is_closed(self) -> bool {
        matches!(self, TcpConnState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_bits_round_trip() {
        let f = TcpFlags::SYN | TcpFlags::ACK | TcpFlags::PSH;
        assert_eq!(TcpFlags::from_bits(f.bits()), f);
    }

    #[test]
    fn from_bits_masks_reserved_bits() {
        assert_eq!(TcpFlags::from_bits(0xFF).bits(), 0x3F);
    }

    #[test]
    fn initial_syn_detection() {
        assert!(TcpFlags::SYN.is_initial_syn());
        assert!(!(TcpFlags::SYN | TcpFlags::ACK).is_initial_syn());
        assert!(!TcpFlags::ACK.is_initial_syn());
    }

    #[test]
    fn display_shows_flag_letters() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SA");
        assert_eq!(TcpFlags::EMPTY.to_string(), ".");
        assert_eq!((TcpFlags::FIN | TcpFlags::RST).to_string(), "FR");
    }

    #[test]
    fn normal_handshake_and_close() {
        let mut s = TcpConnState::from_first_packet(TcpFlags::SYN);
        assert_eq!(s, TcpConnState::SynSent);
        s = s.advance(TcpFlags::SYN | TcpFlags::ACK);
        assert_eq!(s, TcpConnState::Established);
        s = s.advance(TcpFlags::ACK);
        assert_eq!(s, TcpConnState::Established);
        s = s.advance(TcpFlags::FIN | TcpFlags::ACK);
        assert_eq!(s, TcpConnState::FinWait);
        s = s.advance(TcpFlags::FIN | TcpFlags::ACK);
        assert_eq!(s, TcpConnState::Closed);
        assert!(s.is_closed());
    }

    #[test]
    fn rst_closes_from_any_state() {
        for start in [
            TcpConnState::SynSent,
            TcpConnState::Established,
            TcpConnState::FinWait,
        ] {
            assert_eq!(start.advance(TcpFlags::RST), TcpConnState::Closed);
        }
    }

    #[test]
    fn closed_is_absorbing() {
        let s = TcpConnState::Closed;
        assert_eq!(s.advance(TcpFlags::SYN), TcpConnState::Closed);
        assert_eq!(s.advance(TcpFlags::ACK), TcpConnState::Closed);
    }

    #[test]
    fn midstream_start_is_established() {
        assert_eq!(
            TcpConnState::from_first_packet(TcpFlags::ACK),
            TcpConnState::Established
        );
        assert_eq!(
            TcpConnState::from_first_packet(TcpFlags::RST),
            TcpConnState::Closed
        );
    }
}
