//! Error type shared by the wire codec and the pcap reader/writer.

use std::fmt;

/// Errors produced while encoding, decoding, or (de)serializing packets
/// and traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The byte buffer ended before a complete header or payload.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// A header field held a value the codec cannot represent.
    InvalidField {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An IPv4/TCP/UDP checksum did not verify.
    ///
    /// The paper's analyzer explicitly skips packets with bad checksums;
    /// surfacing this as a distinct variant lets callers do the same.
    BadChecksum {
        /// Which protocol layer failed.
        layer: &'static str,
    },
    /// A pcap file did not start with a recognized magic number.
    BadMagic(u32),
    /// The packet uses a protocol the substrate does not model.
    UnsupportedProtocol(u8),
    /// An underlying I/O error from reading or writing a trace file.
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated {context}: needed {needed} bytes, had {available}"
            ),
            NetError::InvalidField { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
            NetError::BadChecksum { layer } => write!(f, "{layer} checksum mismatch"),
            NetError::BadMagic(magic) => write!(f, "unrecognized pcap magic {magic:#010x}"),
            NetError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            NetError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_informative() {
        let e = NetError::Truncated {
            context: "IPv4 header",
            needed: 20,
            available: 7,
        };
        assert_eq!(
            format!("{e}"),
            "truncated IPv4 header: needed 20 bytes, had 7"
        );

        let e = NetError::BadMagic(0xdeadbeef);
        assert!(format!("{e}").contains("0xdeadbeef"));

        let e = NetError::BadChecksum { layer: "TCP" };
        assert_eq!(format!("{e}"), "TCP checksum mismatch");
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: NetError = io.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
