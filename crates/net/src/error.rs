//! Error type shared by the wire codec and the pcap reader/writer.

use std::fmt;

/// Errors produced while encoding, decoding, or (de)serializing packets
/// and traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The byte buffer ended before a complete header or payload.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// A header field held a value the codec cannot represent.
    InvalidField {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An IPv4/TCP/UDP checksum did not verify.
    ///
    /// The paper's analyzer explicitly skips packets with bad checksums;
    /// surfacing this as a distinct variant lets callers do the same.
    BadChecksum {
        /// Which protocol layer failed.
        layer: &'static str,
    },
    /// A pcap file did not start with a recognized magic number.
    BadMagic(u32),
    /// The packet uses a protocol the substrate does not model.
    UnsupportedProtocol(u8),
    /// A declared length exceeds the sanity ceiling the reader enforces
    /// (e.g. a crafted pcap global header announcing a multi-gigabyte
    /// snaplen). Distinct from [`NetError::InvalidField`] so callers can
    /// tell "structurally impossible" from "merely hostile".
    Oversized {
        /// What carried the oversized length.
        context: &'static str,
        /// The declared length.
        len: u64,
        /// The enforced ceiling.
        limit: u64,
    },
    /// An underlying I/O error from reading or writing a trace file.
    Io(std::io::Error),
}

/// The stable classification of a [`NetError`] — the ingestion-error
/// taxonomy used for per-reason telemetry counters and skip accounting
/// in the recovering pcap reader.
///
/// Every error the trace-ingestion path can produce maps to exactly one
/// reason via [`NetError::reason`], and [`IngestReason::ALL`] enumerates
/// them in a fixed order so counters can be stored in a flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngestReason {
    /// Bytes ran out inside a header, record, or payload.
    Truncated,
    /// A header field held an unrepresentable or inconsistent value.
    InvalidField,
    /// A checksum failed to verify.
    BadChecksum,
    /// The capture did not start with a recognized magic number.
    BadMagic,
    /// A transport protocol the substrate does not model.
    UnsupportedProtocol,
    /// A declared length exceeded the reader's sanity ceiling.
    Oversized,
    /// An I/O error from the underlying reader or writer.
    Io,
    /// The kernel dropped packets on a live capture socket before
    /// userspace could read them (e.g. `AF_PACKET` ring overrun under
    /// load). Counted from the kernel's own statistics, not from a
    /// decode failure, so no [`NetError`] variant maps here.
    KernelDrop,
}

impl IngestReason {
    /// Every reason, in the order counters are stored and exported.
    pub const ALL: [IngestReason; 8] = [
        IngestReason::Truncated,
        IngestReason::InvalidField,
        IngestReason::BadChecksum,
        IngestReason::BadMagic,
        IngestReason::UnsupportedProtocol,
        IngestReason::Oversized,
        IngestReason::Io,
        IngestReason::KernelDrop,
    ];

    /// A stable snake_case label, usable as a metric-name suffix.
    pub const fn as_str(self) -> &'static str {
        match self {
            IngestReason::Truncated => "truncated",
            IngestReason::InvalidField => "invalid_field",
            IngestReason::BadChecksum => "bad_checksum",
            IngestReason::BadMagic => "bad_magic",
            IngestReason::UnsupportedProtocol => "unsupported_protocol",
            IngestReason::Oversized => "oversized",
            IngestReason::Io => "io",
            IngestReason::KernelDrop => "kernel_drop",
        }
    }

    /// The position of this reason inside [`IngestReason::ALL`].
    pub const fn index(self) -> usize {
        match self {
            IngestReason::Truncated => 0,
            IngestReason::InvalidField => 1,
            IngestReason::BadChecksum => 2,
            IngestReason::BadMagic => 3,
            IngestReason::UnsupportedProtocol => 4,
            IngestReason::Oversized => 5,
            IngestReason::Io => 6,
            IngestReason::KernelDrop => 7,
        }
    }
}

impl fmt::Display for IngestReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl NetError {
    /// The taxonomy bucket this error falls into.
    pub fn reason(&self) -> IngestReason {
        match self {
            NetError::Truncated { .. } => IngestReason::Truncated,
            NetError::InvalidField { .. } => IngestReason::InvalidField,
            NetError::BadChecksum { .. } => IngestReason::BadChecksum,
            NetError::BadMagic(_) => IngestReason::BadMagic,
            NetError::UnsupportedProtocol(_) => IngestReason::UnsupportedProtocol,
            NetError::Oversized { .. } => IngestReason::Oversized,
            NetError::Io(_) => IngestReason::Io,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated {context}: needed {needed} bytes, had {available}"
            ),
            NetError::InvalidField { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
            NetError::BadChecksum { layer } => write!(f, "{layer} checksum mismatch"),
            NetError::BadMagic(magic) => write!(f, "unrecognized pcap magic {magic:#010x}"),
            NetError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            NetError::Oversized {
                context,
                len,
                limit,
            } => write!(f, "oversized {context}: {len} exceeds the {limit} ceiling"),
            NetError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_informative() {
        let e = NetError::Truncated {
            context: "IPv4 header",
            needed: 20,
            available: 7,
        };
        assert_eq!(
            format!("{e}"),
            "truncated IPv4 header: needed 20 bytes, had 7"
        );

        let e = NetError::BadMagic(0xdeadbeef);
        assert!(format!("{e}").contains("0xdeadbeef"));

        let e = NetError::BadChecksum { layer: "TCP" };
        assert_eq!(format!("{e}"), "TCP checksum mismatch");
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: NetError = io.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn oversized_display_names_both_lengths() {
        let e = NetError::Oversized {
            context: "pcap snaplen",
            len: 4_294_967_295,
            limit: 262_144,
        };
        let text = format!("{e}");
        assert!(text.contains("4294967295"), "{text}");
        assert!(text.contains("262144"), "{text}");
    }

    #[test]
    fn every_variant_maps_to_one_reason() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let cases: Vec<(NetError, IngestReason)> = vec![
            (
                NetError::Truncated {
                    context: "x",
                    needed: 1,
                    available: 0,
                },
                IngestReason::Truncated,
            ),
            (
                NetError::InvalidField {
                    field: "x",
                    value: 0,
                },
                IngestReason::InvalidField,
            ),
            (
                NetError::BadChecksum { layer: "TCP" },
                IngestReason::BadChecksum,
            ),
            (NetError::BadMagic(0), IngestReason::BadMagic),
            (
                NetError::UnsupportedProtocol(1),
                IngestReason::UnsupportedProtocol,
            ),
            (
                NetError::Oversized {
                    context: "x",
                    len: 2,
                    limit: 1,
                },
                IngestReason::Oversized,
            ),
            (NetError::Io(io), IngestReason::Io),
        ];
        for (err, reason) in cases {
            assert_eq!(err.reason(), reason, "{err}");
        }
    }

    #[test]
    fn reason_indexes_match_all_order() {
        for (i, reason) in IngestReason::ALL.into_iter().enumerate() {
            assert_eq!(reason.index(), i);
            assert_eq!(format!("{reason}"), reason.as_str());
            // Labels are valid metric-name fragments.
            assert!(reason
                .as_str()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
