//! Layer-4 protocol identifiers.

use crate::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The transport protocols the substrate models.
///
/// The paper's analyzer "focuses only on TCP and UDP traffic for that these
/// two are the major data transmission protocols used over Internet"
/// (§3.2); the trace contained 29.8% TCP and 70.1% UDP connections with
/// 99.5% of bytes on TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Transmission Control Protocol (IP protocol 6).
    Tcp,
    /// User Datagram Protocol (IP protocol 17).
    Udp,
}

impl Protocol {
    /// The IANA protocol number carried in the IPv4 header.
    pub const fn ip_number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }

    /// Maps an IPv4 protocol number back to a [`Protocol`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnsupportedProtocol`] for anything other than
    /// TCP (6) or UDP (17).
    pub fn from_ip_number(n: u8) -> Result<Self, NetError> {
        match n {
            6 => Ok(Protocol::Tcp),
            17 => Ok(Protocol::Udp),
            other => Err(NetError::UnsupportedProtocol(other)),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_numbers_round_trip() {
        for p in [Protocol::Tcp, Protocol::Udp] {
            assert_eq!(Protocol::from_ip_number(p.ip_number()).unwrap(), p);
        }
    }

    #[test]
    fn unknown_ip_number_is_rejected() {
        assert!(matches!(
            Protocol::from_ip_number(1),
            Err(NetError::UnsupportedProtocol(1))
        ));
    }

    #[test]
    fn display_names() {
        assert_eq!(Protocol::Tcp.to_string(), "TCP");
        assert_eq!(Protocol::Udp.to_string(), "UDP");
    }
}
