//! Trace packet records.

use crate::{FiveTuple, Protocol, TcpFlags, Timestamp};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which way a packet crosses the client-network boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Sent *from* the client network toward the Internet (upload).
    Outbound,
    /// Received *by* the client network from the Internet (download).
    Inbound,
}

impl Direction {
    /// The opposite direction.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::Outbound => Direction::Inbound,
            Direction::Inbound => Direction::Outbound,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Outbound => write!(f, "outbound"),
            Direction::Inbound => write!(f, "inbound"),
        }
    }
}

/// One packet of a trace: timestamp, five-tuple, TCP flags (if TCP), the
/// application payload, and the original on-the-wire length.
///
/// `wire_len` is what throughput accounting uses; it includes all headers
/// (Ethernet + IP + transport), so it can exceed `payload.len()` even for
/// header-only (payload-stripped) traces, exactly like the paper's stage-3
/// traces that keep "the original traffic patterns" while storing only
/// layers 2–4.
///
/// # Examples
///
/// ```
/// use upbound_net::{Packet, FiveTuple, Protocol, TcpFlags, Timestamp};
///
/// let t = FiveTuple::new(
///     Protocol::Tcp,
///     "10.0.0.1:5000".parse()?,
///     "192.0.2.1:80".parse()?,
/// );
/// let syn = Packet::tcp(Timestamp::ZERO, t, TcpFlags::SYN, &[][..]);
/// assert!(syn.is_tcp_syn());
/// assert_eq!(syn.wire_len(), 54); // Ethernet 14 + IPv4 20 + TCP 20
/// # Ok::<(), std::net::AddrParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    ts: Timestamp,
    tuple: FiveTuple,
    tcp_flags: Option<TcpFlags>,
    payload: Bytes,
    wire_len: u32,
}

/// Ethernet II header length.
pub(crate) const ETH_HDR_LEN: usize = 14;
/// Minimal IPv4 header length (no options).
pub(crate) const IPV4_HDR_LEN: usize = 20;
/// Minimal TCP header length (no options).
pub(crate) const TCP_HDR_LEN: usize = 20;
/// UDP header length.
pub(crate) const UDP_HDR_LEN: usize = 8;

impl Packet {
    /// Creates a TCP packet; `wire_len` is computed from the headers plus
    /// the payload length.
    pub fn tcp(
        ts: Timestamp,
        tuple: FiveTuple,
        flags: TcpFlags,
        payload: impl Into<Bytes>,
    ) -> Self {
        debug_assert_eq!(tuple.protocol(), Protocol::Tcp);
        let payload = payload.into();
        let wire_len = (ETH_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN + payload.len()) as u32;
        Self {
            ts,
            tuple,
            tcp_flags: Some(flags),
            payload,
            wire_len,
        }
    }

    /// Creates a UDP packet; `wire_len` is computed from the headers plus
    /// the payload length.
    pub fn udp(ts: Timestamp, tuple: FiveTuple, payload: impl Into<Bytes>) -> Self {
        debug_assert_eq!(tuple.protocol(), Protocol::Udp);
        let payload = payload.into();
        let wire_len = (ETH_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + payload.len()) as u32;
        Self {
            ts,
            tuple,
            tcp_flags: None,
            payload,
            wire_len,
        }
    }

    /// Creates a packet with an explicit wire length, e.g. when decoding a
    /// snaplen-truncated capture whose original length exceeded the
    /// captured bytes.
    pub fn with_wire_len(mut self, wire_len: u32) -> Self {
        self.wire_len = wire_len;
        self
    }

    /// Returns the packet re-stamped at `ts`, e.g. when rebasing or
    /// perturbing trace clocks.
    pub fn with_ts(mut self, ts: Timestamp) -> Self {
        self.ts = ts;
        self
    }

    /// Capture timestamp.
    pub const fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The five-tuple as it appears on the wire (src = sender).
    pub const fn tuple(&self) -> FiveTuple {
        self.tuple
    }

    /// Transport protocol.
    pub const fn protocol(&self) -> Protocol {
        self.tuple.protocol()
    }

    /// TCP flags, `None` for UDP.
    pub const fn tcp_flags(&self) -> Option<TcpFlags> {
        self.tcp_flags
    }

    /// Application payload bytes (possibly empty or stripped).
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Original on-the-wire length in bytes, headers included.
    pub const fn wire_len(&self) -> u32 {
        self.wire_len
    }

    /// On-the-wire length in bits (for Mbps accounting).
    pub const fn wire_bits(&self) -> u64 {
        self.wire_len as u64 * 8
    }

    /// `true` for a connection-opening TCP SYN (SYN without ACK).
    pub fn is_tcp_syn(&self) -> bool {
        self.tcp_flags.is_some_and(TcpFlags::is_initial_syn)
    }

    /// Returns a copy with the payload removed but `wire_len` preserved —
    /// the paper's header-only trace transformation.
    pub fn strip_payload(&self) -> Packet {
        Packet {
            ts: self.ts,
            tuple: self.tuple,
            tcp_flags: self.tcp_flags,
            payload: Bytes::new(),
            wire_len: self.wire_len,
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} len={}", self.ts, self.tuple, self.wire_len)?;
        if let Some(flags) = self.tcp_flags {
            write!(f, " flags={flags}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_tuple() -> FiveTuple {
        FiveTuple::new(
            Protocol::Tcp,
            "10.0.0.1:5000".parse().unwrap(),
            "192.0.2.1:80".parse().unwrap(),
        )
    }

    fn udp_tuple() -> FiveTuple {
        FiveTuple::new(
            Protocol::Udp,
            "10.0.0.1:5000".parse().unwrap(),
            "192.0.2.1:53".parse().unwrap(),
        )
    }

    #[test]
    fn tcp_wire_len_includes_headers() {
        let p = Packet::tcp(Timestamp::ZERO, tcp_tuple(), TcpFlags::ACK, &b"hello"[..]);
        assert_eq!(p.wire_len(), 54 + 5);
        assert_eq!(p.wire_bits(), (54 + 5) * 8);
    }

    #[test]
    fn udp_wire_len_includes_headers() {
        let p = Packet::udp(Timestamp::ZERO, udp_tuple(), &b"q"[..]);
        assert_eq!(p.wire_len(), 14 + 20 + 8 + 1);
        assert_eq!(p.tcp_flags(), None);
    }

    #[test]
    fn syn_detection_requires_no_ack() {
        let syn = Packet::tcp(Timestamp::ZERO, tcp_tuple(), TcpFlags::SYN, &[][..]);
        let synack = Packet::tcp(
            Timestamp::ZERO,
            tcp_tuple(),
            TcpFlags::SYN | TcpFlags::ACK,
            &[][..],
        );
        assert!(syn.is_tcp_syn());
        assert!(!synack.is_tcp_syn());
        let udp = Packet::udp(Timestamp::ZERO, udp_tuple(), &[][..]);
        assert!(!udp.is_tcp_syn());
    }

    #[test]
    fn strip_payload_preserves_wire_len() {
        let p = Packet::tcp(Timestamp::ZERO, tcp_tuple(), TcpFlags::PSH, vec![0u8; 1000]);
        let stripped = p.strip_payload();
        assert!(stripped.payload().is_empty());
        assert_eq!(stripped.wire_len(), p.wire_len());
        assert_eq!(stripped.tuple(), p.tuple());
    }

    #[test]
    fn with_wire_len_overrides() {
        let p =
            Packet::tcp(Timestamp::ZERO, tcp_tuple(), TcpFlags::ACK, &[][..]).with_wire_len(1514);
        assert_eq!(p.wire_len(), 1514);
    }

    #[test]
    fn direction_opposite_flips() {
        assert_eq!(Direction::Inbound.opposite(), Direction::Outbound);
        assert_eq!(Direction::Outbound.opposite(), Direction::Inbound);
        assert_eq!(Direction::Inbound.to_string(), "inbound");
    }

    #[test]
    fn display_contains_flags_for_tcp() {
        let p = Packet::tcp(
            Timestamp::from_secs(1.0),
            tcp_tuple(),
            TcpFlags::SYN,
            &[][..],
        );
        assert!(p.to_string().contains("flags=S"));
    }
}
