//! Unified packet acquisition: the [`PacketSource`] abstraction and its
//! backends.
//!
//! Everything downstream of ingestion — the replay engine, the threaded
//! pipelines, the `upbound serve` dataplane — consumes timestamped,
//! direction-labeled packets in batches. This module is the seam that
//! lets those consumers run unchanged against either of two worlds:
//!
//! * **Deterministic replay** — [`PcapSource`] wraps the recovering
//!   [`PcapReader`] and classifies direction against the client network,
//!   byte-identical to the historical drain-then-replay path (asserted
//!   by differential tests).
//! * **Live capture** — [`LiveSource`] reads raw Ethernet frames from a
//!   Linux `AF_PACKET` socket in `recvmmsg` batches, decodes them with
//!   the same [`wire`](crate::wire) codec the pcap path uses, and folds
//!   kernel-side capture drops into the [`IngestStats`] taxonomy
//!   ([`IngestReason::KernelDrop`](crate::IngestReason)). On other
//!   platforms [`LiveSource::open`] returns a structured
//!   [`LiveCaptureError::Unsupported`] instead of failing to compile.
//!
//! [`BufferedSource`] rounds out the set: an in-memory source used for
//! tests, fault-plan distortion (which needs the whole stream up front),
//! and looped replay under `upbound serve`.

use crate::pcap::{IngestStats, PcapReader};
use crate::wire::ChecksumPolicy;
use crate::{Cidr, Direction, NetError, Packet, TimeDelta, Timestamp};
use std::fmt;
use std::io::Read;

/// What one [`PacketSource::next_batch`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourcePoll {
    /// `n` packets were appended to the output buffer. Live sources may
    /// legitimately report `Batch(0)` when frames arrived but none
    /// decoded; that is progress, not end-of-stream.
    Batch(usize),
    /// No packets are available right now, but more may arrive (live
    /// sources only). Callers should check their stop conditions and
    /// poll again, typically after a short sleep.
    Idle,
    /// The stream is exhausted; no further packets will ever arrive.
    End,
}

/// A stream of timestamped, direction-labeled packets with ingestion
/// accounting — the contract between packet acquisition and everything
/// downstream.
///
/// Implementations must deliver packets in non-decreasing timestamp
/// order (replay order for trace-backed sources, arrival order stamped
/// from a monotonic clock for live sources) and keep [`stats`] current:
/// after [`SourcePoll::End`] the stats must account for every record the
/// source saw, including errors and kernel drops.
///
/// [`stats`]: PacketSource::stats
pub trait PacketSource {
    /// Appends up to `max` packets to `out` and says what happened.
    ///
    /// `out` is not cleared — callers own its lifecycle so they can
    /// accumulate across polls. `max` is a per-call ceiling (typically
    /// the pipeline batch size); implementations may return fewer.
    ///
    /// # Errors
    ///
    /// Returns the first unrecoverable error (I/O failure, or a decode
    /// error under a strict recovery policy). Recoverable decode errors
    /// are counted in [`stats`](PacketSource::stats) instead.
    fn next_batch(
        &mut self,
        out: &mut Vec<(Packet, Direction)>,
        max: usize,
    ) -> Result<SourcePoll, NetError>;

    /// Current ingestion accounting (records decoded, skipped, per-reason
    /// errors, kernel drops).
    fn stats(&self) -> IngestStats;

    /// A short display name ("pcap", "af_packet", …).
    fn name(&self) -> &str;

    /// Whether this source is clocked by the real world. Live sources
    /// return `true`; consumers use this to decide between draining to
    /// end-of-stream and polling with stop conditions.
    fn is_live(&self) -> bool {
        false
    }
}

/// The deterministic replay backend: a [`PcapReader`] plus the client
/// network used to label direction (source address inside → outbound).
///
/// Streaming through `next_batch` yields exactly the packets, order, and
/// [`IngestStats`] of the historical "drain the reader, then replay"
/// path, so replay results are byte-identical whichever way the engine
/// is driven.
#[derive(Debug)]
pub struct PcapSource<R: Read> {
    reader: PcapReader<R>,
    client_net: Cidr,
    done: bool,
}

impl<R: Read> PcapSource<R> {
    /// Wraps an open reader; `client_net` labels packet direction.
    pub fn new(reader: PcapReader<R>, client_net: Cidr) -> Self {
        Self {
            reader,
            client_net,
            done: false,
        }
    }

    /// The client network used for direction labeling.
    pub fn client_net(&self) -> Cidr {
        self.client_net
    }
}

impl<R: Read> PacketSource for PcapSource<R> {
    fn next_batch(
        &mut self,
        out: &mut Vec<(Packet, Direction)>,
        max: usize,
    ) -> Result<SourcePoll, NetError> {
        if self.done {
            return Ok(SourcePoll::End);
        }
        let mut appended = 0;
        while appended < max.max(1) {
            match self.reader.read_packet()? {
                Some(packet) => {
                    let direction = self.client_net.direction_of(&packet.tuple());
                    out.push((packet, direction));
                    appended += 1;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if appended == 0 {
            Ok(SourcePoll::End)
        } else {
            Ok(SourcePoll::Batch(appended))
        }
    }

    fn stats(&self) -> IngestStats {
        *self.reader.stats()
    }

    fn name(&self) -> &str {
        "pcap"
    }
}

/// An in-memory source over pre-labeled packets.
///
/// Three jobs: test harness, carrier for fault-plan-distorted streams
/// (distortion needs the whole stream up front), and looped replay —
/// [`looped`](Self::looped) restamps each pass so trace time keeps
/// advancing monotonically, which is how `upbound serve` turns a finite
/// capture into an indefinite traffic generator.
#[derive(Debug, Clone)]
pub struct BufferedSource {
    packets: Vec<(Packet, Direction)>,
    stats: IngestStats,
    pos: usize,
    cycle: u64,
    looped: bool,
    period: TimeDelta,
}

impl BufferedSource {
    /// Wraps pre-labeled packets. `stats` should carry the ingestion
    /// accounting of wherever the packets came from
    /// ([`IngestStats::default()`] for synthetic streams).
    pub fn new(packets: Vec<(Packet, Direction)>, stats: IngestStats) -> Self {
        let span = match (packets.first(), packets.last()) {
            (Some((first, _)), Some((last, _))) => last.ts().saturating_since(first.ts()),
            _ => TimeDelta::ZERO,
        };
        Self {
            packets,
            stats,
            pos: 0,
            cycle: 0,
            looped: false,
            // One microsecond of guard keeps restamped cycles strictly
            // monotone even for single-packet streams.
            period: TimeDelta::from_micros(span.as_micros() + 1),
        }
    }

    /// Labels `packets` against `client_net` and wraps them.
    pub fn labeled(packets: Vec<Packet>, client_net: Cidr) -> Self {
        let labeled = packets
            .into_iter()
            .map(|p| {
                let d = client_net.direction_of(&p.tuple());
                (p, d)
            })
            .collect();
        Self::new(labeled, IngestStats::default())
    }

    /// Drains `source` to end-of-stream and buffers everything it
    /// produced, carrying over its final [`IngestStats`].
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable source error.
    pub fn drain<S: PacketSource + ?Sized>(source: &mut S) -> Result<Self, NetError> {
        let mut packets = Vec::new();
        loop {
            match source.next_batch(&mut packets, 1024)? {
                SourcePoll::End => break,
                SourcePoll::Batch(_) | SourcePoll::Idle => continue,
            }
        }
        Ok(Self::new(packets, source.stats()))
    }

    /// Replays the buffer in a loop instead of ending: each pass is
    /// restamped one whole trace-span later, so timestamps stay
    /// monotone and rotation/expiry machinery keeps ticking forever.
    pub fn looped(mut self, looped: bool) -> Self {
        self.looped = looped;
        self
    }

    /// Number of buffered packets per cycle.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

impl PacketSource for BufferedSource {
    fn next_batch(
        &mut self,
        out: &mut Vec<(Packet, Direction)>,
        max: usize,
    ) -> Result<SourcePoll, NetError> {
        if self.packets.is_empty() {
            return Ok(SourcePoll::End);
        }
        let mut appended = 0;
        while appended < max.max(1) {
            if self.pos >= self.packets.len() {
                if !self.looped {
                    break;
                }
                self.pos = 0;
                self.cycle += 1;
            }
            let (packet, direction) = &self.packets[self.pos];
            self.pos += 1;
            let shift = self.period.as_micros() * self.cycle;
            let restamped = if shift == 0 {
                packet.clone()
            } else {
                packet
                    .clone()
                    .with_ts(Timestamp::from_micros(packet.ts().as_micros() + shift))
            };
            out.push((restamped, *direction));
            appended += 1;
        }
        if appended == 0 {
            Ok(SourcePoll::End)
        } else {
            Ok(SourcePoll::Batch(appended))
        }
    }

    fn stats(&self) -> IngestStats {
        self.stats
    }

    fn name(&self) -> &str {
        "buffered"
    }
}

/// Why a live capture source could not be opened.
///
/// Structured so callers can branch without string matching: the CLI
/// maps [`Unsupported`](Self::Unsupported) and
/// [`PermissionDenied`](Self::PermissionDenied) to actionable usage
/// messages, and tests use them to skip gracefully where `CAP_NET_RAW`
/// is unavailable.
#[derive(Debug)]
#[non_exhaustive]
pub enum LiveCaptureError {
    /// Live capture requires Linux `AF_PACKET`; this build targets a
    /// platform without it.
    Unsupported {
        /// The compile-time target OS of this build.
        platform: &'static str,
    },
    /// Opening the raw socket was refused — the process lacks
    /// `CAP_NET_RAW` (or root).
    PermissionDenied {
        /// The interface that was being opened.
        interface: String,
    },
    /// The named interface does not exist.
    NoSuchInterface {
        /// The requested interface name.
        interface: String,
    },
    /// Any other socket-layer failure.
    Io(std::io::Error),
}

impl fmt::Display for LiveCaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveCaptureError::Unsupported { platform } => write!(
                f,
                "live capture is unsupported on {platform}: AF_PACKET raw sockets are Linux-only"
            ),
            LiveCaptureError::PermissionDenied { interface } => write!(
                f,
                "opening {interface} for live capture was denied: needs CAP_NET_RAW (or root)"
            ),
            LiveCaptureError::NoSuchInterface { interface } => {
                write!(f, "no such capture interface: {interface}")
            }
            LiveCaptureError::Io(e) => write!(f, "live capture I/O error: {e}"),
        }
    }
}

impl std::error::Error for LiveCaptureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveCaptureError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Configuration of a [`LiveSource`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Interface to capture on (e.g. `"lo"`, `"eth0"`).
    pub interface: String,
    /// Client network for direction labeling (source inside → outbound).
    pub client_net: Cidr,
    /// Checksum handling for decoded frames. Live interfaces commonly
    /// offload checksums (loopback never computes them), so
    /// [`ChecksumPolicy::Ignore`] is the practical default.
    pub checksum: ChecksumPolicy,
}

impl LiveConfig {
    /// A config capturing `interface` with direction classified against
    /// `client_net`, checksums ignored (offload-safe).
    pub fn new(interface: impl Into<String>, client_net: Cidr) -> Self {
        Self {
            interface: interface.into(),
            client_net,
            checksum: ChecksumPolicy::Ignore,
        }
    }
}

#[cfg(target_os = "linux")]
pub use af_packet::LiveSource;

#[cfg(not(target_os = "linux"))]
pub use unsupported::LiveSource;

/// The Linux `AF_PACKET` live backend.
///
/// The raw-socket syscalls live behind a module-scoped
/// `allow(unsafe_code)` — the only unsafe surface in this crate — and
/// everything above the recvmmsg boundary (decoding, direction labeling,
/// accounting) is shared safe code.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod af_packet {
    use super::*;
    use crate::packet::ETH_HDR_LEN;
    use crate::wire;
    use std::time::Instant;

    const AF_PACKET: i32 = 17;
    const SOCK_RAW: i32 = 3;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const ETH_P_ALL: u16 = 0x0003;
    const SOL_PACKET: i32 = 263;
    const PACKET_STATISTICS: i32 = 6;
    const MSG_DONTWAIT: i32 = 0x40;

    /// Frames pulled per `recvmmsg` call.
    const FRAMES_PER_READ: usize = 32;
    /// Per-frame buffer: loopback MTU (64 KiB) plus the Ethernet header.
    const FRAME_CAP: usize = 65_536 + ETH_HDR_LEN;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockaddrLl {
        sll_family: u16,
        sll_protocol: u16,
        sll_ifindex: i32,
        sll_hatype: u16,
        sll_pkttype: u8,
        sll_halen: u8,
        sll_addr: [u8; 8],
    }

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut SockaddrLl,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct TpacketStats {
        packets: u32,
        drops: u32,
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrLl, len: u32) -> i32;
        fn close(fd: i32) -> i32;
        fn getsockopt(fd: i32, level: i32, name: i32, val: *mut TpacketStats, len: *mut u32)
            -> i32;
        fn recvmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn if_nametoindex(name: *const u8) -> u32;
    }

    /// A live `AF_PACKET` capture on one interface.
    ///
    /// Frames are read in `recvmmsg` batches without blocking
    /// (`MSG_DONTWAIT`); an empty queue reports [`SourcePoll::Idle`] so
    /// the caller keeps control of its stop conditions. Each batch is
    /// stamped once from a monotonic clock anchored at
    /// [`open`](Self::open) — the dataplane runs on relative time, like
    /// the replay path. Kernel-side drops (`PACKET_STATISTICS`) are
    /// harvested on every poll and folded into the
    /// [`IngestReason::KernelDrop`](crate::IngestReason) bucket.
    pub struct LiveSource {
        fd: i32,
        interface: String,
        client_net: Cidr,
        checksum: ChecksumPolicy,
        stats: IngestStats,
        epoch: Instant,
        frames: Vec<Vec<u8>>,
    }

    impl fmt::Debug for LiveSource {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("LiveSource")
                .field("interface", &self.interface)
                .field("client_net", &self.client_net)
                .field("stats", &self.stats)
                .finish()
        }
    }

    impl LiveSource {
        /// Opens a raw capture socket bound to `config.interface`.
        ///
        /// # Errors
        ///
        /// * [`LiveCaptureError::NoSuchInterface`] — unknown interface.
        /// * [`LiveCaptureError::PermissionDenied`] — no `CAP_NET_RAW`.
        /// * [`LiveCaptureError::Io`] — any other socket failure.
        pub fn open(config: LiveConfig) -> Result<LiveSource, LiveCaptureError> {
            let mut name = config.interface.clone().into_bytes();
            if name.is_empty() || name.contains(&0) {
                return Err(LiveCaptureError::NoSuchInterface {
                    interface: config.interface,
                });
            }
            name.push(0);
            // SAFETY: `name` is a NUL-terminated byte string that
            // outlives the call.
            let ifindex = unsafe { if_nametoindex(name.as_ptr()) };
            if ifindex == 0 {
                return Err(LiveCaptureError::NoSuchInterface {
                    interface: config.interface,
                });
            }
            // SAFETY: plain socket(2) call; the fd is owned below.
            let fd = unsafe {
                socket(
                    AF_PACKET,
                    SOCK_RAW | SOCK_CLOEXEC,
                    i32::from(ETH_P_ALL.to_be()),
                )
            };
            if fd < 0 {
                let err = std::io::Error::last_os_error();
                return Err(match err.kind() {
                    std::io::ErrorKind::PermissionDenied => LiveCaptureError::PermissionDenied {
                        interface: config.interface,
                    },
                    _ => LiveCaptureError::Io(err),
                });
            }
            let addr = SockaddrLl {
                sll_family: AF_PACKET as u16,
                sll_protocol: ETH_P_ALL.to_be(),
                sll_ifindex: ifindex as i32,
                sll_hatype: 0,
                sll_pkttype: 0,
                sll_halen: 0,
                sll_addr: [0; 8],
            };
            // SAFETY: `addr` is a properly initialized sockaddr_ll and
            // the length matches its size.
            let rc = unsafe { bind(fd, &addr, std::mem::size_of::<SockaddrLl>() as u32) };
            if rc != 0 {
                let err = std::io::Error::last_os_error();
                // SAFETY: fd came from socket(2) above and is not used
                // after this close.
                unsafe { close(fd) };
                return Err(LiveCaptureError::Io(err));
            }
            Ok(LiveSource {
                fd,
                interface: config.interface,
                client_net: config.client_net,
                checksum: config.checksum,
                stats: IngestStats::default(),
                epoch: Instant::now(),
                frames: (0..FRAMES_PER_READ).map(|_| vec![0u8; FRAME_CAP]).collect(),
            })
        }

        /// The interface this source captures on.
        pub fn interface(&self) -> &str {
            &self.interface
        }

        /// Reads `PACKET_STATISTICS` (which the kernel resets on read)
        /// and folds any drops into the stats taxonomy.
        fn harvest_kernel_drops(&mut self) {
            let mut raw = TpacketStats::default();
            let mut len = std::mem::size_of::<TpacketStats>() as u32;
            // SAFETY: `raw`/`len` are valid out-pointers sized for
            // PACKET_STATISTICS.
            let rc =
                unsafe { getsockopt(self.fd, SOL_PACKET, PACKET_STATISTICS, &mut raw, &mut len) };
            if rc == 0 && raw.drops > 0 {
                self.stats.record_kernel_drops(u64::from(raw.drops));
            }
        }
    }

    impl Drop for LiveSource {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this struct and closed exactly once.
            unsafe { close(self.fd) };
        }
    }

    impl PacketSource for LiveSource {
        fn next_batch(
            &mut self,
            out: &mut Vec<(Packet, Direction)>,
            max: usize,
        ) -> Result<SourcePoll, NetError> {
            let want = max.clamp(1, FRAMES_PER_READ);
            let mut iovecs: Vec<IoVec> = self
                .frames
                .iter_mut()
                .take(want)
                .map(|buf| IoVec {
                    base: buf.as_mut_ptr(),
                    len: buf.len(),
                })
                .collect();
            let mut msgs: Vec<MMsgHdr> = iovecs
                .iter_mut()
                .map(|iov| MMsgHdr {
                    hdr: MsgHdr {
                        name: std::ptr::null_mut(),
                        namelen: 0,
                        iov,
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            // SAFETY: every msg header points at one live iovec backed by
            // an owned frame buffer; vlen matches the array length.
            let n = unsafe {
                recvmmsg(
                    self.fd,
                    msgs.as_mut_ptr(),
                    msgs.len() as u32,
                    MSG_DONTWAIT,
                    std::ptr::null_mut(),
                )
            };
            self.harvest_kernel_drops();
            if n < 0 {
                let err = std::io::Error::last_os_error();
                return match err.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted => {
                        Ok(SourcePoll::Idle)
                    }
                    _ => Err(NetError::Io(err)),
                };
            }
            if n == 0 {
                return Ok(SourcePoll::Idle);
            }
            // One clock read per batch: frames share an arrival stamp,
            // which keeps timestamps monotone and the hot path cheap.
            let elapsed = self.epoch.elapsed();
            let ts = Timestamp::from_micros(elapsed.as_micros().min(u64::MAX as u128) as u64);
            let mut appended = 0;
            for (i, msg) in msgs.iter().enumerate().take(n as usize) {
                let len = (msg.len as usize).min(FRAME_CAP);
                let frame = &self.frames[i][..len];
                match wire::decode(frame, ts, len as u32, self.checksum) {
                    Ok(packet) => {
                        let direction = self.client_net.direction_of(&packet.tuple());
                        out.push((packet, direction));
                        self.stats.records_ok += 1;
                        appended += 1;
                    }
                    Err(e) => {
                        self.stats.record_error(e.reason());
                        self.stats.records_skipped += 1;
                        self.stats.bytes_skipped += len as u64;
                    }
                }
            }
            Ok(SourcePoll::Batch(appended))
        }

        fn stats(&self) -> IngestStats {
            self.stats
        }

        fn name(&self) -> &str {
            "af_packet"
        }

        fn is_live(&self) -> bool {
            true
        }
    }
}

/// The stub that stands in for [`LiveSource`] on platforms without
/// `AF_PACKET`: opening always fails with the structured
/// [`LiveCaptureError::Unsupported`], and the type still implements
/// [`PacketSource`] so downstream signatures stay portable.
#[cfg(not(target_os = "linux"))]
mod unsupported {
    use super::*;

    /// Placeholder live source on non-Linux targets. Cannot be
    /// constructed: [`open`](Self::open) always returns
    /// [`LiveCaptureError::Unsupported`].
    #[derive(Debug)]
    pub struct LiveSource {
        never: std::convert::Infallible,
    }

    impl LiveSource {
        /// Always fails: live capture needs Linux `AF_PACKET`.
        ///
        /// # Errors
        ///
        /// [`LiveCaptureError::Unsupported`], always.
        pub fn open(_config: LiveConfig) -> Result<LiveSource, LiveCaptureError> {
            Err(LiveCaptureError::Unsupported {
                platform: std::env::consts::OS,
            })
        }

        /// The interface this source captures on (uninhabited).
        pub fn interface(&self) -> &str {
            match self.never {}
        }
    }

    impl PacketSource for LiveSource {
        fn next_batch(
            &mut self,
            _out: &mut Vec<(Packet, Direction)>,
            _max: usize,
        ) -> Result<SourcePoll, NetError> {
            match self.never {}
        }

        fn stats(&self) -> IngestStats {
            match self.never {}
        }

        fn name(&self) -> &str {
            match self.never {}
        }

        fn is_live(&self) -> bool {
            match self.never {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap;
    use crate::{FiveTuple, Protocol, TcpFlags};

    fn packet(secs: f64, src: &str, dst: &str) -> Packet {
        Packet::tcp(
            Timestamp::from_secs(secs),
            FiveTuple::new(Protocol::Tcp, src.parse().unwrap(), dst.parse().unwrap()),
            TcpFlags::SYN,
            vec![0u8; 16],
        )
    }

    fn sample_packets() -> Vec<Packet> {
        (0..10)
            .map(|i| {
                packet(
                    i as f64,
                    &format!("10.0.0.{}:4000", i + 1),
                    "198.51.100.9:6881",
                )
            })
            .collect()
    }

    #[test]
    fn pcap_source_streams_and_labels_everything() {
        let packets = sample_packets();
        let bytes = pcap::to_bytes(packets.iter(), 65535).unwrap();
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let mut source = PcapSource::new(PcapReader::new(&bytes[..]).unwrap(), net);
        assert!(!source.is_live());

        let mut out = Vec::new();
        loop {
            match source.next_batch(&mut out, 3).unwrap() {
                SourcePoll::End => break,
                SourcePoll::Batch(n) => assert!((1..=3).contains(&n)),
                SourcePoll::Idle => panic!("pcap sources never idle"),
            }
        }
        assert_eq!(out.len(), packets.len());
        assert!(out.iter().all(|(_, d)| *d == Direction::Outbound));
        assert_eq!(source.stats().records_ok, packets.len() as u64);
        // Terminal polls stay End.
        assert_eq!(source.next_batch(&mut out, 3).unwrap(), SourcePoll::End);
    }

    #[test]
    fn buffered_source_drains_a_pcap_source_identically() {
        let packets = sample_packets();
        let bytes = pcap::to_bytes(packets.iter(), 65535).unwrap();
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let mut pcap_source = PcapSource::new(PcapReader::new(&bytes[..]).unwrap(), net);
        let mut buffered = BufferedSource::drain(&mut pcap_source).unwrap();
        assert_eq!(buffered.len(), packets.len());
        assert_eq!(buffered.stats(), pcap_source.stats());

        let mut out = Vec::new();
        assert_eq!(
            buffered.next_batch(&mut out, usize::MAX).unwrap(),
            SourcePoll::Batch(packets.len())
        );
        assert_eq!(buffered.next_batch(&mut out, 8).unwrap(), SourcePoll::End);
    }

    #[test]
    fn looped_source_restamps_monotonically() {
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let mut source = BufferedSource::labeled(sample_packets(), net).looped(true);
        let mut out = Vec::new();
        // Pull three full cycles worth.
        while out.len() < 30 {
            match source.next_batch(&mut out, 7).unwrap() {
                SourcePoll::Batch(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut last = Timestamp::ZERO;
        for (p, _) in &out {
            assert!(p.ts() >= last, "timestamps must stay monotone");
            last = p.ts();
        }
        // Cycle 2's first packet is one whole span later than cycle 1's.
        assert!(out[10].0.ts() > out[9].0.ts());
    }

    #[test]
    fn live_source_on_missing_interface_is_structured() {
        let net: Cidr = "10.0.0.0/16".parse().unwrap();
        let err = match LiveSource::open(LiveConfig::new("upbound-definitely-not-a-nic0", net)) {
            Ok(_) => panic!("open of a nonexistent interface must fail"),
            Err(err) => err,
        };
        match err {
            LiveCaptureError::NoSuchInterface { interface } => {
                assert_eq!(interface, "upbound-definitely-not-a-nic0");
            }
            // Without CAP_NET_RAW some kernels report the permission
            // failure first; on non-Linux the platform gate fires first.
            LiveCaptureError::PermissionDenied { .. } | LiveCaptureError::Unsupported { .. } => {}
            LiveCaptureError::Io(e) => panic!("unexpected io error: {e}"),
        }
    }

    #[test]
    fn empty_buffered_source_ends_immediately() {
        let mut source = BufferedSource::new(Vec::new(), IngestStats::default());
        let mut out = Vec::new();
        assert_eq!(source.next_batch(&mut out, 4).unwrap(), SourcePoll::End);
        assert!(source.is_empty());
    }
}
