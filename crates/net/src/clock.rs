//! Simulated microsecond clock.
//!
//! Packet traces (and the pcap file format) carry timestamps with
//! microsecond resolution. [`Timestamp`] is an absolute instant measured
//! from the trace epoch; [`TimeDelta`] is a non-negative span between two
//! instants. Both are integer microseconds under the hood so trace replay
//! is exact and deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
pub(crate) const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulated trace clock, in integer
/// microseconds since the trace epoch.
///
/// # Examples
///
/// ```
/// use upbound_net::{Timestamp, TimeDelta};
///
/// let t = Timestamp::from_secs(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t + TimeDelta::from_secs(0.5), Timestamp::from_secs(2.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace epoch (time zero).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from integer microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from (possibly fractional) seconds since the
    /// epoch, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "timestamp must be >= 0");
        Timestamp((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Splits into whole seconds and leftover microseconds, as stored in a
    /// pcap record header.
    pub const fn to_sec_usec(self) -> (u32, u32) {
        (
            (self.0 / MICROS_PER_SEC) as u32,
            (self.0 % MICROS_PER_SEC) as u32,
        )
    }

    /// Rebuilds a timestamp from pcap-style seconds + microseconds fields.
    pub const fn from_sec_usec(sec: u32, usec: u32) -> Self {
        Timestamp(sec as u64 * MICROS_PER_SEC + usec as u64)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Timestamp::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        debug_assert!(self.0 >= rhs.0, "timestamp subtraction went negative");
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

/// A non-negative span of simulated time, in integer microseconds.
///
/// # Examples
///
/// ```
/// use upbound_net::TimeDelta;
///
/// let d = TimeDelta::from_secs(2.5);
/// assert_eq!(d.as_micros(), 2_500_000);
/// assert!(d > TimeDelta::from_millis(2400));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros)
    }

    /// Creates a span from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis * 1_000)
    }

    /// Creates a span from (possibly fractional) seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "delta must be >= 0");
        TimeDelta((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The span in integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Multiplies the span by an integer factor.
    pub const fn times(self, n: u64) -> TimeDelta {
        TimeDelta(self.0 * n)
    }

    /// `true` for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;

    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = Timestamp::from_secs(12.345678);
        assert_eq!(t.as_micros(), 12_345_678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_works() {
        let t0 = Timestamp::from_secs(1.0);
        let t1 = t0 + TimeDelta::from_secs(2.0);
        assert_eq!(t1, Timestamp::from_secs(3.0));
        assert_eq!(t1 - t0, TimeDelta::from_secs(2.0));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Timestamp::from_secs(1.0);
        let late = Timestamp::from_secs(5.0);
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
        assert_eq!(late.saturating_since(early), TimeDelta::from_secs(4.0));
    }

    #[test]
    fn sec_usec_round_trip() {
        let t = Timestamp::from_micros(7_000_123);
        let (s, us) = t.to_sec_usec();
        assert_eq!((s, us), (7, 123));
        assert_eq!(Timestamp::from_sec_usec(s, us), t);
    }

    #[test]
    fn delta_constructors_agree() {
        assert_eq!(TimeDelta::from_millis(1500), TimeDelta::from_secs(1.5));
        assert_eq!(TimeDelta::from_micros(250), TimeDelta::from_secs(0.00025));
    }

    #[test]
    fn delta_times_scales() {
        assert_eq!(
            TimeDelta::from_secs(5.0).times(4),
            TimeDelta::from_secs(20.0)
        );
        assert!(TimeDelta::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "timestamp must be >= 0")]
    fn negative_timestamp_panics() {
        let _ = Timestamp::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Timestamp::from_secs(1.0) < Timestamp::from_secs(2.0));
        let mut add = Timestamp::from_secs(1.0);
        add += TimeDelta::from_secs(1.5);
        assert_eq!(add, Timestamp::from_secs(2.5));
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(format!("{}", Timestamp::from_secs(1.5)), "1.500000s");
        assert_eq!(format!("{}", TimeDelta::from_millis(250)), "0.250000s");
    }
}
