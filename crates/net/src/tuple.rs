//! Five-tuple socket pairs and the hash keys derived from them.

use crate::Protocol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::SocketAddrV4;

/// A five-tuple socket pair: `{protocol, src addr, src port, dst addr,
/// dst port}`, written `{TCP, A, x, B, y}` in the paper (§3.2).
///
/// Packets of one connection flow in both directions, so a connection is
/// identified equally by a tuple `s` and by its inverse `s̄`; see
/// [`FiveTuple::inverse`] and [`FiveTuple::canonical`].
///
/// # Examples
///
/// ```
/// use upbound_net::{FiveTuple, Protocol};
///
/// let t = FiveTuple::new(
///     Protocol::Tcp,
///     "10.0.0.1:1234".parse()?,
///     "192.0.2.8:80".parse()?,
/// );
/// let back = t.inverse();
/// assert_eq!(back.src(), t.dst());
/// assert_eq!(t.canonical(), back.canonical());
/// # Ok::<(), std::net::AddrParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    protocol: Protocol,
    src: SocketAddrV4,
    dst: SocketAddrV4,
}

impl FiveTuple {
    /// Creates a five-tuple from a protocol, source, and destination.
    pub const fn new(protocol: Protocol, src: SocketAddrV4, dst: SocketAddrV4) -> Self {
        Self { protocol, src, dst }
    }

    /// The transport protocol.
    pub const fn protocol(self) -> Protocol {
        self.protocol
    }

    /// Source endpoint (address and port).
    pub const fn src(self) -> SocketAddrV4 {
        self.src
    }

    /// Destination endpoint (address and port).
    pub const fn dst(self) -> SocketAddrV4 {
        self.dst
    }

    /// The inverse socket pair `s̄`: source and destination swapped.
    ///
    /// An inbound packet of a connection carries the inverse of the tuple
    /// its outbound packets carry.
    pub const fn inverse(self) -> FiveTuple {
        FiveTuple {
            protocol: self.protocol,
            src: self.dst,
            dst: self.src,
        }
    }

    /// A direction-independent form: the lexicographically smaller of
    /// `self` and `self.inverse()`.
    ///
    /// Both directions of one connection share the same canonical tuple,
    /// which is what the analyzer keys its connection table on.
    pub fn canonical(self) -> FiveTuple {
        let inv = self.inverse();
        if (
            self.src.ip().octets(),
            self.src.port(),
            self.dst.ip().octets(),
            self.dst.port(),
        ) <= (
            inv.src.ip().octets(),
            inv.src.port(),
            inv.dst.ip().octets(),
            inv.dst.port(),
        ) {
            self
        } else {
            inv
        }
    }

    /// The key the bitmap filter hashes when this tuple appears on an
    /// **outbound** packet.
    ///
    /// With `hole_punching` enabled the remote (destination) port is
    /// omitted — `{protocol, src addr, src port, dst addr}` per §4.2 — so
    /// that a NAT hole punched toward a host admits that host's inbound
    /// connection from any source port.
    pub fn outbound_key(self, hole_punching: bool) -> FilterKey {
        FilterKey {
            protocol: self.protocol,
            client: self.src,
            remote_addr: *self.dst.ip(),
            remote_port: if hole_punching {
                None
            } else {
                Some(self.dst.port())
            },
        }
    }

    /// The key the bitmap filter hashes when this tuple appears on an
    /// **inbound** packet; equals the [`outbound_key`](Self::outbound_key)
    /// of the connection's outbound direction.
    ///
    /// For an inbound tuple the client is the destination, so the key is
    /// `{protocol, dst addr, dst port, src addr}` (plus the source port
    /// when hole punching is disabled).
    pub fn inbound_key(self, hole_punching: bool) -> FilterKey {
        self.inverse().outbound_key(hole_punching)
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{} {} -> {}}}", self.protocol, self.src, self.dst)
    }
}

/// The bytes the bitmap filter actually hashes for one packet.
///
/// `client` is always the inside endpoint's address+port and `remote_*`
/// the outside endpoint, so an outbound packet and the matching inbound
/// packet of the same connection produce **identical** keys — the property
/// that lets the filter recognize responses. The remote port is `None`
/// when hole-punching support is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FilterKey {
    protocol: Protocol,
    client: SocketAddrV4,
    remote_addr: std::net::Ipv4Addr,
    remote_port: Option<u16>,
}

impl FilterKey {
    /// Serializes the key to a fixed 14-byte buffer for hashing.
    ///
    /// Layout: protocol (1) | client addr (4) | client port (2) |
    /// remote addr (4) | remote port (2) | port-present flag (1). The
    /// trailing flag byte keeps the hole-punching encoding disjoint from
    /// every full-tuple encoding, so the two modes can never collide.
    pub fn to_bytes(self) -> [u8; 14] {
        let mut out = [0u8; 14];
        out[0] = self.protocol.ip_number();
        out[1..5].copy_from_slice(&self.client.ip().octets());
        out[5..7].copy_from_slice(&self.client.port().to_be_bytes());
        out[7..11].copy_from_slice(&self.remote_addr.octets());
        match self.remote_port {
            Some(p) => {
                out[11..13].copy_from_slice(&p.to_be_bytes());
                out[13] = 1;
            }
            None => {
                out[13] = 0;
            }
        }
        out
    }

    /// The client (inside) endpoint.
    pub const fn client(self) -> SocketAddrV4 {
        self.client
    }

    /// The remote (outside) address.
    pub const fn remote_addr(self) -> std::net::Ipv4Addr {
        self.remote_addr
    }

    /// The remote port, absent when hole punching is enabled.
    pub const fn remote_port(self) -> Option<u16> {
        self.remote_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src: &str, dst: &str) -> FiveTuple {
        FiveTuple::new(Protocol::Tcp, src.parse().unwrap(), dst.parse().unwrap())
    }

    #[test]
    fn inverse_is_involution() {
        let t = tuple("10.0.0.1:1234", "192.0.2.8:80");
        assert_eq!(t.inverse().inverse(), t);
        assert_ne!(t.inverse(), t);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let t = tuple("10.0.0.1:1234", "192.0.2.8:80");
        assert_eq!(t.canonical(), t.inverse().canonical());
        // Canonical of a canonical tuple is itself.
        assert_eq!(t.canonical().canonical(), t.canonical());
    }

    #[test]
    fn canonical_differs_for_distinct_connections() {
        let a = tuple("10.0.0.1:1234", "192.0.2.8:80");
        let b = tuple("10.0.0.1:1235", "192.0.2.8:80");
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn outbound_and_inbound_keys_match_for_one_connection() {
        let out = tuple("10.0.0.1:1234", "192.0.2.8:80");
        let inbound = out.inverse();
        for hole in [false, true] {
            assert_eq!(out.outbound_key(hole), inbound.inbound_key(hole));
        }
    }

    #[test]
    fn hole_punching_ignores_remote_port_only() {
        let a = tuple("10.0.0.1:1234", "192.0.2.8:80");
        let b = tuple("10.0.0.1:1234", "192.0.2.8:8080");
        assert_eq!(a.outbound_key(true), b.outbound_key(true));
        assert_ne!(a.outbound_key(false), b.outbound_key(false));
        // Client port still matters under hole punching.
        let c = tuple("10.0.0.1:999", "192.0.2.8:80");
        assert_ne!(a.outbound_key(true), c.outbound_key(true));
    }

    #[test]
    fn key_bytes_distinguish_hole_punching_mode() {
        let t = tuple("10.0.0.1:1234", "192.0.2.8:80");
        assert_ne!(
            t.outbound_key(false).to_bytes(),
            t.outbound_key(true).to_bytes()
        );
    }

    #[test]
    fn key_bytes_are_stable_and_injective_on_fields() {
        let t = tuple("10.0.0.1:1234", "192.0.2.8:80");
        let u = FiveTuple::new(
            Protocol::Udp,
            "10.0.0.1:1234".parse().unwrap(),
            "192.0.2.8:80".parse().unwrap(),
        );
        assert_ne!(
            t.outbound_key(false).to_bytes(),
            u.outbound_key(false).to_bytes()
        );
        assert_eq!(
            t.outbound_key(false).to_bytes(),
            t.outbound_key(false).to_bytes()
        );
    }

    #[test]
    fn display_contains_endpoints() {
        let t = tuple("10.0.0.1:1234", "192.0.2.8:80");
        let s = t.to_string();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(s.contains("192.0.2.8:80"));
        assert!(s.contains("TCP"));
    }

    #[test]
    fn key_accessors_expose_fields() {
        let t = tuple("10.0.0.1:1234", "192.0.2.8:80");
        let k = t.outbound_key(false);
        assert_eq!(k.client(), "10.0.0.1:1234".parse().unwrap());
        assert_eq!(
            k.remote_addr(),
            "192.0.2.8".parse::<std::net::Ipv4Addr>().unwrap()
        );
        assert_eq!(k.remote_port(), Some(80));
        assert_eq!(t.outbound_key(true).remote_port(), None);
    }
}
