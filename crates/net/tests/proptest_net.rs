//! Property tests on the packet substrate: codec round-trips, fuzz
//! robustness, and structural invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use upbound_net::pcap;
use upbound_net::{wire, Cidr, FiveTuple, Packet, Protocol, TcpFlags, TimeDelta, Timestamp};

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<bool>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
    )
        .prop_map(|(tcp, sip, sp, dip, dp)| {
            FiveTuple::new(
                if tcp { Protocol::Tcp } else { Protocol::Udp },
                std::net::SocketAddrV4::new(sip.into(), sp),
                std::net::SocketAddrV4::new(dip.into(), dp),
            )
        })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_tuple(),
        0u64..100_000_000,
        proptest::collection::vec(any::<u8>(), 0..1400),
        any::<u8>(),
    )
        .prop_map(|(tuple, us, payload, flags)| match tuple.protocol() {
            Protocol::Tcp => Packet::tcp(
                Timestamp::from_micros(us),
                tuple,
                TcpFlags::from_bits(flags),
                payload,
            ),
            Protocol::Udp => Packet::udp(Timestamp::from_micros(us), tuple, payload),
        })
}

proptest! {
    /// Decoding arbitrary bytes never panics — it returns a packet or a
    /// structured error, under both checksum policies.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        for policy in [wire::ChecksumPolicy::Verify, wire::ChecksumPolicy::Ignore] {
            let _ = wire::decode(&bytes, Timestamp::ZERO, bytes.len() as u32, policy);
        }
    }

    /// Reading arbitrary bytes as a pcap file never panics.
    #[test]
    fn pcap_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcap::from_bytes(&bytes);
    }

    /// Every prefix truncation of a valid capture yields a clean error or
    /// a prefix of the original packets — never garbage.
    #[test]
    fn pcap_truncation_is_safe(pkts in proptest::collection::vec(arb_packet(), 1..5), cut_frac in 0.0f64..1.0) {
        let bytes = pcap::to_bytes(&pkts, 65_535).expect("write");
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        if let Ok(read) = pcap::from_bytes(&bytes[..cut]) {
            prop_assert!(read.len() <= pkts.len());
            prop_assert_eq!(&pkts[..read.len()], &read[..]);
        } // a clean error is equally fine
    }

    /// A reader can always recover every full record before a truncation
    /// point using read_packet until the error.
    #[test]
    fn pcap_streaming_recovers_prefix(pkts in proptest::collection::vec(arb_packet(), 1..6)) {
        let bytes = pcap::to_bytes(&pkts, 65_535).expect("write");
        // Cut inside the last record body.
        let cut = bytes.len() - 1;
        if let Ok(mut reader) = pcap::PcapReader::new(&bytes[..cut]) {
            let mut recovered = Vec::new();
            while let Ok(Some(p)) = reader.read_packet() {
                recovered.push(p);
            }
            prop_assert_eq!(recovered.len(), pkts.len() - 1);
            prop_assert_eq!(&recovered[..], &pkts[..pkts.len() - 1]);
        }
    }

    /// Snaplen truncation preserves tuples, flags, timestamps, and
    /// original lengths for every generated packet.
    #[test]
    fn snaplen_preserves_metadata(pkts in proptest::collection::vec(arb_packet(), 1..5)) {
        let bytes = pcap::to_bytes(&pkts, pcap::HEADER_SNAPLEN).expect("write");
        let read = pcap::from_bytes(&bytes).expect("read");
        prop_assert_eq!(read.len(), pkts.len());
        for (orig, got) in pkts.iter().zip(&read) {
            prop_assert_eq!(got.tuple(), orig.tuple());
            prop_assert_eq!(got.ts(), orig.ts());
            prop_assert_eq!(got.tcp_flags(), orig.tcp_flags());
            prop_assert_eq!(got.wire_len(), orig.wire_len());
        }
    }

    /// The Internet checksum of any frame we encode verifies to zero over
    /// the IPv4 header.
    #[test]
    fn encoded_ip_header_checksums_verify(p in arb_packet()) {
        let frame = wire::encode(&p);
        prop_assert_eq!(wire::internet_checksum(&frame[14..34]), 0);
    }

    /// Direction classification is a partition: every tuple is exactly
    /// one of inbound/outbound relative to any prefix, and flipping the
    /// tuple flips the direction iff exactly one endpoint is inside.
    #[test]
    fn direction_partition(t in arb_tuple(), base in any::<u32>(), len in 0u8..=32) {
        let cidr = Cidr::new(base.into(), len).expect("valid prefix");
        let fwd = cidr.direction_of(&t);
        let rev = cidr.direction_of(&t.inverse());
        let src_in = cidr.contains(*t.src().ip());
        let dst_in = cidr.contains(*t.dst().ip());
        if src_in != dst_in {
            prop_assert_ne!(fwd, rev);
        }
        if src_in && dst_in {
            // Both inside: both directions classify as outbound.
            prop_assert_eq!(fwd, rev);
        }
    }

    /// Timestamp arithmetic: (a + d) − a == d and ordering is preserved.
    #[test]
    fn timestamp_arithmetic(a in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
        let t = Timestamp::from_micros(a);
        let delta = TimeDelta::from_micros(d);
        prop_assert_eq!((t + delta) - t, delta);
        prop_assert!(t + delta >= t);
        prop_assert_eq!(t.saturating_since(t + delta), TimeDelta::ZERO);
    }

    /// Sec/usec split (the pcap record format) round-trips.
    #[test]
    fn sec_usec_round_trip(us in 0u64..4_000_000_000_000) {
        let t = Timestamp::from_micros(us);
        let (s, u) = t.to_sec_usec();
        prop_assert!(u < 1_000_000);
        prop_assert_eq!(Timestamp::from_sec_usec(s, u), t);
    }
}

/// Byte-swaps a little-endian capture into its big-endian twin: the
/// global-header and record-header fields are reversed in place, frame
/// bytes (network order already) are untouched.
fn swap_capture(le: &[u8]) -> Vec<u8> {
    let mut out = le.to_vec();
    out[0..4].reverse(); // magic
    out[4..6].reverse(); // version major
    out[6..8].reverse(); // version minor
    for field in [8usize, 12, 16, 20] {
        out[field..field + 4].reverse();
    }
    let mut off = 24;
    while off + 16 <= le.len() {
        let incl = u32::from_le_bytes(le[off + 8..off + 12].try_into().expect("4 bytes")) as usize;
        for field in 0..4 {
            out[off + field * 4..off + (field + 1) * 4].reverse();
        }
        off += 16 + incl;
    }
    out
}

/// Per-record `(offset, total_len)` of a little-endian capture.
fn record_layout(le: &[u8]) -> Vec<(usize, usize)> {
    let mut layout = Vec::new();
    let mut off = 24;
    while off + 16 <= le.len() {
        let incl = u32::from_le_bytes(le[off + 8..off + 12].try_into().expect("4 bytes")) as usize;
        layout.push((off, 16 + incl));
        off += 16 + incl;
    }
    layout
}

/// What a strict read of the first `cut` bytes must produce: either a
/// clean EOF after `n` records, or an exact truncation error after `n`
/// complete records.
enum ExpectedCut {
    Clean(usize),
    Error {
        complete: usize,
        context: &'static str,
        needed: usize,
        available: usize,
    },
}

fn expected_at_cut(le: &[u8], cut: usize) -> ExpectedCut {
    if cut < 24 {
        return ExpectedCut::Error {
            complete: 0,
            context: "pcap global header",
            needed: 24,
            available: cut,
        };
    }
    let mut off = 24;
    let mut complete = 0;
    loop {
        if off == cut {
            return ExpectedCut::Clean(complete);
        }
        if cut - off < 16 {
            return ExpectedCut::Error {
                complete,
                context: "pcap record header",
                needed: 16,
                available: cut - off,
            };
        }
        let incl = u32::from_le_bytes(le[off + 8..off + 12].try_into().expect("4 bytes")) as usize;
        if cut - off < 16 + incl {
            return ExpectedCut::Error {
                complete,
                context: "pcap record body",
                needed: incl,
                available: cut - off - 16,
            };
        }
        off += 16 + incl;
        complete += 1;
    }
}

/// Strict read to the first error: decodable prefix plus the error.
fn strict_prefix(bytes: &[u8]) -> (Vec<Packet>, Option<upbound_net::NetError>) {
    let mut reader = match pcap::PcapReader::new(bytes) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), Some(e)),
    };
    let mut out = Vec::new();
    loop {
        match reader.read_packet() {
            Ok(Some(p)) => out.push(p),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

proptest! {
    /// Truncating a valid capture at ANY offset — in either byte order —
    /// makes the strict reader decode exactly the complete records and
    /// then report a `Truncated` error whose context, `needed`, and
    /// `available` fields are byte-accurate.
    #[test]
    fn truncation_reports_exact_error_fields(
        pkts in proptest::collection::vec(arb_packet(), 1..5),
        cut_frac in 0.0f64..1.0,
        swapped in any::<bool>(),
    ) {
        let le = pcap::to_bytes(&pkts, 65_535).expect("write");
        let cut = (le.len() as f64 * cut_frac) as usize;
        let bytes = if swapped { swap_capture(&le) } else { le.clone() };
        let (prefix, err) = strict_prefix(&bytes[..cut]);
        match expected_at_cut(&le, cut) {
            ExpectedCut::Clean(n) => {
                prop_assert!(err.is_none(), "clean cut errored: {err:?}");
                prop_assert_eq!(prefix.len(), n);
                prop_assert_eq!(&prefix[..], &pkts[..n]);
            }
            ExpectedCut::Error { complete, context, needed, available } => {
                prop_assert_eq!(prefix.len(), complete);
                prop_assert_eq!(&prefix[..], &pkts[..complete]);
                match err {
                    Some(upbound_net::NetError::Truncated {
                        context: c,
                        needed: n,
                        available: a,
                    }) => {
                        prop_assert_eq!(c, context);
                        prop_assert_eq!(n, needed);
                        prop_assert_eq!(a, available);
                    }
                    other => prop_assert!(false, "expected Truncated, got {other:?}"),
                }
            }
        }
    }

    /// Flipping one bit anywhere — in either byte order — never panics
    /// either reader, and the recovering reader's output always begins
    /// with the strict reader's decodable prefix.
    #[test]
    fn bit_flip_differential_holds(
        pkts in proptest::collection::vec(arb_packet(), 1..5),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
        swapped in any::<bool>(),
    ) {
        let le = pcap::to_bytes(&pkts, 65_535).expect("write");
        let mut bytes = if swapped { swap_capture(&le) } else { le };
        let i = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[i] ^= 1 << bit;

        let (prefix, strict_err) = strict_prefix(&bytes);
        match pcap::from_bytes_recovering(&bytes) {
            Err(_) => {
                // Only an unusable global header stops recovery, and then
                // strict reading failed before producing anything too.
                prop_assert!(prefix.is_empty() && strict_err.is_some());
            }
            Ok((recovered, stats)) => {
                prop_assert_eq!(stats.records_ok, recovered.len() as u64);
                prop_assert!(recovered.len() >= prefix.len());
                prop_assert_eq!(&recovered[..prefix.len()], &prefix[..]);
                if strict_err.is_none() {
                    prop_assert_eq!(recovered.len(), prefix.len());
                    prop_assert_eq!(stats.records_skipped, 0);
                    prop_assert_eq!(stats.bytes_skipped, 0);
                }
            }
        }
    }

    /// Corrupting one record's body (header framing intact) makes the
    /// recovering reader yield exactly the other records — the decodable
    /// prefix AND suffix — while accounting for the one discarded region.
    #[test]
    fn recovering_reader_drops_exactly_the_corrupt_record(
        pkts in proptest::collection::vec(arb_packet(), 2..6),
        which_frac in 0.0f64..1.0,
    ) {
        let mut bytes = pcap::to_bytes(&pkts, 65_535).expect("write");
        let layout = record_layout(&bytes);
        let r = ((layout.len() - 1) as f64 * which_frac) as usize;
        let (off, total) = layout[r];
        // An impossible ethertype: the record header stays trusted, the
        // body can no longer decode.
        bytes[off + 16 + 12] = 0xFF;
        bytes[off + 16 + 13] = 0xFF;

        let (recovered, stats) = pcap::from_bytes_recovering(&bytes).expect("header intact");
        let mut expected = pkts.clone();
        expected.remove(r);
        prop_assert_eq!(recovered, expected);
        prop_assert_eq!(stats.records_skipped, 1);
        prop_assert_eq!(stats.bytes_skipped, total as u64);
        prop_assert_eq!(stats.errors_total(), 1);
    }
}
