//! Property tests on the packet substrate: codec round-trips, fuzz
//! robustness, and structural invariants.

use proptest::prelude::*;
use upbound_net::pcap;
use upbound_net::{wire, Cidr, FiveTuple, Packet, Protocol, TcpFlags, TimeDelta, Timestamp};

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<bool>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
    )
        .prop_map(|(tcp, sip, sp, dip, dp)| {
            FiveTuple::new(
                if tcp { Protocol::Tcp } else { Protocol::Udp },
                std::net::SocketAddrV4::new(sip.into(), sp),
                std::net::SocketAddrV4::new(dip.into(), dp),
            )
        })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_tuple(),
        0u64..100_000_000,
        proptest::collection::vec(any::<u8>(), 0..1400),
        any::<u8>(),
    )
        .prop_map(|(tuple, us, payload, flags)| match tuple.protocol() {
            Protocol::Tcp => Packet::tcp(
                Timestamp::from_micros(us),
                tuple,
                TcpFlags::from_bits(flags),
                payload,
            ),
            Protocol::Udp => Packet::udp(Timestamp::from_micros(us), tuple, payload),
        })
}

proptest! {
    /// Decoding arbitrary bytes never panics — it returns a packet or a
    /// structured error, under both checksum policies.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        for policy in [wire::ChecksumPolicy::Verify, wire::ChecksumPolicy::Ignore] {
            let _ = wire::decode(&bytes, Timestamp::ZERO, bytes.len() as u32, policy);
        }
    }

    /// Reading arbitrary bytes as a pcap file never panics.
    #[test]
    fn pcap_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcap::from_bytes(&bytes);
    }

    /// Every prefix truncation of a valid capture yields a clean error or
    /// a prefix of the original packets — never garbage.
    #[test]
    fn pcap_truncation_is_safe(pkts in proptest::collection::vec(arb_packet(), 1..5), cut_frac in 0.0f64..1.0) {
        let bytes = pcap::to_bytes(&pkts, 65_535).expect("write");
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        if let Ok(read) = pcap::from_bytes(&bytes[..cut]) {
            prop_assert!(read.len() <= pkts.len());
            prop_assert_eq!(&pkts[..read.len()], &read[..]);
        } // a clean error is equally fine
    }

    /// A reader can always recover every full record before a truncation
    /// point using read_packet until the error.
    #[test]
    fn pcap_streaming_recovers_prefix(pkts in proptest::collection::vec(arb_packet(), 1..6)) {
        let bytes = pcap::to_bytes(&pkts, 65_535).expect("write");
        // Cut inside the last record body.
        let cut = bytes.len() - 1;
        if let Ok(mut reader) = pcap::PcapReader::new(&bytes[..cut]) {
            let mut recovered = Vec::new();
            while let Ok(Some(p)) = reader.read_packet() {
                recovered.push(p);
            }
            prop_assert_eq!(recovered.len(), pkts.len() - 1);
            prop_assert_eq!(&recovered[..], &pkts[..pkts.len() - 1]);
        }
    }

    /// Snaplen truncation preserves tuples, flags, timestamps, and
    /// original lengths for every generated packet.
    #[test]
    fn snaplen_preserves_metadata(pkts in proptest::collection::vec(arb_packet(), 1..5)) {
        let bytes = pcap::to_bytes(&pkts, pcap::HEADER_SNAPLEN).expect("write");
        let read = pcap::from_bytes(&bytes).expect("read");
        prop_assert_eq!(read.len(), pkts.len());
        for (orig, got) in pkts.iter().zip(&read) {
            prop_assert_eq!(got.tuple(), orig.tuple());
            prop_assert_eq!(got.ts(), orig.ts());
            prop_assert_eq!(got.tcp_flags(), orig.tcp_flags());
            prop_assert_eq!(got.wire_len(), orig.wire_len());
        }
    }

    /// The Internet checksum of any frame we encode verifies to zero over
    /// the IPv4 header.
    #[test]
    fn encoded_ip_header_checksums_verify(p in arb_packet()) {
        let frame = wire::encode(&p);
        prop_assert_eq!(wire::internet_checksum(&frame[14..34]), 0);
    }

    /// Direction classification is a partition: every tuple is exactly
    /// one of inbound/outbound relative to any prefix, and flipping the
    /// tuple flips the direction iff exactly one endpoint is inside.
    #[test]
    fn direction_partition(t in arb_tuple(), base in any::<u32>(), len in 0u8..=32) {
        let cidr = Cidr::new(base.into(), len).expect("valid prefix");
        let fwd = cidr.direction_of(&t);
        let rev = cidr.direction_of(&t.inverse());
        let src_in = cidr.contains(*t.src().ip());
        let dst_in = cidr.contains(*t.dst().ip());
        if src_in != dst_in {
            prop_assert_ne!(fwd, rev);
        }
        if src_in && dst_in {
            // Both inside: both directions classify as outbound.
            prop_assert_eq!(fwd, rev);
        }
    }

    /// Timestamp arithmetic: (a + d) − a == d and ordering is preserved.
    #[test]
    fn timestamp_arithmetic(a in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
        let t = Timestamp::from_micros(a);
        let delta = TimeDelta::from_micros(d);
        prop_assert_eq!((t + delta) - t, delta);
        prop_assert!(t + delta >= t);
        prop_assert_eq!(t.saturating_since(t + delta), TimeDelta::ZERO);
    }

    /// Sec/usec split (the pcap record format) round-trips.
    #[test]
    fn sec_usec_round_trip(us in 0u64..4_000_000_000_000) {
        let t = Timestamp::from_micros(us);
        let (s, u) = t.to_sec_usec();
        prop_assert!(u < 1_000_000);
        prop_assert_eq!(Timestamp::from_sec_usec(s, u), t);
    }
}
