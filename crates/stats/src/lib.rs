//! Streaming statistics toolkit for the `upbound` project.
//!
//! This crate provides the measurement primitives used throughout the
//! reproduction of *Bounding Peer-to-Peer Upload Traffic in Client
//! Networks* (Huang & Lei, DSN 2007): summary statistics, histograms,
//! empirical CDFs, exponentially-weighted moving averages, binned time
//! series, and lightweight ASCII rendering for terminal reports.
//!
//! Everything here is allocation-conscious and purely deterministic so the
//! reproduction binaries emit stable output for a fixed seed.
//!
//! # Examples
//!
//! ```
//! use upbound_stats::{Summary, EmpiricalCdf};
//!
//! let mut s = Summary::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     s.record(x);
//! }
//! assert_eq!(s.mean(), 2.5);
//!
//! let cdf = EmpiricalCdf::from_samples([1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(cdf.quantile(0.5), 2.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod ascii;
mod cdf;
mod correlation;
mod ewma;
mod histogram;
mod summary;
mod timeseries;

pub use ascii::{render_scatter, render_series, sparkline, AsciiPlot};
pub use cdf::EmpiricalCdf;
pub use correlation::{linear_fit, pearson_correlation};
pub use ewma::Ewma;
pub use histogram::{Histogram, LogHistogram};
pub use summary::Summary;
pub use timeseries::{BinnedSeries, RatePoint};
