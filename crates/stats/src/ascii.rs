//! Minimal ASCII rendering for terminal reports produced by the
//! reproduction binaries (`fig2` … `fig9`).

/// A rendered ASCII plot plus its axis metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct AsciiPlot {
    /// The rendered rows, top row first.
    pub rows: Vec<String>,
    /// Minimum and maximum of the x axis.
    pub x_range: (f64, f64),
    /// Minimum and maximum of the y axis.
    pub y_range: (f64, f64),
}

impl std::fmt::Display for AsciiPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        write!(
            f,
            "x: [{:.3}, {:.3}]  y: [{:.3}, {:.3}]",
            self.x_range.0, self.x_range.1, self.y_range.0, self.y_range.1
        )
    }
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a one-line sparkline of `values`.
///
/// Returns an empty string for no input. Non-finite values render as spaces.
///
/// # Examples
///
/// ```
/// use upbound_stats::sparkline;
/// let line = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(line.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let level = (((v - lo) / span) * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
                SPARK_LEVELS[level.min(SPARK_LEVELS.len() - 1)]
            }
        })
        .collect()
}

fn ranges(points: &[(f64, f64)]) -> ((f64, f64), (f64, f64)) {
    let mut x_lo = f64::INFINITY;
    let mut x_hi = f64::NEG_INFINITY;
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for &(x, y) in points {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if x_hi <= x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }
    ((x_lo, x_hi), (y_lo, y_hi))
}

/// Renders an x/y scatter plot on a `width`×`height` character grid.
///
/// Used by the `fig8` reproduction (SPI vs bitmap drop-rate scatter).
/// Points with non-finite coordinates are skipped. With no finite points the
/// grid is blank and both ranges are `[0, 1]`.
pub fn render_scatter(points: &[(f64, f64)], width: usize, height: usize) -> AsciiPlot {
    render_with_marker(points, width, height, '*')
}

/// Renders a series (x sorted or not) as a dot-per-point line chart.
///
/// Used by the `fig9` reproduction (throughput over time).
pub fn render_series(points: &[(f64, f64)], width: usize, height: usize) -> AsciiPlot {
    render_with_marker(points, width, height, '·')
}

fn render_with_marker(
    points: &[(f64, f64)],
    width: usize,
    height: usize,
    marker: char,
) -> AsciiPlot {
    let width = width.max(2);
    let height = height.max(2);
    let finite: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if finite.is_empty() {
        return AsciiPlot {
            rows: vec![" ".repeat(width); height],
            x_range: (0.0, 1.0),
            y_range: (0.0, 1.0),
        };
    }
    let (x_range, y_range) = ranges(&finite);
    let mut grid = vec![vec![' '; width]; height];
    for (x, y) in finite {
        let cx =
            (((x - x_range.0) / (x_range.1 - x_range.0)) * (width - 1) as f64).round() as usize;
        let cy =
            (((y - y_range.0) / (y_range.1 - y_range.0)) * (height - 1) as f64).round() as usize;
        // Row 0 is the top of the plot.
        grid[height - 1 - cy.min(height - 1)][cx.min(width - 1)] = marker;
    }
    AsciiPlot {
        rows: grid.into_iter().map(|r| r.into_iter().collect()).collect(),
        x_range,
        y_range,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_has_one_char_per_value() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0, 4.0]).chars().count(), 4);
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_extremes_map_to_extreme_levels() {
        let s: Vec<char> = sparkline(&[0.0, 1.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn sparkline_constant_input_is_flat() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars.iter().all(|&c| c == chars[0]));
    }

    #[test]
    fn sparkline_handles_nan() {
        let s: Vec<char> = sparkline(&[0.0, f64::NAN, 1.0]).chars().collect();
        assert_eq!(s[1], ' ');
    }

    #[test]
    fn scatter_plots_corners() {
        let plot = render_scatter(&[(0.0, 0.0), (1.0, 1.0)], 10, 5);
        assert_eq!(plot.rows.len(), 5);
        // Bottom-left and top-right corners are marked.
        assert_eq!(plot.rows[4].chars().next(), Some('*'));
        assert_eq!(plot.rows[0].chars().last(), Some('*'));
    }

    #[test]
    fn scatter_of_empty_is_blank() {
        let plot = render_scatter(&[], 4, 3);
        assert!(plot.rows.iter().all(|r| r.trim().is_empty()));
        assert_eq!(plot.x_range, (0.0, 1.0));
    }

    #[test]
    fn series_uses_dot_marker() {
        let plot = render_series(&[(0.0, 0.0)], 3, 3);
        let joined = plot.rows.join("");
        assert!(joined.contains('·'));
    }

    #[test]
    fn display_includes_ranges() {
        let plot = render_scatter(&[(0.0, 0.0), (2.0, 4.0)], 4, 4);
        let text = format!("{plot}");
        assert!(text.contains("x: [0.000, 2.000]"));
        assert!(text.contains("y: [0.000, 4.000]"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let plot = render_scatter(&[(3.0, 3.0)], 5, 5);
        assert_eq!(plot.rows.len(), 5);
    }
}
