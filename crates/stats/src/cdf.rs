//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a finite set of samples.
///
/// Samples are stored sorted; `NaN` samples are discarded at construction.
/// The CDF is right-continuous: `fraction_at(x)` is the fraction of samples
/// `<= x`.
///
/// The paper uses CDFs for port-number distributions (Figs. 2–3),
/// connection lifetimes (Fig. 4), and out-in packet delays (Fig. 5-b).
///
/// # Examples
///
/// ```
/// use upbound_stats::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at(2.0), 0.5);
/// assert_eq!(cdf.fraction_at(0.0), 0.0);
/// assert_eq!(cdf.fraction_at(10.0), 1.0);
/// assert_eq!(cdf.quantile(0.99), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from an iterator of samples, discarding `NaN`s.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered out"));
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`; `0.0` for an empty CDF.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x because the
        // array is sorted.
        let n_le = self.sorted.partition_point(|&s| s <= x);
        n_le as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0 <= q <= 1.0`) using the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (50th percentile).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluates the CDF at `n_points` evenly spaced x positions spanning
    /// the sample range, returning `(x, F(x))` pairs ready for plotting.
    ///
    /// Returns an empty vector for an empty CDF or `n_points == 0`.
    pub fn curve(&self, n_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n_points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("nonempty");
        if n_points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..n_points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n_points - 1) as f64;
                (x, self.fraction_at(x))
            })
            .collect()
    }

    /// Access the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for EmpiricalCdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_monotone_and_bounded() {
        let cdf = EmpiricalCdf::from_samples([5.0, 1.0, 3.0, 3.0, 2.0]);
        let mut prev = 0.0;
        for i in 0..60 {
            let x = i as f64 * 0.1;
            let f = cdf.fraction_at(x);
            assert!(f >= prev, "CDF must be monotone");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert_eq!(cdf.fraction_at(5.0), 1.0);
    }

    #[test]
    fn duplicates_are_counted() {
        let cdf = EmpiricalCdf::from_samples([1.0, 1.0, 1.0, 2.0]);
        assert_eq!(cdf.fraction_at(1.0), 0.75);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let cdf = EmpiricalCdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.99), 99.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.median(), 50.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty CDF")]
    fn quantile_of_empty_panics() {
        let cdf = EmpiricalCdf::from_samples(std::iter::empty());
        let _ = cdf.quantile(0.5);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let cdf = EmpiricalCdf::from_samples([f64::NAN, 1.0, f64::NAN]);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn curve_spans_range() {
        let cdf = EmpiricalCdf::from_samples([0.0, 10.0]);
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0], (0.0, 0.5));
        assert_eq!(curve[10], (10.0, 1.0));
    }

    #[test]
    fn curve_of_constant_sample_collapses() {
        let cdf = EmpiricalCdf::from_samples([7.0, 7.0]);
        assert_eq!(cdf.curve(5), vec![(7.0, 1.0)]);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = EmpiricalCdf::from_samples(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at(1.0), 0.0);
        assert!(cdf.curve(5).is_empty());
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.max(), None);
    }
}
