//! Correlation and simple linear fits for paired series.

/// Pearson correlation coefficient of paired samples.
///
/// Returns `None` with fewer than two pairs or when either variable has
/// zero variance. Used by the Figure 8 reproduction to quantify how
/// tightly the SPI and bitmap drop rates track each other.
///
/// # Examples
///
/// ```
/// use upbound_stats::pearson_correlation;
///
/// let r = pearson_correlation(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson_correlation(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for &(x, y) in pairs {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Least-squares slope and intercept of `y` on `x`.
///
/// Returns `None` with fewer than two pairs or zero x-variance. A slope
/// near 1 with intercept near 0 is the Figure 8 "gray-dashed line"
/// agreement.
///
/// # Examples
///
/// ```
/// use upbound_stats::linear_fit;
///
/// let (slope, intercept) = linear_fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
/// assert!((slope - 2.0).abs() < 1e-12);
/// assert!((intercept - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(pairs: &[(f64, f64)]) -> Option<(f64, f64)> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    for &(x, y) in pairs {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
    }
    if var_x <= 0.0 {
        return None;
    }
    let slope = cov / var_x;
    Some((slope, mean_y - slope * mean_x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let up: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((pearson_correlation(&up).unwrap() - 1.0).abs() < 1e-12);
        let down: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -2.0 * i as f64)).collect();
        assert!((pearson_correlation(&down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_data_is_near_zero() {
        // A symmetric cross pattern has exactly zero correlation.
        let pairs = [(0.0, 1.0), (0.0, -1.0), (1.0, 0.0), (-1.0, 0.0)];
        assert!(pearson_correlation(&pairs).unwrap().abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert_eq!(pearson_correlation(&[]), None);
        assert_eq!(pearson_correlation(&[(1.0, 2.0)]), None);
        assert_eq!(pearson_correlation(&[(1.0, 2.0), (1.0, 3.0)]), None); // zero x-variance
        assert_eq!(linear_fit(&[(2.0, 5.0)]), None);
        assert_eq!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]), None);
    }

    #[test]
    fn fit_recovers_slope_one_line() {
        let pairs: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 0.01, i as f64 * 0.01))
            .collect();
        let (slope, intercept) = linear_fit(&pairs).unwrap();
        assert!((slope - 1.0).abs() < 1e-12);
        assert!(intercept.abs() < 1e-12);
    }

    #[test]
    fn correlation_is_symmetric() {
        let pairs = [(1.0, 4.0), (2.0, 3.0), (5.0, 8.0), (7.0, 6.0)];
        let swapped: Vec<(f64, f64)> = pairs.iter().map(|&(x, y)| (y, x)).collect();
        let a = pearson_correlation(&pairs).unwrap();
        let b = pearson_correlation(&swapped).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
