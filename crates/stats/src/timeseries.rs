//! Time-binned accumulation series (e.g. bytes per interval → Mbps).

use serde::{Deserialize, Serialize};

/// One point of a rate series: the bin start time (seconds) and the rate in
/// that bin (units per second, e.g. bits/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Start of the bin, in seconds from the series origin.
    pub t_secs: f64,
    /// Accumulated amount divided by the bin width.
    pub rate: f64,
}

/// Accumulates `(time, amount)` events into fixed-width time bins.
///
/// This is how the reproduction computes the uplink/downlink throughput
/// curves of the paper's Figure 9: each accepted packet contributes its
/// wire size (in bits) at its timestamp, and `rates()` yields the Mbps-style
/// series.
///
/// Events may arrive in any time order; bins grow on demand. Events with
/// negative timestamps are rejected.
///
/// # Examples
///
/// ```
/// use upbound_stats::BinnedSeries;
///
/// let mut s = BinnedSeries::new(1.0);
/// s.add(0.2, 100.0);
/// s.add(0.9, 100.0);
/// s.add(1.5, 300.0);
/// let rates = s.rates();
/// assert_eq!(rates[0].rate, 200.0); // 200 units in a 1-second bin
/// assert_eq!(rates[1].rate, 300.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedSeries {
    bin_secs: f64,
    bins: Vec<f64>,
    total: f64,
}

impl BinnedSeries {
    /// Creates a series with bins of `bin_secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `bin_secs` is finite and strictly positive.
    pub fn new(bin_secs: f64) -> Self {
        assert!(
            bin_secs.is_finite() && bin_secs > 0.0,
            "bin width must be positive"
        );
        Self {
            bin_secs,
            bins: Vec::new(),
            total: 0.0,
        }
    }

    /// The most bins a series will materialize. A single far-future
    /// timestamp (e.g. from a corrupt trace record) would otherwise make
    /// `add` resize the bin vector to gigabytes; events past the ceiling
    /// accumulate into the terminal bin instead.
    pub const MAX_BINS: usize = 1 << 20;

    /// Adds `amount` at time `t_secs` (seconds from the series origin).
    ///
    /// Events at negative times or with non-finite values are ignored.
    /// Events beyond [`MAX_BINS`](Self::MAX_BINS) bins land in the last
    /// bin, bounding memory against corrupt timestamps.
    pub fn add(&mut self, t_secs: f64, amount: f64) {
        if !t_secs.is_finite() || t_secs < 0.0 || !amount.is_finite() {
            return;
        }
        let idx = ((t_secs / self.bin_secs) as usize).min(Self::MAX_BINS - 1);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
        self.total += amount;
    }

    /// The configured bin width in seconds.
    pub fn bin_secs(&self) -> f64 {
        self.bin_secs
    }

    /// Number of bins currently materialized.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Sum of everything added.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Raw accumulated amount in bin `i` (`0.0` past the end).
    pub fn bin_total(&self, i: usize) -> f64 {
        self.bins.get(i).copied().unwrap_or(0.0)
    }

    /// The per-bin rate series (`amount / bin_secs` for every bin).
    pub fn rates(&self) -> Vec<RatePoint> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &amount)| RatePoint {
                t_secs: i as f64 * self.bin_secs,
                rate: amount / self.bin_secs,
            })
            .collect()
    }

    /// Mean rate across all materialized bins (`0.0` when empty).
    pub fn mean_rate(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.total / (self.bins.len() as f64 * self.bin_secs)
        }
    }

    /// Peak per-bin rate (`0.0` when empty).
    pub fn peak_rate(&self) -> f64 {
        self.bins
            .iter()
            .fold(0.0_f64, |acc, &a| acc.max(a / self.bin_secs))
    }

    /// Fraction of bins whose rate exceeds `threshold` (`0.0` when empty).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        let over = self
            .bins
            .iter()
            .filter(|&&a| a / self.bin_secs > threshold)
            .count();
        over as f64 / self.bins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_correct_bins() {
        let mut s = BinnedSeries::new(5.0);
        s.add(0.0, 1.0);
        s.add(4.999, 1.0);
        s.add(5.0, 10.0);
        assert_eq!(s.bin_total(0), 2.0);
        assert_eq!(s.bin_total(1), 10.0);
        assert_eq!(s.n_bins(), 2);
    }

    #[test]
    fn out_of_order_events_are_fine() {
        let mut s = BinnedSeries::new(1.0);
        s.add(9.5, 1.0);
        s.add(0.5, 2.0);
        assert_eq!(s.n_bins(), 10);
        assert_eq!(s.bin_total(0), 2.0);
        assert_eq!(s.bin_total(9), 1.0);
    }

    #[test]
    fn rates_divide_by_bin_width() {
        let mut s = BinnedSeries::new(2.0);
        s.add(1.0, 10.0);
        let r = s.rates();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].t_secs, 0.0);
        assert_eq!(r[0].rate, 5.0);
    }

    #[test]
    fn mean_and_peak_rates() {
        let mut s = BinnedSeries::new(1.0);
        s.add(0.5, 10.0);
        s.add(1.5, 30.0);
        assert_eq!(s.mean_rate(), 20.0);
        assert_eq!(s.peak_rate(), 30.0);
        assert_eq!(s.fraction_above(15.0), 0.5);
        assert_eq!(s.fraction_above(100.0), 0.0);
    }

    #[test]
    fn far_future_event_is_clamped_to_terminal_bin() {
        let mut s = BinnedSeries::new(1.0);
        // Without the clamp this would try to materialize ~3e16 bins.
        s.add(3.0e16, 7.0);
        assert_eq!(s.n_bins(), BinnedSeries::MAX_BINS);
        assert_eq!(s.bin_total(BinnedSeries::MAX_BINS - 1), 7.0);
        assert_eq!(s.total(), 7.0);
    }

    #[test]
    fn negative_time_ignored() {
        let mut s = BinnedSeries::new(1.0);
        s.add(-1.0, 5.0);
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.n_bins(), 0);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = BinnedSeries::new(1.0);
        assert_eq!(s.mean_rate(), 0.0);
        assert_eq!(s.peak_rate(), 0.0);
        assert!(s.rates().is_empty());
        assert_eq!(s.bin_total(42), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_panics() {
        let _ = BinnedSeries::new(0.0);
    }
}
