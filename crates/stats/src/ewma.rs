//! Exponentially-weighted moving average.

use serde::{Deserialize, Serialize};

/// An exponentially-weighted moving average, as used by RED-style queue
/// management (Floyd & Jacobson) and by the bitmap filter's throughput
/// monitor to smooth the uplink bandwidth estimate `b` that feeds the
/// drop-probability `P_d` of the paper's Equation 1.
///
/// `alpha` is the weight of the newest observation:
/// `avg ← (1 − alpha)·avg + alpha·x`.
///
/// # Examples
///
/// ```
/// use upbound_stats::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// e.update(10.0);
/// e.update(20.0);
/// assert_eq!(e.value(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Feeds a new observation and returns the updated average.
    ///
    /// The first observation initializes the average directly (no warm-up
    /// bias toward zero). Non-finite observations are ignored.
    pub fn update(&mut self, x: f64) -> f64 {
        if x.is_finite() {
            self.value = Some(match self.value {
                None => x,
                Some(v) => v + self.alpha * (x - v),
            });
        }
        self.value()
    }

    /// The current average, or `0.0` before the first observation.
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// `true` until the first observation arrives.
    pub fn is_empty(&self) -> bool {
        self.value.is_none()
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Clears the average back to the pre-first-observation state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_directly() {
        let mut e = Ewma::new(0.1);
        assert!(e.is_empty());
        assert_eq!(e.update(42.0), 42.0);
        assert!(!e.is_empty());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(7.0);
        }
        assert!((e.value() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_tracks_input_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(99.0);
        assert_eq!(e.value(), 99.0);
    }

    #[test]
    fn smoothing_dampens_spikes() {
        let mut e = Ewma::new(0.1);
        e.update(0.0);
        e.update(100.0);
        assert_eq!(e.value(), 10.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut e = Ewma::new(0.5);
        e.update(10.0);
        e.update(f64::NAN);
        e.update(f64::INFINITY);
        assert_eq!(e.value(), 10.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5);
        e.update(10.0);
        e.reset();
        assert!(e.is_empty());
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_panics() {
        let _ = Ewma::new(0.0);
    }
}
