//! Fixed-width and logarithmic histograms.

use serde::{Deserialize, Serialize};

/// A histogram with fixed-width bins over `[lo, hi)` plus underflow and
/// overflow counters.
///
/// # Examples
///
/// ```
/// use upbound_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `n_bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, `n_bins == 0`, or either bound is not finite.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be strictly below hi");
        assert!(n_bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation. `NaN` is ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_bins()`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// Upper edge of bin `i`.
    pub fn bin_hi(&self, i: usize) -> f64 {
        self.bin_lo(i + 1)
    }

    /// Iterator over `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lo(i), self.bin_hi(i), self.bins[i]))
    }

    /// Index of the fullest bin, or `None` when all in-range bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &max) = self.bins.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if max == 0 {
            None
        } else {
            Some(idx)
        }
    }

    /// Fraction of in-range observations at or below the upper edge of bin `i`.
    ///
    /// Returns `0.0` when no in-range observation has been recorded.
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let upto: u64 = self.bins[..=i].iter().sum();
        upto as f64 / in_range as f64
    }
}

/// A base-2 logarithmic histogram for positive values spanning many orders
/// of magnitude (packet counts, byte volumes, lifetimes).
///
/// Bin `i` covers `[2^i, 2^(i+1))` scaled by `unit`; values in `[0, unit)`
/// land in a dedicated zero bin.
///
/// # Examples
///
/// ```
/// use upbound_stats::LogHistogram;
///
/// let mut h = LogHistogram::new(1.0, 32);
/// h.record(3.0);   // bin [2,4)
/// h.record(1000.0); // bin [512,1024)
/// assert_eq!(h.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    unit: f64,
    bins: Vec<u64>,
    zero: u64,
    count: u64,
}

impl LogHistogram {
    /// Creates a log histogram with `n_bins` power-of-two bins above `unit`.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not strictly positive or `n_bins == 0`.
    pub fn new(unit: f64, n_bins: usize) -> Self {
        assert!(unit > 0.0 && unit.is_finite(), "unit must be positive");
        assert!(n_bins > 0, "need at least one bin");
        Self {
            unit,
            bins: vec![0; n_bins],
            zero: 0,
            count: 0,
        }
    }

    /// Records one observation; negative and `NaN` values are ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() || x < 0.0 {
            return;
        }
        self.count += 1;
        let scaled = x / self.unit;
        if scaled < 1.0 {
            self.zero += 1;
            return;
        }
        let idx = (scaled.log2() as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `unit`.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Number of logarithmic bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i` (covering `[unit·2^i, unit·2^(i+1))`).
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Iterator over `(bin_lo, bin_hi, count)` triples (excluding the zero bin).
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let lo = self.unit * (1u64 << i) as f64;
            (lo, lo * 2.0, self.bins[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range_evenly() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        for b in 0..10 {
            assert_eq!(h.bin_count(b), 10, "bin {b}");
        }
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn boundary_values_go_to_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0); // first bin
        h.record(10.0); // == hi -> overflow
        h.record(-0.0001); // underflow
        h.record(9.9999); // last bin
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn bin_edges_are_consistent() {
        let h = Histogram::new(2.0, 12.0, 5);
        assert_eq!(h.bin_lo(0), 2.0);
        assert_eq!(h.bin_hi(0), 4.0);
        assert_eq!(h.bin_lo(4), 10.0);
        assert_eq!(h.bin_hi(4), 12.0);
    }

    #[test]
    fn cumulative_fraction_reaches_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.record(x);
        }
        assert!((h.cumulative_fraction(1) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_fraction(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    #[should_panic(expected = "lo must be strictly below hi")]
    fn invalid_bounds_panic() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn log_histogram_bins_powers_of_two() {
        let mut h = LogHistogram::new(1.0, 16);
        h.record(0.5); // zero bin
        h.record(1.0); // bin 0: [1,2)
        h.record(2.0); // bin 1: [2,4)
        h.record(3.9); // bin 1
        h.record(1024.0); // bin 10
        assert_eq!(h.zero_count(), 1);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 2);
        assert_eq!(h.bin_count(10), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn log_histogram_clamps_huge_values_to_last_bin() {
        let mut h = LogHistogram::new(1.0, 4);
        h.record(1e30);
        assert_eq!(h.bin_count(3), 1);
    }

    #[test]
    fn log_histogram_ignores_negative() {
        let mut h = LogHistogram::new(1.0, 4);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
    }
}
