//! Welford-style streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics over a sequence of `f64` observations.
///
/// Uses Welford's online algorithm so the mean and variance are numerically
/// stable regardless of how many samples are recorded, in O(1) memory.
///
/// # Examples
///
/// ```
/// use upbound_stats::Summary;
///
/// let mut s = Summary::new();
/// s.record(10.0);
/// s.record(20.0);
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.mean(), 15.0);
/// assert_eq!(s.min(), 10.0);
/// assert_eq!(s.max(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite values are ignored so a stray `NaN` cannot poison an
    /// entire measurement run.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations; `0.0` when empty.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance; `0.0` with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            if self.count == 0 { 0.0 } else { self.min },
            if self.count == 0 { 0.0 } else { self.max },
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_bessel_correction() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nan_and_infinity_are_ignored() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let all: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..40].iter().copied().collect();
        let right: Summary = xs[40..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::new();
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
    }
}
