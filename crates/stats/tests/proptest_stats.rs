//! Property tests on the statistics toolkit.

use proptest::prelude::*;
use upbound_stats::{BinnedSeries, EmpiricalCdf, Ewma, Histogram, Summary};

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e9f64..1e9, 0..200)
}

proptest! {
    /// Summary mean/min/max/variance agree with the naive computation.
    #[test]
    fn summary_agrees_with_naive(xs in finite_vec()) {
        let s: Summary = xs.iter().copied().collect();
        prop_assert_eq!(s.count() as usize, xs.len());
        if !xs.is_empty() {
            let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let scale = naive_mean.abs().max(1.0);
            prop_assert!((s.mean() - naive_mean).abs() / scale < 1e-9);
            let naive_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let naive_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(s.min(), naive_min);
            prop_assert_eq!(s.max(), naive_max);
            prop_assert!(s.variance() >= -1e-9);
        }
    }

    /// Merging summaries in any split equals one sequential pass.
    #[test]
    fn summary_merge_any_split(xs in finite_vec(), split_frac in 0.0f64..1.0) {
        let split = (xs.len() as f64 * split_frac) as usize;
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if !xs.is_empty() {
            let scale = whole.mean().abs().max(1.0);
            prop_assert!((left.mean() - whole.mean()).abs() / scale < 1e-9);
            let vscale = whole.variance().abs().max(1.0);
            prop_assert!((left.variance() - whole.variance()).abs() / vscale < 1e-6);
        }
    }

    /// CDF: fraction_at(quantile(q)) >= q (Galois connection of the
    /// nearest-rank definitions).
    #[test]
    fn cdf_quantile_fraction_duality(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..=1.0) {
        let cdf = EmpiricalCdf::from_samples(xs.iter().copied());
        let v = cdf.quantile(q);
        prop_assert!(cdf.fraction_at(v) >= q - 1e-12);
        prop_assert!(xs.contains(&v), "quantile must be an actual sample");
    }

    /// Histogram conserves counts: bins + underflow + overflow == total.
    #[test]
    fn histogram_conserves_counts(
        xs in proptest::collection::vec(-100.0f64..200.0, 0..300),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &x in &xs {
            h.record(x);
        }
        let in_bins: u64 = (0..h.n_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(in_bins + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    /// BinnedSeries conserves mass and its mean rate matches the naive
    /// total/span computation.
    #[test]
    fn binned_series_conserves_mass(
        events in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1e6), 0..200),
        width in 0.1f64..60.0,
    ) {
        let mut s = BinnedSeries::new(width);
        let mut total = 0.0;
        for &(t, v) in &events {
            s.add(t, v);
            total += v;
        }
        prop_assert!((s.total() - total).abs() < 1e-6 * total.max(1.0));
        let binned: f64 = (0..s.n_bins()).map(|i| s.bin_total(i)).sum();
        prop_assert!((binned - total).abs() < 1e-6 * total.max(1.0));
        if s.n_bins() > 0 {
            let naive = total / (s.n_bins() as f64 * width);
            prop_assert!((s.mean_rate() - naive).abs() < 1e-9 * naive.max(1.0));
        }
    }

    /// EWMA stays within the observed sample range.
    #[test]
    fn ewma_stays_in_range(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        alpha in 0.01f64..1.0,
    ) {
        let mut e = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            e.update(x);
            lo = lo.min(x);
            hi = hi.max(x);
            prop_assert!(e.value() >= lo - 1e-9 && e.value() <= hi + 1e-9);
        }
    }
}
